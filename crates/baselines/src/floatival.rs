//! The floating-point interval scheme (QRS, the paper's \[2\]).
//!
//! §2: "\[2\] proposes to use floating point numbers to replace integers as
//! the labels in interval-based labeling scheme. In theory, it solves the
//! problem of updates because one can always insert a number between any
//! two floating point numbers. Unfortunately, in practice, the
//! representation of a floating point number is constrained by the number
//! of bits in the mantissa. Once again, when the number of insertions
//! exceeds certain limits, re-labeling is necessary."
//!
//! We implement it to reproduce precisely that failure: midpoint insertion
//! between two order values exhausts an `f64` mantissa after ~50
//! consecutive splits of the same gap, at which point the scheme must
//! relabel.

use std::cmp::Ordering;
use xp_labelkit::{LabelOps, LabeledDoc, OrderedLabel, Scheme};
use xp_xmltree::{NodeId, XmlTree};

/// A float interval label: `(start, end)` with `start < end`, descendants
/// strictly nested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatLabel {
    /// Interval start.
    pub start: f64,
    /// Interval end (exclusive of siblings' starts).
    pub end: f64,
    /// Depth (root = 0), kept for the parent test like XISS.
    pub level: u32,
}

// f64 labels are never NaN (they come from finite subdivision of [0, 1]).
impl Eq for FloatLabel {}

impl LabelOps for FloatLabel {
    fn is_ancestor_of(&self, other: &Self) -> bool {
        self.start < other.start && other.end <= self.end
    }

    /// Two f64 values: 128 bits, always.
    fn size_bits(&self) -> u64 {
        128
    }

    fn level_hint(&self) -> Option<usize> {
        Some(self.level as usize)
    }
}

impl OrderedLabel for FloatLabel {
    fn doc_cmp(&self, other: &Self) -> Ordering {
        self.start.partial_cmp(&other.start).expect("labels are never NaN")
    }
}

/// The float interval scheme: children split their parent's interval.
#[derive(Debug, Clone, Default)]
pub struct FloatIntervalScheme;

impl FloatIntervalScheme {
    fn label_into(
        tree: &XmlTree,
        node: NodeId,
        start: f64,
        end: f64,
        level: u32,
        doc: &mut LabeledDoc<FloatLabel>,
    ) {
        doc.set(node, FloatLabel { start, end, level });
        let kids: Vec<NodeId> = tree.element_children(node).collect();
        if kids.is_empty() {
            return;
        }
        // Shrink into the interior so children nest strictly, then split
        // evenly among the children.
        let inner_start = midpoint(start, end);
        let width = (end - inner_start) / kids.len() as f64;
        for (i, child) in kids.into_iter().enumerate() {
            let s = inner_start + width * i as f64;
            let e = inner_start + width * (i + 1) as f64;
            Self::label_into(tree, child, s, e, level + 1, doc);
        }
    }
}

/// The midpoint of two floats — the insertion primitive whose repeated
/// application exhausts the mantissa.
pub fn midpoint(a: f64, b: f64) -> f64 {
    a + (b - a) / 2.0
}

/// How many times a gap can be split before two adjacent labels become
/// equal (mantissa exhaustion). Returns the number of successful midpoint
/// insertions between `lo` and its original successor.
pub fn splits_until_exhaustion(lo: f64, hi: f64) -> usize {
    let mut hi = hi;
    let mut count = 0;
    loop {
        let mid = midpoint(lo, hi);
        if mid <= lo || mid >= hi {
            return count;
        }
        hi = mid;
        count += 1;
    }
}

impl Scheme for FloatIntervalScheme {
    type Label = FloatLabel;

    fn name(&self) -> &'static str {
        "Float-interval (QRS)"
    }

    fn label(&self, tree: &XmlTree) -> LabeledDoc<FloatLabel> {
        let mut doc = LabeledDoc::new(tree);
        Self::label_into(tree, tree.root(), 0.0, 1.0, 0, &mut doc);
        // Rebuild in document order (recursion order already is, but keep
        // the same contract as the other schemes).
        let mut ordered = LabeledDoc::new(tree);
        for node in tree.elements() {
            ordered.set(node, *doc.label(node));
        }
        ordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::parse;

    #[test]
    fn ancestor_test_is_exact() {
        let tree = parse("<a><b><c/><d/></b><e><f><g/></f></e><h/></a>").unwrap();
        let doc = FloatIntervalScheme.label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                assert_eq!(
                    doc.label(x).is_ancestor_of(doc.label(y)),
                    tree.is_ancestor(x, y),
                    "ancestor({x},{y})"
                );
            }
        }
    }

    #[test]
    fn doc_cmp_is_document_order() {
        let tree = parse("<a><b><c/></b><d><e/></d></a>").unwrap();
        let doc = FloatIntervalScheme.label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for w in nodes.windows(2) {
            assert_eq!(doc.label(w[0]).doc_cmp(doc.label(w[1])), Ordering::Less);
        }
    }

    #[test]
    fn theory_says_insertions_are_free() {
        // "In theory, it solves the problem of updates": a midpoint always
        // exists between two sufficiently-distant labels.
        let a = 0.25f64;
        let b = 0.5f64;
        let m = midpoint(a, b);
        assert!(a < m && m < b);
    }

    #[test]
    fn practice_says_the_mantissa_runs_out() {
        // The paper's §2 criticism, quantified: ~52 splits of the same gap
        // and the scheme is dead.
        let splits = splits_until_exhaustion(0.25, 0.5);
        assert!(
            (45..=60).contains(&splits),
            "f64 mantissa allows ~52 splits, measured {splits}"
        );
        // The prime scheme, under the identical insertion pattern, never
        // runs out: every insertion just takes the next prime.
        // (See tests/ordered_pipeline.rs for the prime-side property.)
    }

    #[test]
    fn deep_documents_erode_the_budget_before_any_insertion() {
        // Every level halves the available width: a depth-40 chain leaves
        // almost no split budget at the leaf.
        let mut src = String::new();
        for i in 0..40 {
            src.push_str(&format!("<n{i}>"));
        }
        for i in (0..40).rev() {
            src.push_str(&format!("</n{i}>"));
        }
        let tree = parse(&src).unwrap();
        let doc = FloatIntervalScheme.label(&tree);
        let deepest = tree.elements().last().unwrap();
        let l = doc.label(deepest);
        let remaining = splits_until_exhaustion(l.start, l.end);
        assert!(remaining < 30, "deep leaf keeps only {remaining} splits");
    }
}
