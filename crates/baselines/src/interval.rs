//! The XISS-style interval labeling scheme \[11\] (§2 of the paper).

use std::cmp::Ordering;
use xp_labelkit::codec::{read_varint, write_varint, CodecError};
use xp_labelkit::{LabelCodec, LabelOps, LabeledDoc, OrderedLabel, Scheme};
use xp_xmltree::{NodeId, XmlTree};

/// An interval label: `(order, size)` from an extended preorder numbering.
///
/// `order` is the node's preorder rank (root = 1, step = the scheme's gap);
/// `size` covers the subtree, so descendants satisfy
/// `order(x) < order(y) <= order(x) + size(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalLabel {
    /// Preorder rank.
    pub order: u64,
    /// Subtree extent.
    pub size: u64,
    /// Depth of the node (root = 0); XISS keeps it for parent queries.
    pub level: u32,
}

impl LabelOps for IntervalLabel {
    fn is_ancestor_of(&self, other: &Self) -> bool {
        self.order < other.order && other.order <= self.order + self.size
    }

    /// Two numbers, stored fixed-width at the larger endpoint's width —
    /// §3.1: "the maximum size of a label for the interval-based labeling
    /// scheme is 2(1 + log N) bits".
    fn size_bits(&self) -> u64 {
        let max = self.order.max(self.order + self.size).max(1);
        2 * (64 - max.leading_zeros() as u64)
    }

    fn level_hint(&self) -> Option<usize> {
        Some(self.level as usize)
    }
}

impl OrderedLabel for IntervalLabel {
    fn doc_cmp(&self, other: &Self) -> Ordering {
        self.order.cmp(&other.order)
    }
}

impl LabelCodec for IntervalLabel {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.order);
        write_varint(out, self.size);
        write_varint(out, u64::from(self.level));
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let order = read_varint(input)?;
        let size = read_varint(input)?;
        let level = u32::try_from(read_varint(input)?)
            .map_err(|_| CodecError::Corrupt("level exceeds u32"))?;
        Ok(IntervalLabel { order, size, level })
    }
}

/// The interval labeling scheme.
///
/// ```
/// use xp_baselines::IntervalScheme;
/// use xp_labelkit::{Scheme, LabelOps};
///
/// let tree = xp_xmltree::parse("<a><b><c/></b></a>").unwrap();
/// let doc = IntervalScheme::dense().label(&tree);
/// let a = tree.root();
/// let b = tree.first_child(a).unwrap();
/// assert!(doc.label(a).is_ancestor_of(doc.label(b)));
/// ```
#[derive(Debug, Clone)]
pub struct IntervalScheme {
    /// Distance between consecutive preorder ranks. 1 = dense (no room for
    /// insertions, the configuration the paper measures); larger gaps model
    /// "reserving enough space for anticipated insertions" (§2), which the
    /// paper notes only postpones relabeling.
    pub gap: u64,
}

impl Default for IntervalScheme {
    fn default() -> Self {
        IntervalScheme { gap: 1 }
    }
}

impl IntervalScheme {
    /// Dense numbering (gap 1).
    pub fn dense() -> Self {
        Self::default()
    }

    /// Sparse numbering with the given gap.
    pub fn with_gap(gap: u64) -> Self {
        assert!(gap >= 1);
        IntervalScheme { gap }
    }

    fn label_into(
        &self,
        tree: &XmlTree,
        node: NodeId,
        level: u32,
        counter: &mut u64,
        doc: &mut LabeledDoc<IntervalLabel>,
    ) {
        let order = *counter;
        *counter += self.gap;
        for child in tree.element_children(node) {
            self.label_into(tree, child, level + 1, counter, doc);
        }
        // size reaches the last rank consumed inside the subtree.
        doc.set(node, IntervalLabel { order, size: *counter - self.gap - order, level });
    }
}

impl Scheme for IntervalScheme {
    type Label = IntervalLabel;

    fn name(&self) -> &'static str {
        "Interval"
    }

    fn label(&self, tree: &XmlTree) -> LabeledDoc<IntervalLabel> {
        let mut doc = LabeledDoc::new(tree);
        let mut counter = 1u64;
        self.label_into(tree, tree.root(), 0, &mut counter, &mut doc);
        // LabeledDoc records insertion order; ours was postorder, so rebuild
        // the order index in document order for consumers that rely on it.
        let mut ordered = LabeledDoc::new(tree);
        for node in tree.elements() {
            ordered.set(node, *doc.label(node));
        }
        ordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::parse;

    fn check_exhaustively(src: &str, scheme: &IntervalScheme) {
        let tree = parse(src).unwrap();
        let doc = scheme.label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                assert_eq!(
                    doc.label(x).is_ancestor_of(doc.label(y)),
                    tree.is_ancestor(x, y),
                    "ancestor({x},{y}) in {src}"
                );
            }
        }
    }

    #[test]
    fn ancestor_test_is_exact() {
        for src in [
            "<a/>",
            "<a><b/></a>",
            "<a><b><c/><d/></b><e><f><g/></f></e><h/></a>",
            "<a><b/><c/><d/><e/><f/></a>",
        ] {
            check_exhaustively(src, &IntervalScheme::dense());
            check_exhaustively(src, &IntervalScheme::with_gap(10));
        }
    }

    #[test]
    fn dense_numbering_is_consecutive_preorder() {
        let tree = parse("<a><b><c/></b><d/></a>").unwrap();
        let doc = IntervalScheme::dense().label(&tree);
        let orders: Vec<u64> = tree.elements().map(|n| doc.label(n).order).collect();
        assert_eq!(orders, [1, 2, 3, 4]);
        assert_eq!(doc.label(tree.root()).size, 3, "root spans everything");
    }

    #[test]
    fn leaf_size_is_zero() {
        let tree = parse("<a><b/></a>").unwrap();
        let doc = IntervalScheme::dense().label(&tree);
        let b = tree.first_child(tree.root()).unwrap();
        assert_eq!(doc.label(b).size, 0);
    }

    #[test]
    fn doc_cmp_is_document_order() {
        let tree = parse("<a><b><c/></b><d/></a>").unwrap();
        let doc = IntervalScheme::dense().label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for w in nodes.windows(2) {
            assert_eq!(doc.label(w[0]).doc_cmp(doc.label(w[1])), Ordering::Less);
        }
    }

    #[test]
    fn levels_are_recorded() {
        let tree = parse("<a><b><c/></b></a>").unwrap();
        let doc = IntervalScheme::dense().label(&tree);
        let b = tree.first_child(tree.root()).unwrap();
        let c = tree.first_child(b).unwrap();
        assert_eq!(doc.label(tree.root()).level, 0);
        assert_eq!(doc.label(c).level, 2);
        assert!(doc.label(b).is_parent_of(doc.label(c)));
        assert!(!doc.label(tree.root()).is_parent_of(doc.label(c)));
    }

    #[test]
    fn size_bits_matches_paper_formula() {
        // 4 nodes, dense: max value 4 → 2·3 = 6 bits.
        let tree = parse("<a><b><c/></b><d/></a>").unwrap();
        let doc = IntervalScheme::dense().label(&tree);
        assert_eq!(doc.size_stats().max_bits, 6);
    }

    #[test]
    fn codec_round_trips_interval_documents() {
        use xp_labelkit::codec::{decode_doc, encode_doc};
        let tree = parse("<a><b><c/></b><d/></a>").unwrap();
        let doc = IntervalScheme::with_gap(100).label(&tree);
        let decoded = decode_doc::<IntervalLabel>(&tree, &encode_doc(&doc)).unwrap();
        for node in tree.elements() {
            assert_eq!(decoded.label(node), doc.label(node));
        }
    }

    #[test]
    fn insertion_relabels_following_nodes_and_ancestors() {
        // The Fig 16/17 measurement pattern: label, mutate, relabel, diff.
        let mut tree = parse("<a><b><c/></b><d/><e/></a>").unwrap();
        let scheme = IntervalScheme::dense();
        let before = scheme.label(&tree);
        let b = tree.first_child(tree.root()).unwrap();
        let c = tree.first_child(b).unwrap();
        tree.append_element(c, "new");
        let after = scheme.label(&tree);
        let diff = before.diff_count(&after);
        // d and e shift; a and b grow; c's size changes: 5 changed + 1 new.
        assert_eq!(diff.changed, 5);
        assert_eq!(diff.new_count, 1);
    }

    #[test]
    fn gap_absorbs_a_trailing_append_but_not_a_front_insert() {
        let mut tree = parse("<a><b/><c/></a>").unwrap();
        let scheme = IntervalScheme::with_gap(100);
        let before = scheme.label(&tree);
        // Appending at the very end: every existing order stays put, only
        // ancestors' sizes grow.
        let c = tree.last_child(tree.root()).unwrap();
        tree.append_element(c, "z");
        let after = scheme.label(&tree);
        let diff = before.diff_count(&after);
        assert_eq!(diff.changed, 2, "a's and c's size fields grow");
        // NOTE: a real gapped implementation would assign an order inside
        // the gap without relabeling; full relabeling is the paper's
        // worst-case accounting for static schemes, which our gap=1 default
        // reproduces. This test documents the gap's limits instead.
    }
}
