//! # xp-baselines — the labeling schemes the paper compares against
//!
//! * [`interval::IntervalScheme`] — the XISS-style interval scheme \[11\]:
//!   each node gets `(order, size)` from an extended preorder numbering;
//!   `x` is an ancestor of `y` iff `order(x) < order(y) <= order(x)+size(x)`.
//!   Static: insertions renumber everything after the insertion point.
//! * [`prefix::Prefix1Scheme`] — the basic binary prefix scheme: the i-th
//!   child's self-label is `1^(i-1) 0`; a node's label is its parent's label
//!   concatenated with its self-label; ancestorship is the proper-prefix
//!   test. Formula (1): `Lmax = D·F`.
//! * [`prefix::Prefix2Scheme`] — the Cohen–Kaplan–Milo optimized prefix
//!   scheme \[7\]: sibling self-labels follow the increment-and-double
//!   sequence `0, 10, 1100, 1101, 1110, 11110000, …`.
//!   Formula (2): `Lmax = D·4⌈log F⌉`.
//! * [`dewey::DeweyScheme`] — Dewey order \[15\]: the vector of 1-based
//!   sibling ordinals on the root path.
//! * [`floatival::FloatIntervalScheme`] — the floating-point interval
//!   scheme (QRS, \[2\]), including the mantissa-exhaustion failure §2
//!   criticizes.
//!
//! All labels implement [`xp_labelkit::LabelOps`]; the interval, prefix, and
//! Dewey labels also implement [`xp_labelkit::OrderedLabel`] because they
//! encode document order directly — which is exactly why their
//! order-sensitive updates are expensive (Figure 18) while the prime
//! scheme's SC table keeps order out of the labels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dewey;
pub mod dynamic;
pub mod floatival;
pub mod interval;
pub mod prefix;

pub use dewey::{DeweyLabel, DeweyScheme};
pub use floatival::{FloatIntervalScheme, FloatLabel};
pub use interval::{IntervalLabel, IntervalScheme};
pub use prefix::{Prefix1Scheme, Prefix2Scheme, PrefixLabel};
