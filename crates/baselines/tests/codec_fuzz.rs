//! Codec robustness: decoding arbitrary bytes must never panic, and every
//! encode → decode round trip must be the identity.

use xp_baselines::dewey::DeweyLabel;
use xp_baselines::interval::IntervalLabel;
use xp_baselines::prefix::PrefixLabel;
use xp_labelkit::codec::LabelCodec;
use xp_labelkit::BitString;
use xp_testkit::propcheck::{string_from, u32s, u64s, u8s, usizes, vec_of};
use xp_testkit::{prop_assert, prop_assert_eq, propcheck};

propcheck! {
    #![config(cases = 256)]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec_of(u8s(0..=255), 0..64)) {
        let _ = IntervalLabel::decode(&mut bytes.as_slice());
        let _ = PrefixLabel::decode(&mut bytes.as_slice());
        let _ = DeweyLabel::decode(&mut bytes.as_slice());
    }

    #[test]
    fn interval_round_trips(
        order in u64s(1..u64::MAX / 2),
        size in u64s(0..u64::MAX / 2),
        level in u32s(0..1000),
    ) {
        let label = IntervalLabel { order, size, level };
        let mut buf = Vec::new();
        label.encode(&mut buf);
        let mut slice = buf.as_slice();
        prop_assert_eq!(IntervalLabel::decode(&mut slice).unwrap(), label);
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn dewey_round_trips(components in vec_of(u32s(1..100_000), 0..12)) {
        let label = DeweyLabel::from_components(components);
        let mut buf = Vec::new();
        label.encode(&mut buf);
        prop_assert_eq!(DeweyLabel::decode(&mut buf.as_slice()).unwrap(), label);
    }

    #[test]
    fn prefix_round_trips(bits in string_from("01", 0..=80), extra_level in usizes(0..20)) {
        // Build a label through the public scheme API surface: concat codes.
        let code = BitString::from_bits(&bits);
        let mut label = xp_baselines::prefix::PrefixLabel::root();
        label = xp_baselines::prefix::PrefixLabel::child_of(&label, &code);
        for _ in 0..extra_level {
            label = xp_baselines::prefix::PrefixLabel::child_of(&label, &BitString::from_bits("10"));
        }
        let mut buf = Vec::new();
        label.encode(&mut buf);
        prop_assert_eq!(PrefixLabel::decode(&mut buf.as_slice()).unwrap(), label);
    }
}

#[test]
fn truncated_streams_error_cleanly() {
    let label = IntervalLabel { order: 300, size: 4, level: 2 };
    let mut buf = Vec::new();
    label.encode(&mut buf);
    for cut in 0..buf.len() {
        assert!(IntervalLabel::decode(&mut &buf[..cut]).is_err(), "cut at {cut}");
    }
}
