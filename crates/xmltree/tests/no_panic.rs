//! Robustness: the parser must never panic — arbitrary input yields either
//! a tree or a positioned error.

use xp_testkit::propcheck::{any_string, index, string_from};
use xp_testkit::propcheck;
use xp_xmltree::parse;

propcheck! {
    #![config(cases = 512)]

    #[test]
    fn arbitrary_strings_never_panic(input in any_string(0..=200)) {
        let _ = parse(&input);
    }

    #[test]
    fn xmlish_strings_never_panic(
        input in string_from("<>/abc \"'=&;![]#x0123456789-", 0..=120)
    ) {
        let _ = parse(&input);
    }

    #[test]
    fn mangled_valid_documents_never_panic(
        cut in index(),
        insert in index(),
        junk in string_from("<>&;\"'", 1..=4),
    ) {
        let doc = r#"<play t="x"><!--c--><act><speech>line &amp; more</speech><![CDATA[raw]]></act></play>"#;
        // Truncate somewhere.
        let cut_at = cut.index(doc.len() + 1);
        let truncated = &doc[..floor_char(doc, cut_at)];
        let _ = parse(truncated);
        // Splice junk somewhere.
        let at = floor_char(doc, insert.index(doc.len() + 1));
        let spliced = format!("{}{}{}", &doc[..at], junk, &doc[at..]);
        let _ = parse(&spliced);
    }
}

/// Largest char boundary `<= i`.
fn floor_char(s: &str, mut i: usize) -> usize {
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

#[test]
fn error_positions_are_always_in_range() {
    for bad in ["<", "<a", "<a><b>", "</a>", "<a></b>", "<a>&bad;</a>", "<a x=>", "<a>&#xZZ;</a>"] {
        if let Err(e) = parse(bad) {
            assert!(e.offset <= bad.len(), "{bad:?}: offset {} out of range", e.offset);
            assert!(e.line >= 1 && e.column >= 1, "{bad:?}");
        }
    }
}
