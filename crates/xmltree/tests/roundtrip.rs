//! Property tests: serialize → parse is the identity on arbitrary trees,
//! including hostile text content; mutation preserves structural
//! invariants.

use xp_testkit::propcheck::{ascii_printable, index, vec_of, Gen};
use xp_testkit::{prop_assert_eq, prop_assume, propcheck};
use xp_xmltree::{parse, serialize, NodeKind, XmlTree};

/// An arbitrary tree with arbitrary (printable) text content sprinkled in.
fn tree_strategy() -> Gen<XmlTree> {
    Gen::new(|source| {
        let attach = vec_of(index(), 0..30).generate(source);
        let texts = vec_of(ascii_printable(0..=12), 0..10).generate(source);
        let mut tree = XmlTree::new("root");
        let mut elements = vec![tree.root()];
        for (i, idx) in attach.iter().enumerate() {
            let parent = elements[idx.index(elements.len())];
            let child = tree.append_element(parent, format!("e{}", i % 5));
            elements.push(child);
        }
        for (i, t) in texts.into_iter().enumerate() {
            // Whitespace-only text is dropped by the default parser
            // options; keep the round trip honest by skipping those.
            if t.trim().is_empty() {
                continue;
            }
            let parent = elements[i % elements.len()];
            tree.append_text(parent, t);
        }
        tree
    })
}

/// Canonical structure with adjacent text siblings merged — XML cannot
/// distinguish `"a" + "b"` from `"ab"`, so neither should the comparison.
fn structure(tree: &XmlTree) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for n in tree.descendants(tree.root()) {
        let depth = tree.depth(n);
        match tree.kind(n) {
            NodeKind::Element { tag, .. } => out.push((depth, format!("<{tag}>"))),
            NodeKind::Text(t) => {
                match out.last_mut() {
                    Some((d, last)) if *d == depth && last.starts_with('#') => {
                        last.push_str(t);
                    }
                    _ => out.push((depth, format!("#{t}"))),
                }
            }
        }
    }
    out
}

propcheck! {
    #![config(cases = 256)]

    #[test]
    fn serialize_parse_is_identity(tree in tree_strategy()) {
        let xml = serialize::to_string(&tree);
        let reparsed = parse(&xml).unwrap();
        prop_assert_eq!(structure(&tree), structure(&reparsed));
        // And the serialization is a fixpoint.
        prop_assert_eq!(serialize::to_string(&reparsed), xml);
    }

    #[test]
    fn pretty_parse_preserves_element_structure(tree in tree_strategy()) {
        let xml = serialize::to_string_pretty(&tree, 2);
        let reparsed = parse(&xml).unwrap();
        // Pretty-printing adds whitespace text which default parsing drops,
        // so compare element structure only.
        let elements = |t: &XmlTree| -> Vec<(usize, String)> {
            t.elements().map(|n| (t.depth(n), t.tag(n).unwrap().to_string())).collect()
        };
        prop_assert_eq!(elements(&tree), elements(&reparsed));
    }

    #[test]
    fn attributes_round_trip(values in vec_of(ascii_printable(0..=10), 0..6)) {
        let attrs: Vec<(String, String)> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| (format!("a{i}"), v))
            .collect();
        let tree = XmlTree::new_with_attrs("x", attrs.clone());
        let xml = serialize::to_string(&tree);
        let reparsed = parse(&xml).unwrap();
        prop_assert_eq!(reparsed.attrs(reparsed.root()), &attrs[..]);
    }

    #[test]
    fn detach_preserves_the_remaining_structure(
        tree in tree_strategy(),
        pick in index(),
    ) {
        let mut tree = tree;
        let nodes: Vec<_> = tree.elements().collect();
        prop_assume!(nodes.len() > 1);
        let victim = nodes[1 + pick.index(nodes.len() - 1)]; // never the root
        let removed = tree.descendants(victim).count();
        let before = tree.descendants(tree.root()).count();
        tree.detach(victim);
        let after = tree.descendants(tree.root()).count();
        prop_assert_eq!(before - removed, after);
        // Links stay consistent: every reachable node's children point back.
        for n in tree.descendants(tree.root()).collect::<Vec<_>>() {
            for c in tree.children(n) {
                prop_assert_eq!(tree.parent(c), Some(n));
            }
        }
    }

    #[test]
    fn wrap_preserves_preorder_of_other_nodes(
        tree in tree_strategy(),
        pick in index(),
    ) {
        let mut tree = tree;
        let nodes: Vec<_> = tree.elements().collect();
        prop_assume!(nodes.len() > 1);
        let target = nodes[1 + pick.index(nodes.len() - 1)];
        let before: Vec<_> = tree.elements().collect();
        let wrapper = tree.wrap_with_parent(target, "w");
        let after: Vec<_> = tree.elements().filter(|&n| n != wrapper).collect();
        prop_assert_eq!(before, after, "wrapping must not reorder the others");
        prop_assert_eq!(tree.parent(target), Some(wrapper));
    }
}

/// Regression distilled from the retired `roundtrip.proptest-regressions`
/// seed file: a root whose only children are two adjacent text nodes (`"!"`,
/// `"!"`). Serialization emits `"!!"`, so re-parsing yields *one* merged
/// text node — the comparison must treat the two shapes as identical, which
/// is exactly what `structure`'s text-merging does.
#[test]
fn regression_adjacent_text_siblings_round_trip() {
    let mut tree = XmlTree::new("root");
    let root = tree.root();
    tree.append_text(root, "!");
    tree.append_text(root, "!");

    let xml = serialize::to_string(&tree);
    let reparsed = parse(&xml).unwrap();
    assert_eq!(structure(&tree), structure(&reparsed));
    assert_eq!(serialize::to_string(&reparsed), xml);
    // The reparsed tree really did merge the siblings.
    assert_eq!(reparsed.descendants(reparsed.root()).count(), 2, "root + one text node");
}
