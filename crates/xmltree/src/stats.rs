//! Structural statistics: the `N`, `D`, `F` of the paper's size model.
//!
//! §3.1 writes every label-size formula in terms of the maximal depth `D`,
//! maximal fan-out `F`, and node count `N` of the XML tree; §5.1 reports the
//! datasets' characteristics in the same terms (Table 1).

use crate::tree::{NodeId, XmlTree};
use std::collections::BTreeMap;

/// Structural statistics of an XML tree (element nodes only, matching the
/// paper's convention: labeling targets element structure).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Number of element nodes, the paper's `N`.
    pub node_count: usize,
    /// Maximum depth (root = 0), the paper's `D`.
    pub max_depth: usize,
    /// Maximum number of element children under one parent, the paper's `F`.
    pub max_fanout: usize,
    /// Number of leaf elements (no element children).
    pub leaf_count: usize,
    /// Mean depth over all element nodes.
    pub avg_depth: f64,
    /// Element count per depth level, level 0 first.
    pub level_counts: Vec<usize>,
    /// Distinct tag names with their frequencies.
    pub tag_histogram: BTreeMap<String, usize>,
}

impl TreeStats {
    /// Computes statistics over the element structure of `tree`.
    pub fn compute(tree: &XmlTree) -> TreeStats {
        let mut node_count = 0usize;
        let mut leaf_count = 0usize;
        let mut max_fanout = 0usize;
        let mut depth_sum = 0usize;
        let mut level_counts: Vec<usize> = Vec::new();
        let mut tag_histogram = BTreeMap::new();

        // Single pass carrying depth explicitly: cheaper than per-node
        // ancestor walks on large documents.
        let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
        while let Some((node, depth)) = stack.pop() {
            node_count += 1;
            depth_sum += depth;
            if level_counts.len() <= depth {
                level_counts.resize(depth + 1, 0);
            }
            level_counts[depth] += 1;
            if let Some(tag) = tree.tag(node) {
                *tag_histogram.entry(tag.to_string()).or_insert(0) += 1;
            }
            let kids: Vec<NodeId> = tree.element_children(node).collect();
            max_fanout = max_fanout.max(kids.len());
            if kids.is_empty() {
                leaf_count += 1;
            }
            for k in kids.into_iter().rev() {
                stack.push((k, depth + 1));
            }
        }

        TreeStats {
            node_count,
            max_depth: level_counts.len() - 1,
            max_fanout,
            leaf_count,
            avg_depth: depth_sum as f64 / node_count as f64,
            level_counts,
            tag_histogram,
        }
    }

    /// Fraction of elements that are leaves — the paper attributes Opt2's
    /// large win to "the majority of the nodes ... are leaf nodes".
    pub fn leaf_fraction(&self) -> f64 {
        self.leaf_count as f64 / self.node_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn single_root() {
        let t = parse("<a/>").unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.node_count, 1);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.max_fanout, 0);
        assert_eq!(s.leaf_count, 1);
        assert_eq!(s.level_counts, vec![1]);
        assert_eq!(s.avg_depth, 0.0);
    }

    #[test]
    fn mixed_tree() {
        // a(b(c,c,c), b) → N=6, D=2, F=3.
        let t = parse("<a><b><c/><c/><c/></b><b/></a>").unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.node_count, 6);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.max_fanout, 3);
        assert_eq!(s.leaf_count, 4); // 3×c + trailing b
        assert_eq!(s.level_counts, vec![1, 2, 3]);
        assert_eq!(s.tag_histogram["c"], 3);
        assert_eq!(s.tag_histogram["b"], 2);
    }

    #[test]
    fn text_nodes_do_not_count() {
        let t = parse("<a>hi<b>there</b></a>").unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.node_count, 2);
        assert_eq!(s.max_fanout, 1);
        assert_eq!(s.leaf_count, 1);
    }

    #[test]
    fn perfect_tree_counts() {
        // Perfect tree F=3, D=2: N = 1 + 3 + 9 = 13.
        let mut doc = String::from("<r>");
        for _ in 0..3 {
            doc.push_str("<m><l/><l/><l/></m>");
        }
        doc.push_str("</r>");
        let s = TreeStats::compute(&parse(&doc).unwrap());
        assert_eq!(s.node_count, 13);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.max_fanout, 3);
        assert_eq!(s.leaf_count, 9);
        assert!((s.leaf_fraction() - 9.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn deep_chain() {
        let t = parse("<a><b><c><d><e/></d></c></b></a>").unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.max_depth, 4);
        assert_eq!(s.max_fanout, 1);
        assert_eq!(s.avg_depth, (1 + 2 + 3 + 4) as f64 / 5.0);
    }
}
