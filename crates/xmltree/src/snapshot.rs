//! Exact arena snapshots of an [`XmlTree`].
//!
//! The persistence layer (`xp-store`) records mutations against arena slot
//! indices, so a checkpointed tree must reload with **byte-identical arena
//! layout** — the same slots, in the same order, including detached nodes.
//! Serializing to XML text and reparsing would reassign indices and drop
//! detached subtrees; a [`TreeSnapshot`] instead captures every slot verbatim.
//!
//! [`XmlTree::from_snapshot`] validates the structure before constructing a
//! tree, because snapshots cross a trust boundary (they are decoded from
//! disk): out-of-range links, sibling-chain corruption, multiple parents
//! claiming one child, and parent- or sibling-link cycles are all rejected
//! with a typed [`SnapshotError`] instead of looping or panicking later.

use std::fmt;

use crate::tree::{Node, NodeId, NodeKind, XmlTree};

/// One arena slot, links expressed as raw slot indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSnapshot {
    /// The node payload (element tag + attrs, or text).
    pub kind: NodeKind,
    /// Parent slot, `None` for the root and detached nodes.
    pub parent: Option<u32>,
    /// First child slot.
    pub first_child: Option<u32>,
    /// Last child slot.
    pub last_child: Option<u32>,
    /// Previous sibling slot.
    pub prev_sibling: Option<u32>,
    /// Next sibling slot.
    pub next_sibling: Option<u32>,
}

/// A complete, order-preserving copy of an [`XmlTree`] arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSnapshot {
    /// Slot index of the root element.
    pub root: u32,
    /// Every arena slot in allocation order (detached slots included).
    pub slots: Vec<SlotSnapshot>,
}

/// Why a [`TreeSnapshot`] was rejected by [`XmlTree::from_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot has no slots at all.
    Empty,
    /// `root` does not name an existing slot.
    RootOutOfRange,
    /// The root slot is a text node.
    RootNotElement,
    /// The root slot has a parent or sibling links.
    RootAttached,
    /// Some link points past the end of the slot table.
    LinkOutOfRange,
    /// Following parent links never reaches a parentless node.
    ParentCycle,
    /// A child's `parent` back-link disagrees with the chain it sits in.
    BadParentLink,
    /// A sibling chain's prev/next links disagree, or it cycles.
    BadSiblingChain,
    /// Two different parents (or chain positions) claim the same slot.
    MultiParent,
    /// A slot records a parent but never appears in that parent's chain.
    UnlinkedChild,
    /// A detached slot (no parent) still carries sibling links.
    DetachedWithSiblings,
    /// A text slot claims to have children.
    TextWithChildren,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SnapshotError::Empty => "snapshot has no slots",
            SnapshotError::RootOutOfRange => "root index out of range",
            SnapshotError::RootNotElement => "root slot is not an element",
            SnapshotError::RootAttached => "root slot has parent or sibling links",
            SnapshotError::LinkOutOfRange => "node link out of range",
            SnapshotError::ParentCycle => "parent links form a cycle",
            SnapshotError::BadParentLink => "child's parent back-link mismatch",
            SnapshotError::BadSiblingChain => "sibling chain corrupt or cyclic",
            SnapshotError::MultiParent => "slot claimed by more than one parent",
            SnapshotError::UnlinkedChild => "slot has a parent but is not in its chain",
            SnapshotError::DetachedWithSiblings => "detached slot has sibling links",
            SnapshotError::TextWithChildren => "text slot has children",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SnapshotError {}

const UNKNOWN_DEPTH: u32 = u32::MAX;

impl XmlTree {
    /// Captures every arena slot, preserving indices exactly.
    pub fn snapshot(&self) -> TreeSnapshot {
        let to_u32 = |id: Option<NodeId>| id.map(|n| n.index() as u32);
        let slots = (0..self.arena_len())
            .map(|i| {
                // All indices below arena_len resolve.
                #[allow(clippy::expect_used)]
                let id = self.node_at(i).expect("index < arena_len");
                let n = self.raw_node(id);
                SlotSnapshot {
                    kind: n.kind.clone(),
                    parent: to_u32(n.parent),
                    first_child: to_u32(n.first_child),
                    last_child: to_u32(n.last_child),
                    prev_sibling: to_u32(n.prev_sibling),
                    next_sibling: to_u32(n.next_sibling),
                }
            })
            .collect();
        TreeSnapshot { root: self.root().index() as u32, slots }
    }

    /// Reconstructs a tree with the exact arena layout of `snap`, after
    /// validating that the slot links describe a well-formed forest (one
    /// rooted document tree plus zero or more detached subtrees).
    pub fn from_snapshot(snap: &TreeSnapshot) -> Result<XmlTree, SnapshotError> {
        validate(snap)?;
        // validate() bounds-checked every link.
        let id = |raw: Option<u32>| raw.map(XmlTree::node_id_unchecked);
        let nodes = snap
            .slots
            .iter()
            .map(|s| Node {
                kind: s.kind.clone(),
                parent: id(s.parent),
                first_child: id(s.first_child),
                last_child: id(s.last_child),
                prev_sibling: id(s.prev_sibling),
                next_sibling: id(s.next_sibling),
            })
            .collect();
        Ok(XmlTree::from_raw_parts(nodes, XmlTree::node_id_unchecked(snap.root)))
    }
}

fn validate(snap: &TreeSnapshot) -> Result<(), SnapshotError> {
    let n = snap.slots.len();
    if n == 0 {
        return Err(SnapshotError::Empty);
    }
    let root = snap.root as usize;
    if root >= n {
        return Err(SnapshotError::RootOutOfRange);
    }
    let root_slot = &snap.slots[root];
    if !matches!(root_slot.kind, NodeKind::Element { .. }) {
        return Err(SnapshotError::RootNotElement);
    }
    if root_slot.parent.is_some()
        || root_slot.prev_sibling.is_some()
        || root_slot.next_sibling.is_some()
    {
        return Err(SnapshotError::RootAttached);
    }

    // Bounds + per-slot shape.
    for s in &snap.slots {
        for link in [s.parent, s.first_child, s.last_child, s.prev_sibling, s.next_sibling] {
            if let Some(l) = link {
                if l as usize >= n {
                    return Err(SnapshotError::LinkOutOfRange);
                }
            }
        }
        if matches!(s.kind, NodeKind::Text(_)) && s.first_child.is_some() {
            return Err(SnapshotError::TextWithChildren);
        }
    }

    // Parent links must be acyclic. Memoized depth walk: total O(n).
    let mut depth = vec![UNKNOWN_DEPTH; n];
    for start in 0..n {
        let mut path = Vec::new();
        let mut cur = start;
        while depth[cur] == UNKNOWN_DEPTH {
            path.push(cur);
            if path.len() > n {
                return Err(SnapshotError::ParentCycle);
            }
            match snap.slots[cur].parent {
                Some(p) => cur = p as usize,
                None => break,
            }
        }
        let mut d = if depth[cur] == UNKNOWN_DEPTH {
            // `cur` is parentless and unvisited: it is the last path entry.
            path.pop();
            depth[cur] = 0;
            0
        } else {
            depth[cur]
        };
        for &slot in path.iter().rev() {
            d = d.saturating_add(1);
            depth[slot] = d;
        }
    }

    // Every child chain must be mutually consistent with its members'
    // back-links, claim each slot at most once, and terminate.
    let mut claimed = vec![false; n];
    for (i, s) in snap.slots.iter().enumerate() {
        let mut prev: Option<u32> = None;
        let mut cur = s.first_child;
        let mut steps = 0usize;
        while let Some(c) = cur {
            let c = c as usize;
            steps += 1;
            if steps > n {
                return Err(SnapshotError::BadSiblingChain);
            }
            if claimed[c] {
                return Err(SnapshotError::MultiParent);
            }
            claimed[c] = true;
            if snap.slots[c].parent != Some(i as u32) {
                return Err(SnapshotError::BadParentLink);
            }
            if snap.slots[c].prev_sibling != prev {
                return Err(SnapshotError::BadSiblingChain);
            }
            prev = Some(c as u32);
            cur = snap.slots[c].next_sibling;
        }
        if s.last_child != prev {
            return Err(SnapshotError::BadSiblingChain);
        }
    }
    for (i, s) in snap.slots.iter().enumerate() {
        match s.parent {
            Some(_) if !claimed[i] => return Err(SnapshotError::UnlinkedChild),
            None if s.prev_sibling.is_some() || s.next_sibling.is_some() => {
                return Err(SnapshotError::DetachedWithSiblings)
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn sample() -> XmlTree {
        let mut t = parse("<a><b><c/>text</b><d x=\"1\"/></a>").unwrap();
        // Leave a detached subtree in the arena so round-trips cover it.
        let root = t.root();
        let d = t.children(root).nth(1).unwrap();
        t.detach(d);
        t
    }

    #[test]
    fn round_trip_is_arena_identical() {
        let t = sample();
        let snap = t.snapshot();
        let back = XmlTree::from_snapshot(&snap).unwrap();
        assert_eq!(back.arena_len(), t.arena_len());
        assert_eq!(back.root(), t.root());
        for i in 0..t.arena_len() {
            let a = t.node_at(i).unwrap();
            let b = back.node_at(i).unwrap();
            assert_eq!(t.kind(a), back.kind(b));
            assert_eq!(t.parent(a), back.parent(b));
            assert_eq!(t.first_child(a), back.first_child(b));
            assert_eq!(t.last_child(a), back.last_child(b));
            assert_eq!(t.prev_sibling(a), back.prev_sibling(b));
            assert_eq!(t.next_sibling(a), back.next_sibling(b));
        }
        assert_eq!(back.snapshot(), snap);
    }

    #[test]
    fn rejects_root_out_of_range() {
        let mut snap = sample().snapshot();
        snap.root = snap.slots.len() as u32;
        assert_eq!(XmlTree::from_snapshot(&snap).unwrap_err(), SnapshotError::RootOutOfRange);
    }

    #[test]
    fn rejects_link_out_of_range() {
        let mut snap = sample().snapshot();
        snap.slots[1].first_child = Some(snap.slots.len() as u32);
        assert_eq!(XmlTree::from_snapshot(&snap).unwrap_err(), SnapshotError::LinkOutOfRange);
    }

    #[test]
    fn rejects_parent_cycle() {
        let mut snap = sample().snapshot();
        // b (slot 1) and c (slot 2): make them each other's parent, with
        // coherent child chains so only the cycle check can catch it.
        snap.slots[1].parent = Some(2);
        snap.slots[1].prev_sibling = None;
        snap.slots[1].next_sibling = None;
        snap.slots[2].first_child = Some(1);
        snap.slots[2].last_child = Some(1);
        snap.slots[0].first_child = None;
        snap.slots[0].last_child = None;
        // Keep text node (slot 3) consistent: orphan it.
        snap.slots[3].parent = None;
        snap.slots[3].prev_sibling = None;
        snap.slots[3].next_sibling = None;
        snap.slots[1].first_child = Some(2);
        snap.slots[1].last_child = Some(2);
        assert_eq!(XmlTree::from_snapshot(&snap).unwrap_err(), SnapshotError::ParentCycle);
    }

    #[test]
    fn rejects_multi_parent() {
        let mut snap = sample().snapshot();
        // Splice c (slot 2) into the root's child chain after b while b's
        // own chain still lists it: root walks [b, c, text] coherently, then
        // b's chain re-claims c.
        snap.slots[2].parent = Some(0);
        snap.slots[2].prev_sibling = Some(1);
        snap.slots[2].next_sibling = Some(3);
        snap.slots[1].next_sibling = Some(2);
        snap.slots[3].prev_sibling = Some(2);
        snap.slots[0].last_child = Some(3);
        snap.slots[3].parent = Some(0);
        let err = XmlTree::from_snapshot(&snap).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::MultiParent
                    | SnapshotError::BadSiblingChain
                    | SnapshotError::BadParentLink
            ),
            "unexpected: {err:?}"
        );
    }

    #[test]
    fn rejects_detached_with_siblings() {
        let mut snap = sample().snapshot();
        let d = snap.slots.iter().position(|s| matches!(&s.kind, NodeKind::Element{tag,..} if tag == "d")).unwrap();
        snap.slots[d].next_sibling = Some(0);
        let err = XmlTree::from_snapshot(&snap).unwrap_err();
        assert!(
            matches!(err, SnapshotError::DetachedWithSiblings | SnapshotError::RootAttached),
            "unexpected: {err:?}"
        );
    }

    #[test]
    fn rejects_text_with_children() {
        let mut snap = sample().snapshot();
        let t = snap.slots.iter().position(|s| matches!(s.kind, NodeKind::Text(_))).unwrap();
        snap.slots[t].first_child = Some(0);
        assert_eq!(XmlTree::from_snapshot(&snap).unwrap_err(), SnapshotError::TextWithChildren);
    }

    #[test]
    fn node_at_resolves_and_bounds() {
        let t = sample();
        assert_eq!(t.node_at(0), Some(t.root()));
        assert!(t.node_at(t.arena_len()).is_none());
    }
}
