//! Serializer: turns an [`XmlTree`] back into markup, compact or indented.

use crate::tree::{NodeId, NodeKind, XmlTree};

/// Serializes the whole document compactly (no added whitespace).
pub fn to_string(tree: &XmlTree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out, None, 0);
    out
}

/// Serializes with `indent` spaces per nesting level and newlines between
/// elements. Text nodes inhibit indentation inside their parent so mixed
/// content round-trips without gaining whitespace.
pub fn to_string_pretty(tree: &XmlTree, indent: usize) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out, Some(indent), 0);
    out.push('\n');
    out
}

fn write_node(tree: &XmlTree, id: NodeId, out: &mut String, indent: Option<usize>, level: usize) {
    match tree.kind(id) {
        NodeKind::Text(t) => escape_text(t, out),
        NodeKind::Element { tag, attrs } => {
            out.push('<');
            out.push_str(tag);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                escape_attr(v, out);
                out.push('"');
            }
            let mut children = tree.children(id).peekable();
            if children.peek().is_none() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let mixed = tree.children(id).any(|c| !tree.is_element(c));
            let pretty = indent.filter(|_| !mixed);
            for child in children {
                if let Some(step) = pretty {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (level + 1)));
                }
                write_node(tree, child, out, indent, level + 1);
            }
            if let Some(step) = pretty {
                out.push('\n');
                out.push_str(&" ".repeat(step * level));
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            c => out.push(c),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn compact_round_trip() {
        let src = r#"<play title="Hamlet"><act><speech speaker="HAMLET">To be</speech></act><act/></play>"#;
        let tree = parse(src).unwrap();
        assert_eq!(to_string(&tree), src);
    }

    #[test]
    fn text_is_escaped() {
        let mut t = XmlTree::new("a");
        t.append_text(t.root(), "x < y & z > w");
        assert_eq!(to_string(&t), "<a>x &lt; y &amp; z &gt; w</a>");
    }

    #[test]
    fn attr_is_escaped() {
        let t = XmlTree::new_with_attrs("a", vec![("q".into(), "say \"hi\" & <go>".into())]);
        assert_eq!(to_string(&t), r#"<a q="say &quot;hi&quot; &amp; &lt;go>"/>"#);
    }

    #[test]
    fn escape_then_parse_is_identity() {
        let mut t = XmlTree::new("a");
        t.append_text(t.root(), "<&>\"'");
        let reparsed = parse(&to_string(&t)).unwrap();
        let txt = reparsed.first_child(reparsed.root()).unwrap();
        assert_eq!(reparsed.text(txt), Some("<&>\"'"));
    }

    #[test]
    fn pretty_printing_indents_elements() {
        let tree = parse("<a><b><c/></b><d/></a>").unwrap();
        let pretty = to_string_pretty(&tree, 2);
        assert_eq!(pretty, "<a>\n  <b>\n    <c/>\n  </b>\n  <d/>\n</a>\n");
    }

    #[test]
    fn pretty_printing_leaves_mixed_content_alone() {
        let src = "<p>hello <b>world</b>!</p>";
        let tree = parse(src).unwrap();
        assert_eq!(to_string_pretty(&tree, 2), format!("{src}\n"));
    }

    #[test]
    fn pretty_round_trips_through_parse() {
        let src = "<play><act><scene><line/></scene></act><act/></play>";
        let tree = parse(src).unwrap();
        let pretty = to_string_pretty(&tree, 4);
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(to_string(&reparsed), src);
    }
}
