//! Streaming (SAX-style) parsing: events instead of a tree.
//!
//! The paper's deployment model stores *labels* in a database — the XML
//! tree itself need not be materialized. A streaming parser makes that
//! pipeline real: [`parse_sax`] pushes start/text/end events to a handler,
//! and `xp-prime::stream` labels them on the fly in a single pass.
//!
//! Differences from the tree parser: text is delivered verbatim (including
//! whitespace-only runs) and adjacent runs separated by comments/PIs arrive
//! as separate [`SaxEvent::Text`] events.

use crate::parse::{ParseError, ParseErrorKind, ParseLimit, ParseOptions, Parser};

/// One parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaxEvent {
    /// `<tag attr="…">` (also emitted for self-closing elements, followed
    /// immediately by the matching [`SaxEvent::EndElement`]).
    StartElement {
        /// The element name.
        tag: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// `</tag>`.
    EndElement {
        /// The element name.
        tag: String,
    },
    /// A run of character data (entity-decoded; CDATA delivered verbatim).
    Text(
        /// The decoded text.
        String,
    ),
}

/// Parses a complete document, pushing events to `handler`.
pub fn parse_sax<F: FnMut(SaxEvent)>(input: &str, handler: F) -> Result<(), ParseError> {
    parse_sax_with(input, &ParseOptions::default(), handler)
}

/// Parses a complete document with explicit options, pushing events to
/// `handler`. The [`ParseOptions`] resource limits apply here too (depth is
/// tracked through the open-element stack rather than recursion).
pub fn parse_sax_with<F: FnMut(SaxEvent)>(
    input: &str,
    opts: &ParseOptions,
    mut handler: F,
) -> Result<(), ParseError> {
    let mut p = Parser::new(input, opts);
    p.check_input_size()?;
    p.skip_prolog_misc()?;
    if p.peek() != Some(b'<') {
        return Err(p.err(ParseErrorKind::NotSingleRoot));
    }
    p.pos += 1;
    let (tag, attrs, self_closing) = p.open_tag()?;
    handler(SaxEvent::StartElement { tag: tag.clone(), attrs });
    let mut stack: Vec<String> = Vec::new();
    if self_closing {
        handler(SaxEvent::EndElement { tag });
    } else {
        stack.push(tag);
    }
    if stack.len() > opts.max_depth {
        return Err(p.err(ParseErrorKind::LimitExceeded(ParseLimit::Depth(opts.max_depth))));
    }

    let mut text = String::new();
    let flush = |text: &mut String, handler: &mut F| {
        if !text.is_empty() {
            handler(SaxEvent::Text(std::mem::take(text)));
        }
    };

    while !stack.is_empty() {
        match p.peek() {
            None => return Err(p.err(ParseErrorKind::UnexpectedEof("element content"))),
            Some(b'<') => {
                if p.eat("<![CDATA[") {
                    let cdata = p.until("]]>", "CDATA section")?;
                    text.push_str(cdata);
                    continue;
                }
                // Any other markup ends the current text run.
                flush(&mut text, &mut handler);
                if p.eat("<!--") {
                    p.until("-->", "comment")?;
                    continue;
                }
                if p.eat("<?") {
                    p.until("?>", "processing instruction")?;
                    continue;
                }
                if p.eat("</") {
                    let close_at = p.pos;
                    let tag = p.name("close tag")?;
                    p.skip_ws();
                    p.expect(b'>', "close tag")?;
                    // The `while !stack.is_empty()` condition guarantees a
                    // frame; fall back to an EOF-flavored error rather than
                    // panicking if that ever changes.
                    let Some(expected) = stack.pop() else {
                        return Err(p.err(ParseErrorKind::UnexpectedEof("element content")));
                    };
                    if tag != expected {
                        return Err(p.err_at(
                            close_at,
                            ParseErrorKind::MismatchedClose { expected, found: tag },
                        ));
                    }
                    handler(SaxEvent::EndElement { tag });
                    continue;
                }
                p.pos += 1; // consume '<'
                let (tag, attrs, self_closing) = p.open_tag()?;
                handler(SaxEvent::StartElement { tag: tag.clone(), attrs });
                if self_closing {
                    handler(SaxEvent::EndElement { tag });
                } else {
                    stack.push(tag);
                    if stack.len() > opts.max_depth {
                        return Err(p.err(ParseErrorKind::LimitExceeded(ParseLimit::Depth(
                            opts.max_depth,
                        ))));
                    }
                }
            }
            Some(b'&') => {
                p.pos += 1;
                p.reference(&mut text)?;
            }
            Some(_) => {
                let run_start = p.pos;
                while !matches!(p.peek(), None | Some(b'<') | Some(b'&')) {
                    p.pos += 1;
                }
                let run = p.str_slice(run_start, p.pos)?;
                text.push_str(run);
            }
        }
    }

    p.skip_prolog_misc()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err(ParseErrorKind::NotSingleRoot));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<SaxEvent> {
        let mut out = Vec::new();
        parse_sax(src, |e| out.push(e)).unwrap();
        out
    }

    fn start(tag: &str) -> SaxEvent {
        SaxEvent::StartElement { tag: tag.into(), attrs: Vec::new() }
    }

    fn end(tag: &str) -> SaxEvent {
        SaxEvent::EndElement { tag: tag.into() }
    }

    #[test]
    fn emits_balanced_events() {
        assert_eq!(
            events("<a><b/><c>x</c></a>"),
            vec![
                start("a"),
                start("b"),
                end("b"),
                start("c"),
                SaxEvent::Text("x".into()),
                end("c"),
                end("a"),
            ]
        );
    }

    #[test]
    fn attributes_and_entities() {
        let evs = events(r#"<a x="1">T&amp;C</a>"#);
        assert_eq!(
            evs[0],
            SaxEvent::StartElement { tag: "a".into(), attrs: vec![("x".into(), "1".into())] }
        );
        assert_eq!(evs[1], SaxEvent::Text("T&C".into()));
    }

    #[test]
    fn whitespace_text_is_delivered() {
        let evs = events("<a> <b/> </a>");
        assert_eq!(evs[1], SaxEvent::Text(" ".into()));
        assert_eq!(evs[4], SaxEvent::Text(" ".into()));
    }

    #[test]
    fn comments_split_text_runs() {
        let evs = events("<a>one<!-- c -->two</a>");
        assert_eq!(evs[1], SaxEvent::Text("one".into()));
        assert_eq!(evs[2], SaxEvent::Text("two".into()));
    }

    #[test]
    fn depth_limit_applies_to_the_stream_parser_too() {
        let opts = ParseOptions { max_depth: 4, ..ParseOptions::default() };
        assert!(parse_sax_with("<a><b><c><d>x</d></c></b></a>", &opts, |_| {}).is_ok());
        let err =
            parse_sax_with("<a><b><c><d><e>x</e></d></c></b></a>", &opts, |_| {}).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::LimitExceeded(ParseLimit::Depth(4)));
    }

    #[test]
    fn mismatched_close_still_reported() {
        let err = parse_sax("<a><b></a></b>", |_| {}).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedClose { .. }));
    }

    #[test]
    fn events_rebuild_the_same_tree() {
        // Cross-validate the two parsers: SAX events replayed into a tree
        // must equal the tree parser's output (modulo whitespace policy).
        let src = r#"<play t="h"><act><scene>line one</scene></act><act/></play>"#;
        let direct = crate::parse::parse(src).unwrap();
        let mut rebuilt: Option<crate::XmlTree> = None;
        let mut stack: Vec<crate::NodeId> = Vec::new();
        parse_sax(src, |e| match e {
            SaxEvent::StartElement { tag, attrs } => match &mut rebuilt {
                None => {
                    let t = crate::XmlTree::new_with_attrs(tag, attrs);
                    stack.push(t.root());
                    rebuilt = Some(t);
                }
                Some(t) => {
                    let node = t.create_element_with_attrs(tag, attrs);
                    t.append_child(*stack.last().unwrap(), node);
                    stack.push(node);
                }
            },
            SaxEvent::EndElement { .. } => {
                stack.pop();
            }
            SaxEvent::Text(s) => {
                if let Some(t) = &mut rebuilt {
                    if !s.trim().is_empty() {
                        t.append_text(*stack.last().unwrap(), s);
                    }
                }
            }
        })
        .unwrap();
        let rebuilt = rebuilt.unwrap();
        assert_eq!(
            crate::serialize::to_string(&direct),
            crate::serialize::to_string(&rebuilt)
        );
    }
}
