//! A from-scratch, non-validating XML parser.
//!
//! Supports the subset needed for real-world document corpora like the ones
//! the paper labels: elements, attributes (single- or double-quoted), text
//! with entity and character references, comments, CDATA sections,
//! processing instructions, the XML declaration, and a DOCTYPE declaration
//! (skipped, including an internal subset). Namespaces are carried through
//! as plain prefixed names; DTD content models are not interpreted.

use crate::tree::{NodeId, XmlTree};
use xp_testkit::faultpoint;

/// A parse failure, with the byte offset and 1-indexed line/column at which
/// it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-indexed line.
    pub line: usize,
    /// 1-indexed column (in bytes).
    pub column: usize,
}

/// The category of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a construct.
    UnexpectedEof(&'static str),
    /// A character that cannot start/continue the current construct.
    Unexpected(char, &'static str),
    /// `</b>` closed `<a>`.
    MismatchedClose {
        /// Tag that was open.
        expected: String,
        /// Tag that tried to close it.
        found: String,
    },
    /// Content after the document element, or no element at all.
    NotSingleRoot,
    /// `&name;` with an unknown entity name.
    UnknownEntity(String),
    /// `&#...;` that is not a valid character.
    BadCharRef,
    /// A [`ParseOptions`] resource limit was exceeded.
    LimitExceeded(ParseLimit),
    /// An armed [`xp_testkit::fault`] point fired in the parser.
    FaultInjected(&'static str),
}

/// Which [`ParseOptions`] resource limit a document blew through. The
/// payload is the configured maximum that was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseLimit {
    /// Element nesting deeper than [`ParseOptions::max_depth`].
    Depth(usize),
    /// Input longer than [`ParseOptions::max_input_bytes`].
    InputBytes(usize),
    /// One element with more attributes than [`ParseOptions::max_attrs`].
    Attrs(usize),
    /// More entity/character references than
    /// [`ParseOptions::max_entity_expansions`].
    EntityExpansions(u64),
}

impl std::fmt::Display for ParseLimit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseLimit::Depth(max) => write!(f, "element nesting exceeds max_depth={max}"),
            ParseLimit::InputBytes(max) => write!(f, "input exceeds max_input_bytes={max}"),
            ParseLimit::Attrs(max) => write!(f, "element exceeds max_attrs={max}"),
            ParseLimit::EntityExpansions(max) => {
                write!(f, "references exceed max_entity_expansions={max}")
            }
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: ", self.line, self.column)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof(ctx) => write!(f, "unexpected end of input in {ctx}"),
            ParseErrorKind::Unexpected(c, ctx) => write!(f, "unexpected {c:?} in {ctx}"),
            ParseErrorKind::MismatchedClose { expected, found } => {
                write!(f, "mismatched close tag: expected </{expected}>, found </{found}>")
            }
            ParseErrorKind::NotSingleRoot => write!(f, "document must have exactly one root element"),
            ParseErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            ParseErrorKind::BadCharRef => write!(f, "invalid character reference"),
            ParseErrorKind::LimitExceeded(limit) => write!(f, "limit exceeded: {limit}"),
            ParseErrorKind::FaultInjected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// An opened start tag: `(name, attributes, self_closing)`.
pub(crate) type OpenTag = (String, Vec<(String, String)>, bool);

/// Parsing options: whitespace policy plus hard resource limits.
///
/// The limits turn pathological inputs (bombs, deep nesting that would
/// overflow the recursive tree builder's stack, attribute floods, entity
/// floods) into typed [`ParseErrorKind::LimitExceeded`] errors instead of
/// unbounded memory/stack consumption. The defaults are generous for the
/// paper's corpora; tighten them when parsing untrusted input.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Drop text nodes that contain only whitespace (the default): the
    /// labeling experiments are about element structure, and the corpora are
    /// pretty-printed.
    pub skip_whitespace_text: bool,
    /// Maximum element nesting depth (default 1024). This also bounds the
    /// tree builder's recursion, so deeply nested documents error out
    /// instead of overflowing the stack.
    pub max_depth: usize,
    /// Maximum input size in bytes (default 1 GiB).
    pub max_input_bytes: usize,
    /// Maximum number of attributes on a single element (default 1024).
    pub max_attrs: usize,
    /// Maximum total number of entity and character references decoded over
    /// the whole document (default 2^20).
    pub max_entity_expansions: u64,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            skip_whitespace_text: true,
            max_depth: 1024,
            max_input_bytes: 1 << 30,
            max_attrs: 1024,
            max_entity_expansions: 1 << 20,
        }
    }
}

/// Parses a complete XML document with default options.
pub fn parse(input: &str) -> Result<XmlTree, ParseError> {
    parse_with(input, &ParseOptions::default())
}

/// Parses a complete XML document.
pub fn parse_with(input: &str, opts: &ParseOptions) -> Result<XmlTree, ParseError> {
    let p = Parser::new(input, opts);
    p.check_input_size()?;
    p.document()
}

pub(crate) struct Parser<'a> {
    pub(crate) input: &'a [u8],
    pub(crate) pos: usize,
    pub(crate) opts: &'a ParseOptions,
    /// Entity/character references decoded so far (bounded by
    /// `opts.max_entity_expansions`).
    pub(crate) expansions: u64,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a str, opts: &'a ParseOptions) -> Self {
        Parser { input: input.as_bytes(), pos: 0, opts, expansions: 0 }
    }

    /// Rejects inputs larger than `max_input_bytes` up front.
    pub(crate) fn check_input_size(&self) -> Result<(), ParseError> {
        if self.input.len() > self.opts.max_input_bytes {
            return Err(self
                .err(ParseErrorKind::LimitExceeded(ParseLimit::InputBytes(self.opts.max_input_bytes))));
        }
        Ok(())
    }

    pub(crate) fn err(&self, kind: ParseErrorKind) -> ParseError {
        self.err_at(self.pos, kind)
    }

    pub(crate) fn err_at(&self, offset: usize, kind: ParseErrorKind) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.input[..offset.min(self.input.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError { kind, offset, line, column: col }
    }

    pub(crate) fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    pub(crate) fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    pub(crate) fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    pub(crate) fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    pub(crate) fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    pub(crate) fn expect(&mut self, c: u8, ctx: &'static str) -> Result<(), ParseError> {
        match self.peek() {
            Some(b) if b == c => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(self.err(ParseErrorKind::Unexpected(b as char, ctx))),
            None => Err(self.err(ParseErrorKind::UnexpectedEof(ctx))),
        }
    }

    /// Consumes until the delimiter string, returning the consumed slice.
    pub(crate) fn until(&mut self, delim: &str, ctx: &'static str) -> Result<&'a str, ParseError> {
        let hay = &self.input[self.pos..];
        let needle = delim.as_bytes();
        let found = hay.windows(needle.len()).position(|w| w == needle);
        match found {
            Some(i) => {
                let s = std::str::from_utf8(&hay[..i]).map_err(|_| self.err(ParseErrorKind::BadCharRef))?;
                self.pos += i + needle.len();
                Ok(s)
            }
            None => Err(self.err(ParseErrorKind::UnexpectedEof(ctx))),
        }
    }

    pub(crate) fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    pub(crate) fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    pub(crate) fn name(&mut self, ctx: &'static str) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => self.pos += 1,
            Some(b) => return Err(self.err(ParseErrorKind::Unexpected(b as char, ctx))),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof(ctx))),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.pos += 1;
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// Decodes `&...;` starting just past the ampersand.
    pub(crate) fn reference(&mut self, out: &mut String) -> Result<(), ParseError> {
        let start = self.pos;
        self.expansions += 1;
        if self.expansions > self.opts.max_entity_expansions {
            return Err(self.err_at(
                start,
                ParseErrorKind::LimitExceeded(ParseLimit::EntityExpansions(
                    self.opts.max_entity_expansions,
                )),
            ));
        }
        if self.eat("#") {
            let hex = self.eat("x") || self.eat("X");
            let digits_start = self.pos;
            while matches!(self.peek(), Some(b) if b.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            let digits = self.str_slice(digits_start, self.pos)?;
            self.expect(b';', "character reference")?;
            let code = u32::from_str_radix(digits, if hex { 16 } else { 10 })
                .map_err(|_| self.err_at(start, ParseErrorKind::BadCharRef))?;
            let c = char::from_u32(code).ok_or_else(|| self.err_at(start, ParseErrorKind::BadCharRef))?;
            out.push(c);
            return Ok(());
        }
        let name = self.name("entity reference")?;
        self.expect(b';', "entity reference")?;
        match name.as_str() {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ => return Err(self.err_at(start, ParseErrorKind::UnknownEntity(name))),
        }
        Ok(())
    }

    pub(crate) fn attribute_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(b) => return Err(self.err(ParseErrorKind::Unexpected(b as char, "attribute value"))),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof("attribute value"))),
        };
        let mut out = String::new();
        loop {
            let run_start = self.pos;
            while !matches!(self.peek(), None | Some(b'&')) && self.peek() != Some(quote) {
                self.pos += 1;
            }
            out.push_str(self.str_slice(run_start, self.pos)?);
            match self.bump() {
                Some(b) if b == quote => return Ok(out),
                Some(b'&') => self.reference(&mut out)?,
                _ => return Err(self.err(ParseErrorKind::UnexpectedEof("attribute value"))),
            }
        }
    }

    /// UTF-8 validated slice of the input.
    pub(crate) fn str_slice(&self, start: usize, end: usize) -> Result<&'a str, ParseError> {
        std::str::from_utf8(&self.input[start..end])
            .map_err(|e| self.err_at(start + e.valid_up_to(), ParseErrorKind::BadCharRef))
    }

    /// Skips `<!DOCTYPE ...>` including a bracketed internal subset.
    pub(crate) fn skip_doctype(&mut self) -> Result<(), ParseError> {
        let mut depth = 0usize;
        loop {
            match self.bump() {
                Some(b'[') => depth += 1,
                Some(b']') => depth = depth.saturating_sub(1),
                Some(b'>') if depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err(ParseErrorKind::UnexpectedEof("DOCTYPE"))),
            }
        }
    }

    /// Skips misc content allowed outside the root: whitespace, comments,
    /// PIs, the XML declaration, and DOCTYPE.
    pub(crate) fn skip_prolog_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.eat("<?") {
                self.until("?>", "processing instruction")?;
            } else if self.eat("<!--") {
                self.until("-->", "comment")?;
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                self.pos += "<!DOCTYPE".len();
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    pub(crate) fn document(mut self) -> Result<XmlTree, ParseError> {
        self.skip_prolog_misc()?;
        if self.peek() != Some(b'<') {
            return Err(self.err(ParseErrorKind::NotSingleRoot));
        }
        self.pos += 1; // consume '<'
        let (tag, attrs, self_closing) = self.open_tag()?;
        let mut tree = XmlTree::new_with_attrs(tag.clone(), attrs);
        if !self_closing {
            let root = tree.root();
            self.content(&mut tree, root, &tag)?;
        }
        self.skip_prolog_misc()?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.err(ParseErrorKind::NotSingleRoot));
        }
        Ok(tree)
    }

    /// Parses the remainder of an open tag after `<` and the name position:
    /// returns `(name, attributes, self_closing)` with the closing `>` eaten.
    pub(crate) fn open_tag(&mut self) -> Result<OpenTag, ParseError> {
        faultpoint!("parse.read").map_err(|i| self.err(ParseErrorKind::FaultInjected(i.site)))?;
        let tag = self.name("open tag")?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((tag, attrs, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>', "self-closing tag")?;
                    return Ok((tag, attrs, true));
                }
                Some(b) if Parser::is_name_start(b) => {
                    let key = self.name("attribute name")?;
                    self.skip_ws();
                    self.expect(b'=', "attribute")?;
                    self.skip_ws();
                    let value = self.attribute_value()?;
                    attrs.push((key, value));
                    if attrs.len() > self.opts.max_attrs {
                        return Err(self.err(ParseErrorKind::LimitExceeded(ParseLimit::Attrs(
                            self.opts.max_attrs,
                        ))));
                    }
                }
                Some(b) => return Err(self.err(ParseErrorKind::Unexpected(b as char, "open tag"))),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof("open tag"))),
            }
        }
    }

    /// Parses element content up to and including `</parent_tag>`.
    ///
    /// Iterative with an explicit stack: nesting depth is bounded by
    /// `max_depth` and costs heap, not call stack, so even documents at the
    /// depth limit cannot overflow the thread stack.
    pub(crate) fn content(&mut self, tree: &mut XmlTree, parent: NodeId, parent_tag: &str) -> Result<(), ParseError> {
        let mut stack: Vec<(NodeId, String)> = vec![(parent, parent_tag.to_string())];
        let mut text = String::new();
        // Text never spans an element boundary: it is flushed to the node on
        // top of the stack before every open/close tag.
        while !stack.is_empty() {
            let top = stack.len() - 1;
            let parent = stack[top].0;
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnexpectedEof("element content"))),
                Some(b'<') => {
                    if self.eat("<!--") {
                        self.until("-->", "comment")?;
                        continue;
                    }
                    if self.eat("<![CDATA[") {
                        text.push_str(self.until("]]>", "CDATA section")?);
                        continue;
                    }
                    if self.eat("<?") {
                        self.until("?>", "processing instruction")?;
                        continue;
                    }
                    self.flush_text(tree, parent, &mut text);
                    if self.eat("</") {
                        let close_at = self.pos;
                        let tag = self.name("close tag")?;
                        self.skip_ws();
                        self.expect(b'>', "close tag")?;
                        if tag != stack[top].1 {
                            return Err(self.err_at(
                                close_at,
                                ParseErrorKind::MismatchedClose {
                                    expected: stack[top].1.clone(),
                                    found: tag,
                                },
                            ));
                        }
                        stack.pop();
                        continue;
                    }
                    self.pos += 1; // consume '<'
                    let (tag, attrs, self_closing) = self.open_tag()?;
                    let child = tree.create_element_with_attrs(tag.clone(), attrs);
                    tree.append_child(parent, child);
                    if !self_closing {
                        stack.push((child, tag));
                        if stack.len() > self.opts.max_depth {
                            return Err(self.err(ParseErrorKind::LimitExceeded(
                                ParseLimit::Depth(self.opts.max_depth),
                            )));
                        }
                    }
                }
                Some(b'&') => {
                    self.pos += 1;
                    self.reference(&mut text)?;
                }
                Some(_) => {
                    let run_start = self.pos;
                    while !matches!(self.peek(), None | Some(b'<') | Some(b'&')) {
                        self.pos += 1;
                    }
                    text.push_str(self.str_slice(run_start, self.pos)?);
                }
            }
        }
        Ok(())
    }

    pub(crate) fn flush_text(&self, tree: &mut XmlTree, parent: NodeId, text: &mut String) {
        if text.is_empty() {
            return;
        }
        let keep = !self.opts.skip_whitespace_text || !text.chars().all(char::is_whitespace);
        if keep {
            tree.append_text(parent, std::mem::take(text));
        } else {
            text.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;

    #[test]
    pub(crate) fn minimal_document() {
        let t = parse("<a/>").unwrap();
        assert_eq!(t.tag(t.root()), Some("a"));
        assert!(t.is_empty());
    }

    #[test]
    pub(crate) fn nested_elements_preserve_order() {
        let t = parse("<play><act/><act/><act/></play>").unwrap();
        let tags: Vec<&str> = t.children(t.root()).filter_map(|c| t.tag(c)).collect();
        assert_eq!(tags, ["act", "act", "act"]);
    }

    #[test]
    pub(crate) fn attributes_single_and_double_quoted() {
        let t = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(t.attr(t.root(), "x"), Some("1"));
        assert_eq!(t.attr(t.root(), "y"), Some("two"));
    }

    #[test]
    pub(crate) fn text_with_entities() {
        let t = parse("<a>Tom &amp; Jerry &lt;3 &#65;&#x42;</a>").unwrap();
        let txt = t.first_child(t.root()).unwrap();
        assert_eq!(t.text(txt), Some("Tom & Jerry <3 AB"));
    }

    #[test]
    pub(crate) fn entities_in_attribute_values() {
        let t = parse(r#"<a title="a &quot;b&quot; &amp; c"/>"#).unwrap();
        assert_eq!(t.attr(t.root(), "title"), Some("a \"b\" & c"));
    }

    #[test]
    pub(crate) fn cdata_is_literal() {
        let t = parse("<a><![CDATA[<not> &parsed;]]></a>").unwrap();
        let txt = t.first_child(t.root()).unwrap();
        assert_eq!(t.text(txt), Some("<not> &parsed;"));
    }

    #[test]
    pub(crate) fn comments_and_pis_are_skipped() {
        let t = parse("<?xml version=\"1.0\"?><!-- header --><a><!-- inner --><b/><?pi data?></a><!-- trailer -->")
            .unwrap();
        assert_eq!(t.elements().count(), 2);
    }

    #[test]
    pub(crate) fn doctype_with_internal_subset_is_skipped() {
        let doc = r#"<!DOCTYPE play [ <!ELEMENT play (act+)> <!ENTITY x "y"> ]><play><act/></play>"#;
        let t = parse(doc).unwrap();
        assert_eq!(t.tag(t.root()), Some("play"));
    }

    #[test]
    pub(crate) fn whitespace_text_skipped_by_default_but_kept_on_request() {
        let doc = "<a>\n  <b/>\n</a>";
        let t = parse(doc).unwrap();
        assert_eq!(t.children(t.root()).count(), 1);
        let opts = ParseOptions { skip_whitespace_text: false, ..ParseOptions::default() };
        let t2 = parse_with(doc, &opts).unwrap();
        assert_eq!(t2.children(t2.root()).count(), 3);
        assert!(matches!(t2.kind(t2.first_child(t2.root()).unwrap()), NodeKind::Text(_)));
    }

    #[test]
    pub(crate) fn mismatched_close_is_reported_with_position() {
        let err = parse("<a><b></a></b>").unwrap_err();
        match err.kind {
            ParseErrorKind::MismatchedClose { expected, found } => {
                assert_eq!(expected, "b");
                assert_eq!(found, "a");
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(err.line, 1);
        assert!(err.column > 1);
    }

    #[test]
    pub(crate) fn eof_inside_element_is_an_error() {
        let err = parse("<a><b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedEof(_)));
    }

    #[test]
    pub(crate) fn trailing_garbage_is_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::NotSingleRoot));
        assert!(parse("<a/> \n ").is_ok(), "trailing whitespace is fine");
    }

    #[test]
    pub(crate) fn unknown_entity_is_rejected() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnknownEntity(name) if name == "nope"));
    }

    #[test]
    pub(crate) fn bad_char_ref_is_rejected() {
        assert!(matches!(parse("<a>&#xD800;</a>").unwrap_err().kind, ParseErrorKind::BadCharRef));
        assert!(matches!(parse("<a>&#;</a>").unwrap_err().kind, ParseErrorKind::BadCharRef));
    }

    #[test]
    pub(crate) fn error_positions_count_lines() {
        let err = parse("<a>\n\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    pub(crate) fn deeply_nested_document() {
        let depth = 200;
        let mut doc = String::new();
        for i in 0..depth {
            doc.push_str(&format!("<n{i}>"));
        }
        for i in (0..depth).rev() {
            doc.push_str(&format!("</n{i}>"));
        }
        let t = parse(&doc).unwrap();
        assert_eq!(t.elements().count(), depth);
    }

    fn nested(depth: usize) -> String {
        let mut doc = String::new();
        for _ in 0..depth {
            doc.push_str("<n>");
        }
        for _ in 0..depth {
            doc.push_str("</n>");
        }
        doc
    }

    #[test]
    pub(crate) fn depth_limit_is_a_typed_error_not_a_stack_overflow() {
        // A million levels would overflow the recursive builder's stack
        // without the guard; with it, parsing fails fast and typed.
        let doc = nested(1_000_000);
        let err = parse(&doc).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::LimitExceeded(ParseLimit::Depth(1024)));
        // A custom, tighter limit kicks in where configured.
        let opts = ParseOptions { max_depth: 8, ..ParseOptions::default() };
        assert!(parse_with(&nested(8), &opts).is_ok());
        let err = parse_with(&nested(9), &opts).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::LimitExceeded(ParseLimit::Depth(8)));
    }

    #[test]
    pub(crate) fn input_size_limit_rejects_oversized_documents() {
        let opts = ParseOptions { max_input_bytes: 16, ..ParseOptions::default() };
        assert!(parse_with("<a><b/></a>", &opts).is_ok());
        let err = parse_with("<a><b/><c/><d/></a>", &opts).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::LimitExceeded(ParseLimit::InputBytes(16)));
    }

    #[test]
    pub(crate) fn attribute_count_limit_rejects_floods() {
        let opts = ParseOptions { max_attrs: 3, ..ParseOptions::default() };
        assert!(parse_with(r#"<a x="1" y="2" z="3"/>"#, &opts).is_ok());
        let err = parse_with(r#"<a x="1" y="2" z="3" w="4"/>"#, &opts).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::LimitExceeded(ParseLimit::Attrs(3)));
    }

    #[test]
    pub(crate) fn entity_expansion_budget_rejects_floods() {
        let opts = ParseOptions { max_entity_expansions: 4, ..ParseOptions::default() };
        assert!(parse_with("<a>&amp;&lt;&gt;&#65;</a>", &opts).is_ok());
        let err = parse_with("<a>&amp;&lt;&gt;&#65;&amp;</a>", &opts).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::LimitExceeded(ParseLimit::EntityExpansions(4)));
    }

    #[test]
    pub(crate) fn parse_read_fault_surfaces_as_a_parse_error() {
        xp_testkit::fault::arm("parse.read:2");
        let err = parse("<a><b/></a>").unwrap_err();
        xp_testkit::fault::reset();
        assert_eq!(err.kind, ParseErrorKind::FaultInjected("parse.read"));
        assert!(parse("<a><b/></a>").is_ok(), "disarmed parser is unaffected");
    }

    #[test]
    pub(crate) fn root_attributes_survive() {
        let t = parse(r#"<play title="Hamlet"><act/></play>"#).unwrap();
        assert_eq!(t.attr(t.root(), "title"), Some("Hamlet"));
    }
}
