//! The arena-based ordered tree: [`XmlTree`], [`NodeId`], [`NodeKind`].

use std::fmt;

/// Handle to a node inside an [`XmlTree`] arena.
///
/// Small, `Copy`, and only meaningful for the tree that produced it. Detached
/// or removed nodes keep their ids (slots are not reused) but are no longer
/// reachable from the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The arena slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element like `<speech>`, with a tag name and attributes.
    Element {
        /// Tag name.
        tag: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// Character data between tags.
    Text(
        /// The (entity-decoded) text content.
        String,
    ),
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) prev_sibling: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
}

/// An ordered XML tree backed by an arena of nodes.
///
/// Exactly one root element exists at all times. All structural mutations are
/// O(1); traversals are allocation-free iterators.
#[derive(Debug, Clone)]
pub struct XmlTree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl XmlTree {
    /// Creates a tree containing a single root element.
    pub fn new(root_tag: impl Into<String>) -> Self {
        let root_node = Node {
            kind: NodeKind::Element { tag: root_tag.into(), attrs: Vec::new() },
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
        };
        XmlTree { nodes: vec![root_node], root: NodeId(0) }
    }

    /// Creates a tree whose root element carries attributes.
    pub fn new_with_attrs(root_tag: impl Into<String>, attrs: Vec<(String, String)>) -> Self {
        let mut tree = Self::new(root_tag);
        if let NodeKind::Element { attrs: slot, .. } = &mut tree.nodes[0].kind {
            *slot = attrs;
        }
        tree
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of arena slots ever allocated (including detached nodes).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// The [`NodeId`] occupying arena slot `index`, if the slot exists.
    ///
    /// Slots are never reused, so an index recorded externally (e.g. in a
    /// persisted mutation log) resolves to the same node for the lifetime of
    /// the tree. The node may be detached.
    pub fn node_at(&self, index: usize) -> Option<NodeId> {
        if index < self.nodes.len() {
            // Arena indices always fit: alloc() refuses to grow past u32.
            u32::try_from(index).ok().map(NodeId)
        } else {
            None
        }
    }

    pub(crate) fn raw_node(&self, id: NodeId) -> &Node {
        self.node(id)
    }

    pub(crate) fn node_id_unchecked(index: u32) -> NodeId {
        NodeId(index)
    }

    pub(crate) fn from_raw_parts(nodes: Vec<Node>, root: NodeId) -> Self {
        XmlTree { nodes, root }
    }

    /// Number of nodes reachable from the root.
    pub fn len(&self) -> usize {
        self.descendants(self.root).count()
    }

    /// `true` iff only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes[self.root.index()].first_child.is_none()
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// The node's kind.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.node(id).kind
    }

    /// Element tag name, or `None` for text nodes.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { tag, .. } => Some(tag),
            NodeKind::Text(_) => None,
        }
    }

    /// Text content, or `None` for elements.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Text(t) => Some(t),
            NodeKind::Element { .. } => None,
        }
    }

    /// Attributes of an element (empty slice for text nodes).
    pub fn attrs(&self, id: NodeId) -> &[(String, String)] {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs,
            NodeKind::Text(_) => &[],
        }
    }

    /// Value of attribute `name`, if present.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attrs(id).iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// `true` iff the node is an element.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Element { .. })
    }

    /// `true` iff the node has no element children.
    ///
    /// The paper's leaf/non-leaf split (Opt2 labels *leaves* with powers of
    /// two) is about element structure, so text children do not count.
    pub fn is_leaf_element(&self, id: NodeId) -> bool {
        self.is_element(id) && !self.children(id).any(|c| self.is_element(c))
    }

    /// Parent node, `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// First child, if any.
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).first_child
    }

    /// Last child, if any.
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).last_child
    }

    /// Next sibling, if any.
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).next_sibling
    }

    /// Previous sibling, if any.
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).prev_sibling
    }

    /// Depth of a node: the root is at depth 0.
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// 1-indexed position among *element* siblings (text nodes skipped);
    /// `None` for text nodes. This is the `[n]` of XPath position predicates.
    pub fn element_sibling_position(&self, id: NodeId) -> Option<usize> {
        if !self.is_element(id) {
            return None;
        }
        let parent = self.parent(id)?;
        let mut pos = 0;
        for c in self.children(parent) {
            if self.is_element(c) {
                pos += 1;
            }
            if c == id {
                return Some(pos);
            }
        }
        unreachable!("node not found among its parent's children");
    }

    // ------------------------------------------------------------------
    // Construction & mutation
    // ------------------------------------------------------------------

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        // Invariant: a u32 arena holds 4G nodes; exhausting it is a
        // capacity bug, not recoverable state.
        #[allow(clippy::expect_used)]
        let id = NodeId(u32::try_from(self.nodes.len()).expect("arena overflow"));
        self.nodes.push(Node {
            kind,
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
        });
        id
    }

    /// Creates a detached element node.
    pub fn create_element(&mut self, tag: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Element { tag: tag.into(), attrs: Vec::new() })
    }

    /// Creates a detached element node with attributes.
    pub fn create_element_with_attrs(
        &mut self,
        tag: impl Into<String>,
        attrs: Vec<(String, String)>,
    ) -> NodeId {
        self.alloc(NodeKind::Element { tag: tag.into(), attrs })
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Text(text.into()))
    }

    /// Appends a detached node as the last child of `parent`.
    ///
    /// # Panics
    /// Panics if `child` is already attached somewhere.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        self.assert_detached(child);
        let old_last = self.node(parent).last_child;
        self.node_mut(child).parent = Some(parent);
        self.node_mut(child).prev_sibling = old_last;
        match old_last {
            Some(last) => self.node_mut(last).next_sibling = Some(child),
            None => self.node_mut(parent).first_child = Some(child),
        }
        self.node_mut(parent).last_child = Some(child);
    }

    /// Convenience: creates an element and appends it in one step.
    pub fn append_element(&mut self, parent: NodeId, tag: impl Into<String>) -> NodeId {
        let id = self.create_element(tag);
        self.append_child(parent, id);
        id
    }

    /// Convenience: creates a text node and appends it in one step.
    pub fn append_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let id = self.create_text(text);
        self.append_child(parent, id);
        id
    }

    /// Inserts a detached node immediately before `anchor` among its siblings.
    ///
    /// # Panics
    /// Panics if `anchor` is the root or `node` is attached.
    pub fn insert_before(&mut self, anchor: NodeId, node: NodeId) {
        self.assert_detached(node);
        // Documented panic contract (see `# Panics` above).
        #[allow(clippy::expect_used)]
        let parent = self.parent(anchor).expect("cannot insert a sibling of the root");
        let prev = self.node(anchor).prev_sibling;
        self.node_mut(node).parent = Some(parent);
        self.node_mut(node).prev_sibling = prev;
        self.node_mut(node).next_sibling = Some(anchor);
        self.node_mut(anchor).prev_sibling = Some(node);
        match prev {
            Some(p) => self.node_mut(p).next_sibling = Some(node),
            None => self.node_mut(parent).first_child = Some(node),
        }
    }

    /// Inserts a detached node immediately after `anchor` among its siblings.
    ///
    /// # Panics
    /// Panics if `anchor` is the root or `node` is attached.
    pub fn insert_after(&mut self, anchor: NodeId, node: NodeId) {
        self.assert_detached(node);
        // Documented panic contract (see `# Panics` above).
        #[allow(clippy::expect_used)]
        let parent = self.parent(anchor).expect("cannot insert a sibling of the root");
        let next = self.node(anchor).next_sibling;
        self.node_mut(node).parent = Some(parent);
        self.node_mut(node).prev_sibling = Some(anchor);
        self.node_mut(node).next_sibling = next;
        self.node_mut(anchor).next_sibling = Some(node);
        match next {
            Some(n) => self.node_mut(n).prev_sibling = Some(node),
            None => self.node_mut(parent).last_child = Some(node),
        }
    }

    /// Wraps `target` in a new element: the new node takes `target`'s place
    /// among its siblings and `target` becomes its only child.
    ///
    /// This is the mutation of the paper's Figure 17 experiment ("insert a
    /// node as a parent of the first level 4 node").
    ///
    /// # Panics
    /// Panics if `target` is the root.
    pub fn wrap_with_parent(&mut self, target: NodeId, tag: impl Into<String>) -> NodeId {
        assert!(self.parent(target).is_some(), "cannot wrap the root");
        let wrapper = self.create_element(tag);
        // Splice the wrapper into target's place.
        let parent = self.node(target).parent;
        let prev = self.node(target).prev_sibling;
        let next = self.node(target).next_sibling;
        {
            let w = self.node_mut(wrapper);
            w.parent = parent;
            w.prev_sibling = prev;
            w.next_sibling = next;
            w.first_child = Some(target);
            w.last_child = Some(target);
        }
        #[allow(clippy::expect_used)] // asserted non-root at entry
        let parent = parent.expect("checked above");
        match prev {
            Some(p) => self.node_mut(p).next_sibling = Some(wrapper),
            None => self.node_mut(parent).first_child = Some(wrapper),
        }
        match next {
            Some(n) => self.node_mut(n).prev_sibling = Some(wrapper),
            None => self.node_mut(parent).last_child = Some(wrapper),
        }
        {
            let t = self.node_mut(target);
            t.parent = Some(wrapper);
            t.prev_sibling = None;
            t.next_sibling = None;
        }
        wrapper
    }

    /// Detaches a node (and its whole subtree) from the tree. The subtree
    /// stays intact and can be re-attached.
    ///
    /// # Panics
    /// Panics if `id` is the root.
    pub fn detach(&mut self, id: NodeId) {
        assert!(id != self.root, "cannot detach the root");
        let (parent, prev, next) = {
            let n = self.node(id);
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        let Some(parent) = parent else { return }; // already detached
        match prev {
            Some(p) => self.node_mut(p).next_sibling = next,
            None => self.node_mut(parent).first_child = next,
        }
        match next {
            Some(n) => self.node_mut(n).prev_sibling = prev,
            None => self.node_mut(parent).last_child = prev,
        }
        let n = self.node_mut(id);
        n.parent = None;
        n.prev_sibling = None;
        n.next_sibling = None;
    }

    fn assert_detached(&self, id: NodeId) {
        let n = self.node(id);
        assert!(
            n.parent.is_none() && n.prev_sibling.is_none() && n.next_sibling.is_none() && id != self.root,
            "node {id} is already attached"
        );
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// Iterates over the children of `id` in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children { tree: self, next: self.node(id).first_child }
    }

    /// Iterates over element children only.
    pub fn element_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(|&c| self.is_element(c))
    }

    /// Iterates over ancestors from the parent up to the root.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors { tree: self, next: self.node(id).parent }
    }

    /// Preorder (document-order) traversal of the subtree rooted at `id`,
    /// including `id` itself.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants { tree: self, root: id, next: Some(id) }
    }

    /// Preorder traversal restricted to element nodes.
    pub fn element_descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants(id).filter(|&n| self.is_element(n))
    }

    /// All element nodes of the document in document order.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.element_descendants(self.root)
    }

    /// `true` iff `anc` is a proper ancestor of `desc` (ground truth used to
    /// validate every labeling scheme's ancestor test).
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.ancestors(desc).any(|a| a == anc)
    }

    /// Elements at exactly `level` (root = level 0), in document order.
    pub fn elements_at_depth(&self, level: usize) -> Vec<NodeId> {
        self.elements().filter(|&n| self.depth(n) == level).collect()
    }
}

/// Iterator over a node's children. See [`XmlTree::children`].
pub struct Children<'a> {
    tree: &'a XmlTree,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.tree.node(cur).next_sibling;
        Some(cur)
    }
}

/// Iterator over a node's ancestors. See [`XmlTree::ancestors`].
pub struct Ancestors<'a> {
    tree: &'a XmlTree,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.tree.node(cur).parent;
        Some(cur)
    }
}

/// Preorder iterator over a subtree. See [`XmlTree::descendants`].
pub struct Descendants<'a> {
    tree: &'a XmlTree,
    root: NodeId,
    next: Option<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        // Preorder successor: first child, else next sibling of the nearest
        // ancestor (within the subtree) that has one.
        let node = self.tree.node(cur);
        self.next = if let Some(c) = node.first_child {
            Some(c)
        } else {
            let mut at = cur;
            loop {
                if at == self.root {
                    break None;
                }
                if let Some(sib) = self.tree.node(at).next_sibling {
                    break Some(sib);
                }
                match self.tree.node(at).parent {
                    Some(p) => at = p,
                    None => break None,
                }
            }
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// book ── author(Mary) ── author(Tom) ── author(John): the Figure 8 tree.
    fn figure8() -> (XmlTree, Vec<NodeId>) {
        let mut t = XmlTree::new("book");
        let root = t.root();
        let authors: Vec<NodeId> = (0..3).map(|_| t.append_element(root, "author")).collect();
        for (a, name) in authors.iter().zip(["Mary", "Tom", "John"]) {
            t.append_text(*a, name);
        }
        (t, authors)
    }

    #[test]
    fn construction_links_are_consistent() {
        let (t, authors) = figure8();
        let root = t.root();
        assert_eq!(t.first_child(root), Some(authors[0]));
        assert_eq!(t.last_child(root), Some(authors[2]));
        assert_eq!(t.next_sibling(authors[0]), Some(authors[1]));
        assert_eq!(t.prev_sibling(authors[2]), Some(authors[1]));
        assert_eq!(t.parent(authors[1]), Some(root));
        assert_eq!(t.parent(root), None);
    }

    #[test]
    fn preorder_is_document_order() {
        let (t, authors) = figure8();
        let order: Vec<NodeId> = t.descendants(t.root()).collect();
        assert_eq!(order.len(), 7); // book + 3 authors + 3 texts
        assert_eq!(order[0], t.root());
        assert_eq!(order[1], authors[0]);
        assert_eq!(order[3], authors[1]);
        assert_eq!(order[5], authors[2]);
    }

    #[test]
    fn elements_skip_text() {
        let (t, _) = figure8();
        assert_eq!(t.elements().count(), 4);
        assert!(t.elements().all(|n| t.is_element(n)));
    }

    #[test]
    fn depth_and_ancestors() {
        let mut t = XmlTree::new("a");
        let b = t.append_element(t.root(), "b");
        let c = t.append_element(b, "c");
        let d = t.append_element(c, "d");
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.depth(d), 3);
        let ancs: Vec<NodeId> = t.ancestors(d).collect();
        assert_eq!(ancs, vec![c, b, t.root()]);
        assert!(t.is_ancestor(t.root(), d));
        assert!(t.is_ancestor(b, d));
        assert!(!t.is_ancestor(d, b));
        assert!(!t.is_ancestor(d, d), "a node is not its own ancestor");
    }

    #[test]
    fn insert_before_and_after_keep_order() {
        let (mut t, authors) = figure8();
        // §4's running example: insert a new author as the SECOND author.
        let new = t.create_element("author");
        t.insert_before(authors[1], new);
        let kids: Vec<NodeId> = t.children(t.root()).collect();
        assert_eq!(kids, vec![authors[0], new, authors[1], authors[2]]);

        let last = t.create_element("author");
        t.insert_after(authors[2], last);
        let kids: Vec<NodeId> = t.children(t.root()).collect();
        assert_eq!(kids.last(), Some(&last));
    }

    #[test]
    fn insert_before_first_child_updates_parent_link() {
        let (mut t, authors) = figure8();
        let new = t.create_element("preface");
        t.insert_before(authors[0], new);
        assert_eq!(t.first_child(t.root()), Some(new));
        assert_eq!(t.prev_sibling(new), None);
    }

    #[test]
    fn wrap_with_parent_splices_correctly() {
        let (mut t, authors) = figure8();
        let wrapper = t.wrap_with_parent(authors[1], "editors");
        let kids: Vec<NodeId> = t.children(t.root()).collect();
        assert_eq!(kids, vec![authors[0], wrapper, authors[2]]);
        assert_eq!(t.parent(authors[1]), Some(wrapper));
        assert_eq!(t.children(wrapper).collect::<Vec<_>>(), vec![authors[1]]);
        assert_eq!(t.depth(authors[1]), 2);
        assert!(t.is_ancestor(wrapper, authors[1]));
    }

    #[test]
    fn wrap_first_and_last_children() {
        let (mut t, authors) = figure8();
        let w0 = t.wrap_with_parent(authors[0], "w0");
        assert_eq!(t.first_child(t.root()), Some(w0));
        let w2 = t.wrap_with_parent(authors[2], "w2");
        assert_eq!(t.last_child(t.root()), Some(w2));
    }

    #[test]
    fn detach_and_reattach() {
        let (mut t, authors) = figure8();
        t.detach(authors[1]);
        assert_eq!(t.children(t.root()).count(), 2);
        assert_eq!(t.parent(authors[1]), None);
        // Subtree stays intact.
        assert_eq!(t.children(authors[1]).count(), 1);
        t.append_child(t.root(), authors[1]);
        let kids: Vec<NodeId> = t.children(t.root()).collect();
        assert_eq!(kids, vec![authors[0], authors[2], authors[1]]);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_panics() {
        let (mut t, authors) = figure8();
        t.append_child(t.root(), authors[0]);
    }

    #[test]
    #[should_panic(expected = "cannot detach the root")]
    fn detach_root_panics() {
        let (mut t, _) = figure8();
        let root = t.root();
        t.detach(root);
    }

    #[test]
    fn element_sibling_position_skips_text() {
        let mut t = XmlTree::new("p");
        let root = t.root();
        t.append_text(root, "hello ");
        let a = t.append_element(root, "a");
        t.append_text(root, " world ");
        let b = t.append_element(root, "b");
        assert_eq!(t.element_sibling_position(a), Some(1));
        assert_eq!(t.element_sibling_position(b), Some(2));
        let txt = t.first_child(root).unwrap();
        assert_eq!(t.element_sibling_position(txt), None);
    }

    #[test]
    fn leaf_element_ignores_text_children() {
        let (t, authors) = figure8();
        assert!(t.is_leaf_element(authors[0]), "author with only text is a leaf element");
        assert!(!t.is_leaf_element(t.root()));
    }

    #[test]
    fn attributes_are_queryable() {
        let mut t = XmlTree::new("root");
        let e = t.create_element_with_attrs(
            "speech",
            vec![("speaker".into(), "HAMLET".into()), ("act".into(), "3".into())],
        );
        t.append_child(t.root(), e);
        assert_eq!(t.attr(e, "speaker"), Some("HAMLET"));
        assert_eq!(t.attr(e, "act"), Some("3"));
        assert_eq!(t.attr(e, "scene"), None);
        assert_eq!(t.attrs(e).len(), 2);
    }

    #[test]
    fn elements_at_depth_levels() {
        let mut t = XmlTree::new("a");
        let b1 = t.append_element(t.root(), "b");
        let b2 = t.append_element(t.root(), "b");
        let c = t.append_element(b1, "c");
        assert_eq!(t.elements_at_depth(0), vec![t.root()]);
        assert_eq!(t.elements_at_depth(1), vec![b1, b2]);
        assert_eq!(t.elements_at_depth(2), vec![c]);
        assert!(t.elements_at_depth(3).is_empty());
    }
}
