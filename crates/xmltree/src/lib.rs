//! # xp-xmltree — an ordered XML tree store, built from scratch
//!
//! The labeling schemes of the paper operate on *ordered* XML trees: the
//! relative order of siblings is semantically meaningful (§4, "The elements
//! in XML are intrinsically ordered"), and the update experiments (§5.3–5.4)
//! insert nodes as siblings, as children, and as *parents* of existing nodes.
//!
//! This crate provides:
//!
//! * [`XmlTree`] — an arena-based ordered tree with O(1) structural
//!   mutation (append, insert-before/after, wrap-with-parent, detach) and
//!   cheap preorder traversal.
//! * [`parse::parse`] — a from-scratch, non-validating XML parser
//!   (elements, attributes, text, comments, CDATA, processing instructions,
//!   character/entity references) with positioned errors.
//! * [`serialize`] — escaping serializer, compact or indented.
//! * [`stats::TreeStats`] — the structural statistics the paper's size model
//!   is written in: node count N, maximum depth D, maximum fan-out F.
//!
//! ```
//! use xp_xmltree::parse::parse;
//!
//! let tree = parse("<book><author>John</author><author>Jane</author></book>").unwrap();
//! let root = tree.root();
//! assert_eq!(tree.tag(root), Some("book"));
//! assert_eq!(tree.children(root).count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Failures reachable from untrusted input surface as positioned
// `ParseError`s; the panicking mutators that remain are documented
// API contracts, individually allow-listed.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod parse;
pub mod sax;
pub mod serialize;
pub mod snapshot;
pub mod stats;
mod tree;

pub use parse::{parse, parse_with, ParseError, ParseErrorKind, ParseLimit, ParseOptions};
pub use snapshot::{SlotSnapshot, SnapshotError, TreeSnapshot};
pub use stats::TreeStats;
pub use tree::{NodeId, NodeKind, XmlTree};
