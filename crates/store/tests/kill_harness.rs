//! The kill-anywhere recovery harness: a *real* process death at every
//! I/O fault site.
//!
//! The parent test re-executes this test binary as a child with
//! `XP_FAULT=<site>:<hit>:abort` in its environment. The child runs a
//! deterministic store scenario; the armed site calls
//! `std::process::abort()` mid-write — no unwinding, no destructors, the
//! closest in-tree approximation of `kill -9`. The parent then opens the
//! directory the dead child left behind and asserts it recovers to one of
//! the scenario's legitimate mutation-prefix states.

use std::path::PathBuf;
use std::process::Command;

use xp_labelkit::{InsertPos, LabeledStore, Mutation};
use xp_prime::DynamicPrime;
use xp_store::{fsck, verify, Store, StoreError};
use xp_xmltree::{NodeId, XmlTree};

const DOC_XML: &str = "<t0><t1><t2/><t3/></t1><t2/><t1><t3/></t1></t0>";
const SCRIPT_LEN: usize = 4;

fn nth(tree: &XmlTree, n: usize) -> NodeId {
    tree.elements().nth(n).unwrap_or_else(|| tree.root())
}

fn scripted_mutation(step: usize, tree: &XmlTree) -> Mutation {
    match step {
        0 => Mutation::InsertBefore { anchor: nth(tree, 2), tag: "t1".into() },
        1 => Mutation::InsertSubtree {
            pos: InsertPos::LastChildOf(tree.root()),
            xml: "<t2><t3/></t2>".into(),
        },
        2 => Mutation::Delete { target: nth(tree, 1) },
        _ => Mutation::InsertParent { target: nth(tree, 1), tag: "t3".into() },
    }
}

fn oracle_after(k: usize) -> LabeledStore<DynamicPrime> {
    let tree = xp_xmltree::parse(DOC_XML).unwrap();
    let mut oracle = LabeledStore::build(DynamicPrime::new(4), tree).unwrap();
    for step in 0..k {
        let m = scripted_mutation(step, oracle.tree());
        oracle.apply(&m).unwrap();
    }
    oracle
}

/// The child's scenario: create, add a document, apply the script, then
/// checkpoint everything. With an `abort`-mode fault armed via the
/// environment, the process dies mid-write at the armed hit.
///
/// This "test" is inert under a normal `cargo test` run — it only acts
/// when the parent harness sets `XP_KILL_CHILD`.
#[test]
fn kill_child_scenario() {
    let Ok(dir) = std::env::var("XP_KILL_CHILD") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let mut store = Store::create(&dir).unwrap();
    store.add_document("doc.xml", DOC_XML, 4).unwrap();
    for step in 0..SCRIPT_LEN {
        let m = scripted_mutation(step, store.doc("doc.xml").unwrap().tree());
        store.apply("doc.xml", &m).unwrap();
    }
    store.checkpoint_all().unwrap();
}

/// Runs the child scenario in a subprocess with `spec` armed, returning
/// whether the child died (vs. ran to completion because the hit index was
/// past what the scenario reaches).
fn run_child(dir: &PathBuf, spec: &str) -> bool {
    let exe = std::env::current_exe().unwrap();
    let out = Command::new(exe)
        .args(["--exact", "kill_child_scenario", "--nocapture", "--test-threads=1"])
        .env("XP_KILL_CHILD", dir)
        .env("XP_FAULT", spec)
        .output()
        .unwrap();
    !out.status.success()
}

/// After a child death, the directory must open to a store whose document
/// (if it became durable at all) matches one of the scripted prefixes.
fn assert_killed_store_recovers(dir: &PathBuf, spec: &str, accept: &[usize]) -> usize {
    let reopened = match Store::open(dir) {
        Ok(s) => s,
        Err(StoreError::NotAStore(_)) => {
            // Killed before the very first manifest swap: the store never
            // came into being. That is a legitimate prefix (nothing).
            assert!(
                accept.contains(&usize::MAX),
                "{spec}: store missing but scenario should have created one"
            );
            return usize::MAX;
        }
        Err(e) => panic!("{spec}: reopen failed: {e}"),
    };
    reopened.verify().unwrap_or_else(|e| panic!("{spec}: verify: {e}"));
    let Some(doc) = reopened.doc("doc.xml") else {
        // Killed between store creation and the document's manifest swap.
        assert!(
            accept.contains(&usize::MAX),
            "{spec}: document missing but should have been durable"
        );
        drop(reopened);
        fsck(dir).unwrap_or_else(|e| panic!("{spec}: fsck: {e}"));
        return usize::MAX;
    };
    for &k in accept {
        if k == usize::MAX {
            continue;
        }
        if verify::equivalent(doc.labeled(), &oracle_after(k)).is_ok() {
            drop(reopened);
            fsck(dir).unwrap_or_else(|e| panic!("{spec}: fsck: {e}"));
            return k;
        }
    }
    panic!(
        "{spec}: reopened store matches none of the acceptable prefixes {accept:?} \
         (doc has {} elements)",
        doc.tree().elements().count()
    );
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xp-store-kill-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_during_wal_append_recovers_the_exact_prefix() {
    for hit in 1..=SCRIPT_LEN {
        let dir = scratch_dir(&format!("append-{hit}"));
        let spec = format!("store.wal.append:{hit}:abort");
        assert!(run_child(&dir, &spec), "{spec}: child survived");
        // A torn append frame never replays: exactly hit-1 mutations.
        let k = assert_killed_store_recovers(&dir, &spec, &[hit - 1]);
        assert_eq!(k, hit - 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_during_wal_fsync_recovers_either_prefix() {
    for hit in 1..=SCRIPT_LEN {
        let dir = scratch_dir(&format!("fsync-{hit}"));
        let spec = format!("store.wal.fsync:{hit}:abort");
        assert!(run_child(&dir, &spec), "{spec}: child survived");
        // The frame was fully written before the abort: the mutation is on
        // disk and replays (hit), though a real power cut could also have
        // lost the unsynced write (hit-1). Both are legitimate.
        assert_killed_store_recovers(&dir, &spec, &[hit - 1, hit]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_during_checkpoint_write_recovers() {
    // Hit 1 is add_document's initial segment; hit 2 is checkpoint_all's.
    // Hit 1: killed before the document became durable → empty store.
    // Hit 2: the WAL still holds every mutation → full script.
    for (hit, accept) in [(1, vec![usize::MAX]), (2, vec![SCRIPT_LEN])] {
        let dir = scratch_dir(&format!("ckpt-{hit}"));
        let spec = format!("store.checkpoint.write:{hit}:abort");
        assert!(run_child(&dir, &spec), "{spec}: child survived");
        assert_killed_store_recovers(&dir, &spec, &accept);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_during_manifest_swap_recovers() {
    // Hit 1 is Store::create's initial swap (no store yet), hit 2 is
    // add_document's (empty store), hit 3 is checkpoint_all's (the old
    // checkpoint plus the full WAL stays live).
    for (hit, accept) in [
        (1, vec![usize::MAX]),
        (2, vec![usize::MAX]),
        (3, vec![SCRIPT_LEN]),
    ] {
        let dir = scratch_dir(&format!("swap-{hit}"));
        let spec = format!("store.manifest.swap:{hit}:abort");
        assert!(run_child(&dir, &spec), "{spec}: child survived");
        assert_killed_store_recovers(&dir, &spec, &accept);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn unfired_fault_lets_the_child_finish_cleanly() {
    let dir = scratch_dir("clean");
    // Hit index far past anything the scenario reaches: no abort.
    let spec = "store.wal.append:999:abort";
    assert!(!run_child(&dir, spec), "child should have finished");
    let k = assert_killed_store_recovers(&dir, spec, &[SCRIPT_LEN]);
    assert_eq!(k, SCRIPT_LEN);
    let _ = std::fs::remove_dir_all(&dir);
}
