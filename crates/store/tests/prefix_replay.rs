//! The central crash-safety property: **every** WAL prefix recovers.
//!
//! A random document and mutation script run through a durable [`Store`].
//! Then, for every byte-length prefix of the resulting WAL (with a little
//! garbage appended to odd cuts, modeling a torn tail), a scratch copy of
//! the store directory is reopened. The reopened store must (a) pass the
//! quadruple consistency check, (b) be logically byte-identical to an
//! in-memory oracle that applied exactly the mutations whose frames fit in
//! the prefix, and (c) answer all nine query axes exactly like the oracle's
//! label table.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use xp_labelkit::{InsertPos, LabeledStore, Mutation};
use xp_prime::DynamicPrime;
use xp_query::engine::{eval_path, OrderOracle, Path as QueryPath};
use xp_query::relstore::LabelTable;
use xp_store::frame::decode_frames;
use xp_store::{verify, Store, WAL_FILE};
use xp_testkit::propcheck::{usizes, vec_of, Gen};
use xp_testkit::{prop_assert, propcheck};
use xp_xmltree::{NodeId, XmlTree};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(label: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "xp-store-prefix-{label}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Random element-only tree over tags `t0..t3` (root `t0`), the same shape
/// the dynamic differential tests use.
fn tree_strategy(max_nodes: usize) -> Gen<XmlTree> {
    vec_of(usizes(0..1 << 16), 0..max_nodes).map(|attach| {
        let mut tree = XmlTree::new("t0");
        let mut nodes = vec![tree.root()];
        for (i, seed) in attach.into_iter().enumerate() {
            let parent = nodes[seed % nodes.len()];
            let child = tree.append_element(parent, format!("t{}", i % 4));
            nodes.push(child);
        }
        tree
    })
}

/// Serializes an element-only tree back to XML source for `add_document`.
fn to_xml(tree: &XmlTree, node: NodeId, out: &mut String) {
    let tag = tree.tag(node).unwrap_or("t0");
    out.push('<');
    out.push_str(tag);
    let kids: Vec<NodeId> = tree.children(node).collect();
    if kids.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for kid in kids {
        to_xml(tree, kid, out);
    }
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}

/// One query per axis the engine supports, plus a positional step.
const PATHS: &[&str] = &[
    "//t0/t1",
    "/t0//t2",
    "//t2/parent::*",
    "//t3/ancestor::t1",
    "//t1/ancestor-or-self::*",
    "//t0/following::t1",
    "//t2/preceding::t1",
    "//t1/following-sibling::t2",
    "//t2/preceding-sibling::t1",
    "//t1[2]",
];

struct TreeOrderOracle(HashMap<NodeId, u64>);

impl TreeOrderOracle {
    fn of(tree: &XmlTree) -> Self {
        TreeOrderOracle(tree.elements().enumerate().map(|(i, n)| (n, i as u64)).collect())
    }
}

impl OrderOracle for TreeOrderOracle {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.get(&node).copied().unwrap_or(u64::MAX)
    }
}

fn non_root(tree: &XmlTree, pick: usize) -> Option<NodeId> {
    let n = tree.elements().count();
    if n < 2 {
        return None;
    }
    tree.elements().nth(1 + pick % (n - 1))
}

/// Derives one data-form mutation from a seed against the current tree.
/// Mirrors the dynamic differential driver, but produces [`Mutation`]
/// values so the same bytes flow through the WAL.
fn random_mutation(tree: &XmlTree, seed: usize) -> Option<Mutation> {
    let n = tree.elements().count();
    let pick = seed / 8;
    match seed % 8 {
        0 | 1 => non_root(tree, pick)
            .map(|anchor| Mutation::InsertBefore { anchor, tag: "t1".into() }),
        2 => {
            let pos = match non_root(tree, pick) {
                Some(anchor) if pick % 2 == 0 => InsertPos::Before(anchor),
                _ => InsertPos::LastChildOf(
                    tree.elements().nth(pick % n).unwrap_or_else(|| tree.root()),
                ),
            };
            Some(Mutation::InsertSubtree { pos, xml: "<t1><t2/><t3/></t1>".into() })
        }
        3 => non_root(tree, pick).map(|target| Mutation::InsertParent { target, tag: "t2".into() }),
        4 | 5 => {
            if n >= 3 {
                non_root(tree, pick).map(|target| Mutation::Delete { target })
            } else {
                None
            }
        }
        _ => {
            let target = non_root(tree, pick)?;
            let dest = non_root(tree, pick / 3)?;
            let pos = if pick % 2 == 0 {
                InsertPos::Before(dest)
            } else {
                InsertPos::LastChildOf(dest)
            };
            // MoveIntoSelf rejections are fine: the frame is durable and the
            // failed apply consumes a sequence number, live and on replay.
            Some(Mutation::MoveSubtree { target, pos })
        }
    }
}

/// Copies everything except the WAL from `src` to `dst`.
fn copy_store_sans_wal(src: &Path, dst: &Path) {
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_str() == Some(WAL_FILE) {
            continue;
        }
        std::fs::copy(entry.path(), dst.join(name)).unwrap();
    }
}

fn run_case(tree: &XmlTree, ops: &[usize]) -> Result<(), String> {
    let dir = scratch_dir("live");
    let mut xml = String::new();
    to_xml(tree, tree.root(), &mut xml);
    // The store parses the XML, which assigns arena slots in document
    // order — not necessarily the generated tree's insertion order. The
    // oracle must start from the identical arena.
    let base = xp_xmltree::parse(&xml).map_err(|e| format!("reparse: {e}"))?;

    let mut live = Store::create(&dir).map_err(|e| format!("create: {e}"))?;
    live.add_document("doc.xml", &xml, 3).map_err(|e| format!("add: {e}"))?;
    let mut muts: Vec<Mutation> = Vec::new();
    for &seed in ops {
        let Some(m) = random_mutation(
            live.doc("doc.xml").ok_or("doc vanished")?.tree(),
            seed,
        ) else {
            continue;
        };
        // Scheme rejections are allowed; WAL faults are not armed here.
        let _ = live.apply("doc.xml", &m);
        muts.push(m);
    }
    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).map_err(|e| e.to_string())?;

    for cut in 0..=wal_bytes.len() {
        let scratch = scratch_dir("cut");
        copy_store_sans_wal(&dir, &scratch);
        let mut prefix = wal_bytes[..cut].to_vec();
        // Odd cuts get a sprinkle of garbage: a crash can leave trailing
        // junk as well as a clean truncation. Up to 2 bytes can never form
        // a valid frame header, so it must scan as a torn tail.
        prefix.extend(std::iter::repeat(0xC3).take(cut % 3));
        std::fs::write(scratch.join(WAL_FILE), &prefix).map_err(|e| e.to_string())?;

        // How many complete frames fit in this prefix = how many mutations
        // the oracle applies.
        let k = decode_frames(&wal_bytes[..cut]).frames.len();

        let reopened = Store::open(&scratch)
            .map_err(|e| format!("cut {cut}: open failed: {e}"))?;
        reopened.verify().map_err(|e| format!("cut {cut}: verify: {e}"))?;
        let redoc = reopened.doc("doc.xml").ok_or_else(|| format!("cut {cut}: doc lost"))?;

        let mut oracle = LabeledStore::build(DynamicPrime::new(3), base.clone())
            .map_err(|e| format!("oracle build: {e}"))?;
        let mut oracle_table = LabelTable::build(oracle.tree(), oracle.doc());
        for m in &muts[..k] {
            if let Ok(report) = oracle.apply(m) {
                oracle_table.apply_report(oracle.tree(), oracle.doc(), &report);
            }
        }

        verify::equivalent(redoc.labeled(), &oracle)
            .map_err(|e| format!("cut {cut} (k={k}): reopened != oracle: {e}"))?;

        // Nine axes: the recovered label table answers exactly like the
        // oracle's.
        let ranks = TreeOrderOracle::of(oracle.tree());
        for path_str in PATHS {
            let path = QueryPath::parse(path_str).map_err(|e| e.to_string())?;
            let got = eval_path(redoc.table(), &ranks, &path)
                .map_err(|e| format!("cut {cut}: {path_str}: {e}"))?;
            let want = eval_path(&oracle_table, &ranks, &path)
                .map_err(|e| format!("cut {cut}: {path_str} (oracle): {e}"))?;
            if got != want {
                return Err(format!(
                    "cut {cut} (k={k}): {path_str}: recovered {got:?} vs oracle {want:?}"
                ));
            }
        }
        let _ = std::fs::remove_dir_all(&scratch);
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

propcheck! {
    #![config(cases = 10)]

    /// Every byte prefix of every random WAL recovers to the matching
    /// mutation-prefix oracle, consistent on all nine query axes.
    #[test]
    fn every_wal_prefix_recovers_to_a_consistent_prefix_oracle(
        tree in tree_strategy(14),
        ops in vec_of(usizes(0..1 << 12), 1..6),
    ) {
        let outcome = run_case(&tree, &ops);
        prop_assert!(outcome.is_ok(), "{}", outcome.err().unwrap_or_default());
    }
}

/// Deterministic single case for quick CI runs and debugging: a fixed tree
/// and script through the same prefix machinery.
#[test]
fn fixed_script_every_prefix() {
    let tree = xp_xmltree::parse("<t0><t1><t2/><t3/></t1><t2/><t1><t3/></t1></t0>").unwrap();
    let ops: Vec<usize> = vec![0, 9, 2, 18, 3, 12, 6, 27, 35];
    run_case(&tree, &ops).unwrap();
}
