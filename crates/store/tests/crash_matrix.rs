//! The fault-site × failure-mode crash matrix (in-process half).
//!
//! Every store I/O fault site is fired in `error` and `torn` mode at every
//! hit index the driver scenario reaches, the failed operation's error is
//! observed, and the directory is reopened and compared against the
//! legitimate oracle states. The `abort` mode — a real `kill -9`-style
//! death — lives in `kill_harness.rs`; `short` mode is covered on the read
//! path here.

use std::path::PathBuf;

use xp_labelkit::{InsertPos, LabeledStore, Mutation};
use xp_prime::DynamicPrime;
use xp_store::{fsck, verify, Store, StoreError};
use xp_testkit::fault;
use xp_xmltree::{NodeId, XmlTree};

const DOC_XML: &str = "<t0><t1><t2/><t3/></t1><t2/><t1><t3/></t1></t0>";

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xp-store-matrix-{label}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn nth(tree: &XmlTree, n: usize) -> NodeId {
    tree.elements().nth(n).unwrap_or_else(|| tree.root())
}

/// The scripted mutations, derived against the current tree so node ids
/// stay valid however many previous steps committed.
fn scripted_mutation(step: usize, tree: &XmlTree) -> Mutation {
    match step {
        0 => Mutation::InsertBefore { anchor: nth(tree, 2), tag: "t1".into() },
        1 => Mutation::InsertSubtree {
            pos: InsertPos::LastChildOf(tree.root()),
            xml: "<t2><t3/></t2>".into(),
        },
        2 => Mutation::Delete { target: nth(tree, 1) },
        _ => Mutation::InsertParent { target: nth(tree, 1), tag: "t3".into() },
    }
}

const SCRIPT_LEN: usize = 4;

/// In-memory oracle after `k` scripted mutations.
fn oracle_after(k: usize) -> LabeledStore<DynamicPrime> {
    let tree = xp_xmltree::parse(DOC_XML).unwrap();
    let mut oracle = LabeledStore::build(DynamicPrime::new(4), tree).unwrap();
    for step in 0..k {
        let m = scripted_mutation(step, oracle.tree());
        oracle.apply(&m).unwrap();
    }
    oracle
}

/// Reopens `dir` and asserts the surviving document matches one of the
/// `accept`able mutation-prefix oracles. Returns which one it was.
fn assert_recovers_to_prefix(dir: &PathBuf, accept: &[usize]) -> usize {
    let reopened = Store::open(dir).unwrap();
    reopened.verify().unwrap();
    let doc = reopened.doc("doc.xml").unwrap();
    for &k in accept {
        if verify::equivalent(doc.labeled(), &oracle_after(k)).is_ok() {
            // fsck agrees the on-disk state (post-recovery) is clean.
            drop(reopened);
            fsck(dir).unwrap();
            return k;
        }
    }
    panic!(
        "reopened store matches none of the acceptable prefixes {accept:?} \
         (doc has {} elements)",
        doc.tree().elements().count()
    );
}

/// Drives the scripted scenario with `spec` armed, stopping at the first
/// injected failure. Returns how many mutations had fully succeeded.
fn drive_until_fault(dir: &PathBuf, spec: &str) -> (usize, bool) {
    fault::reset();
    let mut live = Store::create(dir).unwrap();
    live.add_document("doc.xml", DOC_XML, 4).unwrap();
    fault::arm(spec);
    let mut committed = 0usize;
    let mut faulted = false;
    for step in 0..SCRIPT_LEN {
        let m = scripted_mutation(step, live.doc("doc.xml").unwrap().tree());
        match live.apply("doc.xml", &m) {
            Ok(_) => committed += 1,
            Err(StoreError::FaultInjected(_)) | Err(StoreError::Io { .. }) => {
                faulted = true;
                break;
            }
            Err(other) => panic!("unexpected scheme error at step {step}: {other}"),
        }
    }
    fault::reset();
    (committed, faulted)
}

#[test]
fn wal_append_faults_at_every_hit_recover_to_the_exact_prefix() {
    for mode in ["error", "torn"] {
        for hit in 1..=SCRIPT_LEN {
            let dir = scratch_dir(&format!("append-{mode}-{hit}"));
            let spec = format!("store.wal.append:{hit}:{mode}");
            let (committed, faulted) = drive_until_fault(&dir, &spec);
            assert!(faulted, "{spec}: fault never fired");
            assert_eq!(committed, hit - 1);
            // An append-site failure never persists a complete frame: the
            // reopened store holds exactly the committed prefix.
            let k = assert_recovers_to_prefix(&dir, &[committed]);
            assert_eq!(k, hit - 1, "{spec}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn wal_fsync_faults_recover_to_either_prefix() {
    // The frame is fully written before the sync fails: the reopened store
    // may legitimately contain the "failed" mutation. Both prefixes are
    // internally consistent; on a filesystem that kept the write (ours,
    // no crash actually happened) it will be the longer one.
    for hit in 1..=SCRIPT_LEN {
        let dir = scratch_dir(&format!("fsync-{hit}"));
        let spec = format!("store.wal.fsync:{hit}");
        let (committed, faulted) = drive_until_fault(&dir, &spec);
        assert!(faulted, "{spec}: fault never fired");
        assert_eq!(committed, hit - 1);
        let k = assert_recovers_to_prefix(&dir, &[committed, committed + 1]);
        assert!(k == committed || k == committed + 1, "{spec}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn checkpoint_write_faults_leave_the_old_checkpoint_live() {
    for mode in ["error", "torn"] {
        let dir = scratch_dir(&format!("ckpt-{mode}"));
        fault::reset();
        let mut live = Store::create(&dir).unwrap();
        live.add_document("doc.xml", DOC_XML, 4).unwrap();
        for step in 0..SCRIPT_LEN {
            let m = scripted_mutation(step, live.doc("doc.xml").unwrap().tree());
            live.apply("doc.xml", &m).unwrap();
        }
        fault::arm(&format!("store.checkpoint.write:1:{mode}"));
        let err = live.checkpoint("doc.xml").unwrap_err();
        fault::reset();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        // Epoch unchanged: the manifest still points at the old segment,
        // and every mutation is still in the WAL.
        assert_eq!(live.doc("doc.xml").unwrap().epoch(), 1);
        assert_eq!(live.doc("doc.xml").unwrap().durable_seq(), 0);
        drop(live);
        assert_recovers_to_prefix(&dir, &[SCRIPT_LEN]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn manifest_swap_faults_leave_the_old_manifest_live() {
    for mode in ["error", "torn"] {
        let dir = scratch_dir(&format!("swap-{mode}"));
        fault::reset();
        let mut live = Store::create(&dir).unwrap();
        live.add_document("doc.xml", DOC_XML, 4).unwrap();
        for step in 0..SCRIPT_LEN {
            let m = scripted_mutation(step, live.doc("doc.xml").unwrap().tree());
            live.apply("doc.xml", &m).unwrap();
        }
        // Hit 1 of the armed spec is the checkpoint's swap (arming happens
        // after add_document's own swap).
        fault::arm(&format!("store.manifest.swap:1:{mode}"));
        let err = live.checkpoint("doc.xml").unwrap_err();
        fault::reset();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        drop(live);
        // The new segment was written but never referenced; recovery GCs it
        // and replays the WAL onto the old checkpoint.
        assert_recovers_to_prefix(&dir, &[SCRIPT_LEN]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn add_document_swap_fault_recovers_to_an_empty_store() {
    for mode in ["error", "torn"] {
        let dir = scratch_dir(&format!("add-swap-{mode}"));
        fault::reset();
        let mut live = Store::create(&dir).unwrap();
        fault::arm(&format!("store.manifest.swap:1:{mode}"));
        assert!(live.add_document("doc.xml", DOC_XML, 4).is_err());
        fault::reset();
        drop(live);
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.docs().count(), 0, "document never became durable");
        // The orphaned epoch-1 segment was GC'd.
        assert!(!dir.join(xp_store::segment_file(1, 1)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn wal_read_fault_surfaces_as_typed_error_and_is_transient() {
    let dir = scratch_dir("read-short");
    fault::reset();
    {
        let mut live = Store::create(&dir).unwrap();
        live.add_document("doc.xml", DOC_XML, 4).unwrap();
        let m = scripted_mutation(0, live.doc("doc.xml").unwrap().tree());
        live.apply("doc.xml", &m).unwrap();
    }
    for mode in ["short", "error"] {
        fault::arm(&format!("store.wal.read:1:{mode}"));
        let err = Store::open(&dir).unwrap_err();
        fault::reset();
        assert!(matches!(err, StoreError::Io { op: "read", .. }), "{err}");
    }
    // The failure was transient — nothing was truncated or lost.
    assert_recovers_to_prefix(&dir, &[1]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faults_during_recovery_replay_do_not_corrupt_the_disk() {
    // Arm a WAL-append fault, crash an apply, reopen (which replays), and
    // make sure reopening again still works: recovery itself never appends,
    // so an armed append site must not fire during open.
    let dir = scratch_dir("replay-inert");
    fault::reset();
    {
        let mut live = Store::create(&dir).unwrap();
        live.add_document("doc.xml", DOC_XML, 4).unwrap();
        let m = scripted_mutation(0, live.doc("doc.xml").unwrap().tree());
        live.apply("doc.xml", &m).unwrap();
        fault::arm("store.wal.append:1:torn");
        let m = scripted_mutation(1, live.doc("doc.xml").unwrap().tree());
        assert!(live.apply("doc.xml", &m).is_err());
        fault::reset();
    }
    fault::arm("store.wal.append:1:torn");
    let reopened = Store::open(&dir).unwrap();
    let append_hits = fault::hits("store.wal.append");
    fault::reset();
    reopened.verify().unwrap();
    assert_eq!(append_hits, 0, "recovery never appends");
    drop(reopened);
    assert_recovers_to_prefix(&dir, &[1]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_during_read_keeps_the_pinned_segment_until_the_snapshot_drops() {
    // Satellite for the snapshot-vs-GC race: a checkpoint (and even a
    // faulted checkpoint retry) must never delete a segment an open
    // snapshot handle still references, and the snapshot must keep
    // answering from its epoch's state throughout.
    let dir = scratch_dir("gc-read");
    fault::reset();
    let mut live = Store::create(&dir).unwrap();
    live.add_document("doc.xml", DOC_XML, 4).unwrap();
    let snap = live.snapshot("doc.xml").unwrap();
    assert_eq!(snap.epoch(), 1);
    verify::equivalent(snap.labeled(), &oracle_after(0)).unwrap();

    // Advance the store past the snapshot's epoch.
    for step in 0..2 {
        let m = scripted_mutation(step, live.doc("doc.xml").unwrap().tree());
        live.apply("doc.xml", &m).unwrap();
    }
    live.checkpoint("doc.xml").unwrap();
    assert_eq!(live.doc("doc.xml").unwrap().epoch(), 2);
    assert!(
        dir.join(xp_store::segment_file(1, 1)).exists(),
        "checkpoint GC must defer the pinned epoch-1 segment"
    );

    // A faulted checkpoint attempt while the pin is held changes nothing.
    let m = scripted_mutation(2, live.doc("doc.xml").unwrap().tree());
    live.apply("doc.xml", &m).unwrap();
    fault::arm("store.checkpoint.write:1:torn");
    assert!(live.checkpoint("doc.xml").is_err());
    fault::reset();
    assert!(dir.join(xp_store::segment_file(1, 1)).exists());

    // The snapshot still reads its original, consistent cut.
    verify::equivalent(snap.labeled(), &oracle_after(0)).unwrap();
    verify::check_doc(snap.labeled(), snap.table()).unwrap();

    // Once the handle drops, the deferred segment is fair game: an explicit
    // sweep (or the next checkpoint/open) removes it.
    drop(snap);
    live.sweep_unpinned();
    assert!(!dir.join(xp_store::segment_file(1, 1)).exists());
    drop(live);

    // A fresh open on the swept directory recovers the full prefix: the
    // deferred-GC bookkeeping never leaks into durable state.
    assert_recovers_to_prefix(&dir, &[3]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopen_gc_collects_segments_only_a_dead_process_pinned() {
    // Pins are process-local: if the pinning process dies, the next open
    // sees an unreferenced old segment as debris and collects it, exactly
    // like any other orphan.
    let dir = scratch_dir("gc-dead-pin");
    fault::reset();
    {
        let mut live = Store::create(&dir).unwrap();
        live.add_document("doc.xml", DOC_XML, 4).unwrap();
        let snap = live.snapshot("doc.xml").unwrap();
        let m = scripted_mutation(0, live.doc("doc.xml").unwrap().tree());
        live.apply("doc.xml", &m).unwrap();
        live.checkpoint("doc.xml").unwrap();
        assert!(dir.join(xp_store::segment_file(1, 1)).exists());
        // Simulate process death with the pin still held: the handle and
        // store just drop; nothing sweeps in this lifetime.
        std::mem::forget(snap);
    }
    let reopened = Store::open(&dir).unwrap();
    reopened.verify().unwrap();
    assert!(
        !dir.join(xp_store::segment_file(1, 1)).exists(),
        "open() GCs segments no manifest entry references"
    );
    drop(reopened);
    assert_recovers_to_prefix(&dir, &[1]);
    let _ = std::fs::remove_dir_all(&dir);
}
