//! # xp-store: the crash-safe disk-backed label store
//!
//! Persistence for the prime labeling pipeline (paper §4: the labels must
//! survive as a *database* of XML documents, not a process's heap). A store
//! is one directory holding many documents, each a
//! [`LabeledStore<DynamicPrime>`] quadruple — tree, labels, SC table,
//! relational label table — with three kinds of files:
//!
//! * `MANIFEST` — one checksummed frame naming every document's current
//!   checkpoint ([`manifest`]), atomically replaced via tmp + rename.
//! * `seg-{doc}-e{epoch}.dat` — columnar checkpoint segments ([`segment`]).
//! * `wal.log` — the write-ahead log ([`wal`]): every [`Mutation`] is
//!   framed and fsynced here *before* any in-memory state changes.
//!
//! ## Recovery contract
//!
//! [`Store::open`] **is** recovery; there is no separate repair step. It
//! loads the manifest, garbage-collects swap leftovers and unreferenced
//! segments, reassembles each document from its segment, discards the
//! torn WAL tail (the only bytes ever discarded — everything else corrupt
//! is *reported*, never guessed at), and replays every remaining frame
//! whose sequence number the checkpoint has not already folded in. A
//! process killed at any fault site — `store.wal.append`,
//! `store.wal.fsync`, `store.checkpoint.write`, `store.manifest.swap` —
//! reopens byte-identical to a never-crashed twin, with one documented
//! latitude: a crash *after* a frame hit the disk but *before* the caller
//! learned of it (the fsync window) legitimately reopens with that one
//! extra mutation applied. Both outcomes are internally consistent; the
//! crash harness accepts either prefix.
//!
//! Replay determinism: a mutation that failed validation when applied live
//! fails identically on replay (validation reads only tree state, which
//! replay reconstructs exactly), so failed applies still consume a sequence
//! number and the WAL can log frames unconditionally. The one exception is
//! a fault *injected* into the in-memory scheme (`sc.*` sites) during a
//! durable apply — replay would not reproduce it — so crash tests arm only
//! `store.*` sites; see DESIGN.md §11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Everything that touches the disk can fail; failures surface as typed
// [`StoreError`]s, never panics.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod error;
pub mod frame;
pub mod manifest;
pub mod segment;
pub mod shard;
pub mod verify;
pub mod wal;

pub use error::StoreError;
pub use frame::MAX_FRAME_PAYLOAD;
pub use manifest::{Manifest, ManifestEntry, MANIFEST_FILE, MANIFEST_TMP};
pub use segment::{segment_file, Segment};
pub use shard::{ShardedBatch, ShardedDocStore};
pub use wal::{WalScan, WAL_FILE};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use xp_labelkit::codec::{read_varint, write_varint};
use xp_labelkit::dynamic::{DynamicError, LabeledStore};
use xp_labelkit::{Mutation, RelabelReport};
use xp_prime::{DynamicPrime, PrimeLabel};
use xp_query::LabelTable;
use xp_xmltree::XmlTree;

/// Shared (doc id, checkpoint epoch) → pin-count registry. Pins keep a
/// checkpoint segment's file on disk while a snapshot handle that was cut
/// against that epoch is still alive — [`Store::checkpoint`] defers the old
/// segment's deletion instead of unlinking the recovery baseline out from
/// under an open reader.
type PinRegistry = Arc<Mutex<BTreeMap<(u64, u64), usize>>>;

/// An epoch refcount held on one checkpoint segment. While any clone of
/// this pin is alive, the segment file `seg-{doc}-e{epoch}.dat` survives
/// checkpoints; the deferred deletion runs once the last pin drops.
#[derive(Debug)]
pub struct SegmentPin {
    doc_id: u64,
    epoch: u64,
    registry: PinRegistry,
}

impl SegmentPin {
    fn acquire(registry: &PinRegistry, doc_id: u64, epoch: u64) -> Arc<SegmentPin> {
        if let Ok(mut pins) = registry.lock() {
            *pins.entry((doc_id, epoch)).or_insert(0) += 1;
        }
        Arc::new(SegmentPin { doc_id, epoch, registry: Arc::clone(registry) })
    }

    /// The pinned document id.
    pub fn doc_id(&self) -> u64 {
        self.doc_id
    }

    /// The pinned checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for SegmentPin {
    fn drop(&mut self) {
        if let Ok(mut pins) = self.registry.lock() {
            if let Some(count) = pins.get_mut(&(self.doc_id, self.epoch)) {
                *count -= 1;
                if *count == 0 {
                    pins.remove(&(self.doc_id, self.epoch));
                }
            }
        }
    }
}

/// A consistent, epoch-stamped read view of one document, decoupled from
/// the live store: the label quadruple is deep-copied at cut time, and the
/// checkpoint segment the snapshot's recovery story depends on is pinned
/// (see [`SegmentPin`]) so a concurrent checkpoint cannot garbage-collect
/// it while this handle is alive.
#[derive(Debug, Clone)]
pub struct DocSnapshot {
    uri: String,
    doc_id: u64,
    epoch: u64,
    seq: u64,
    labeled: Arc<LabeledStore<DynamicPrime>>,
    table: Arc<LabelTable<PrimeLabel>>,
    _pin: Arc<SegmentPin>,
}

impl DocSnapshot {
    /// The document's URI key.
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// The document id.
    pub fn doc_id(&self) -> u64 {
        self.doc_id
    }

    /// Checkpoint epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// WAL sequence the snapshot reflects.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The snapshot's labeled store (tree + labels + scheme state).
    pub fn labeled(&self) -> &LabeledStore<DynamicPrime> {
        &self.labeled
    }

    /// The snapshot's label table.
    pub fn table(&self) -> &LabelTable<PrimeLabel> {
        &self.table
    }
}

/// One open document: the live quadruple plus its durability coordinates.
#[derive(Debug)]
pub struct OpenDoc {
    uri: String,
    doc_id: u64,
    /// Checkpoint epoch of the segment currently on disk.
    epoch: u64,
    /// WAL sequence folded into that segment (the manifest's `seq`).
    durable_seq: u64,
    /// WAL sequence of the last frame processed in memory. Always `>=
    /// durable_seq`; equality means the WAL holds nothing this document
    /// needs.
    seq: u64,
    chunk_capacity: usize,
    labeled: LabeledStore<DynamicPrime>,
    table: LabelTable<PrimeLabel>,
}

impl OpenDoc {
    /// The document's URI key.
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// Stable numeric id (embeds into WAL frames and segment names).
    pub fn doc_id(&self) -> u64 {
        self.doc_id
    }

    /// Current checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Last WAL sequence applied in memory.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// WAL sequence already folded into the on-disk segment.
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// The live labeled store (tree + labels + scheme state).
    pub fn labeled(&self) -> &LabeledStore<DynamicPrime> {
        &self.labeled
    }

    /// The relational label table, patched in step with every mutation.
    pub fn table(&self) -> &LabelTable<PrimeLabel> {
        &self.table
    }

    /// The document tree.
    pub fn tree(&self) -> &XmlTree {
        self.labeled.tree()
    }

    fn segment_payload(&self, epoch: u64) -> Vec<u8> {
        segment::encode_segment(
            &self.uri,
            self.doc_id,
            epoch,
            self.seq,
            self.chunk_capacity as u64,
            self.labeled.state().primes_handed_out(),
            self.labeled.tree(),
            self.labeled.doc(),
            self.labeled.state().sc_table(),
        )
    }
}

/// A disk-backed collection of labeled documents. See the crate docs for
/// the durability contract.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: wal::Wal,
    next_doc_id: u64,
    docs: BTreeMap<u64, OpenDoc>,
    /// Live snapshot pins by (doc id, checkpoint epoch).
    pins: PinRegistry,
    /// Superseded segments whose deletion waits for their pins to drop.
    deferred: Vec<(u64, u64)>,
}

/// What a read-only [`fsck`] pass established.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Documents the manifest names, all loaded and verified.
    pub docs: usize,
    /// Complete WAL frames on disk.
    pub wal_frames: usize,
    /// Frames a recovering open would replay (sequence past the segments).
    pub replayed: usize,
    /// Bytes of torn tail after the last complete frame (discarded on a
    /// recovering open, merely reported here).
    pub torn_tail_bytes: u64,
}

impl Store {
    /// Creates a fresh, empty store in `dir` (created if missing). Refuses
    /// a directory that already holds a store.
    pub fn create(dir: &Path) -> Result<Store, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| error::io_err("create", dir, e))?;
        if dir.join(MANIFEST_FILE).exists() {
            return Err(StoreError::Io {
                op: "create",
                path: dir.to_path_buf(),
                msg: "directory already holds a store".into(),
            });
        }
        let manifest = Manifest { next_doc_id: 1, entries: Vec::new() };
        manifest.swap(dir)?;
        let (wal, _) = wal::Wal::open(dir)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            wal,
            next_doc_id: 1,
            docs: BTreeMap::new(),
            pins: PinRegistry::default(),
            deferred: Vec::new(),
        })
    }

    /// Opens (= recovers) the store in `dir`. See the crate docs: manifest
    /// load, stale-file GC, segment loads, torn-tail truncation, replay.
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        let manifest = Manifest::load(dir)?;
        gc_stale_files(dir, &manifest)?;

        let mut docs = BTreeMap::new();
        for entry in &manifest.entries {
            let seg = segment::load_segment(dir, entry.doc_id, entry.epoch)?;
            if seg.uri != entry.uri || seg.seq != entry.seq {
                return Err(StoreError::Corrupt {
                    path: dir.join(segment_file(entry.doc_id, entry.epoch)),
                    what: "segment header disagrees with the manifest".into(),
                });
            }
            let chunk_capacity = usize::try_from(seg.chunk_capacity).unwrap_or(usize::MAX);
            let state = xp_prime::OrderedPrimeDoc::from_parts(
                &seg.tree,
                seg.labels.clone(),
                seg.sc,
                seg.primes_handed_out,
            )?;
            let labeled = LabeledStore::from_parts(
                DynamicPrime::new(chunk_capacity),
                seg.tree,
                seg.labels,
                state,
            );
            let table = LabelTable::build(labeled.tree(), labeled.doc());
            docs.insert(
                entry.doc_id,
                OpenDoc {
                    uri: entry.uri.clone(),
                    doc_id: entry.doc_id,
                    epoch: entry.epoch,
                    durable_seq: entry.seq,
                    seq: entry.seq,
                    chunk_capacity,
                    labeled,
                    table,
                },
            );
        }

        let (wal, scan) = wal::Wal::open(dir)?;
        let mut store = Store {
            dir: dir.to_path_buf(),
            wal,
            next_doc_id: manifest.next_doc_id,
            docs,
            pins: PinRegistry::default(),
            deferred: Vec::new(),
        };
        for frame in &scan.frames {
            store.replay_frame(frame)?;
        }
        Ok(store)
    }

    /// Replays one WAL frame: skip if the checkpoint already folds it in,
    /// otherwise decode and re-apply exactly as the live path did —
    /// including re-failing a mutation that failed live (failed applies
    /// consumed a sequence number too).
    fn replay_frame(&mut self, frame: &[u8]) -> Result<(), StoreError> {
        let mut input = frame;
        let doc_id = read_varint(&mut input)?;
        let seq = read_varint(&mut input)?;
        let Some(doc) = self.docs.get_mut(&doc_id) else {
            // A frame for a document the manifest no longer names; inert.
            return Ok(());
        };
        if seq <= doc.seq {
            return Ok(()); // already durable in the segment
        }
        if seq != doc.seq + 1 {
            return Err(StoreError::Corrupt {
                path: self.dir.join(WAL_FILE),
                what: format!(
                    "WAL gap for doc {doc_id}: frame seq {seq} after seq {}",
                    doc.seq
                ),
            });
        }
        let mutation = Mutation::decode(&mut input, doc.labeled.tree())?;
        if !input.is_empty() {
            return Err(StoreError::Corrupt {
                path: self.dir.join(WAL_FILE),
                what: "trailing bytes after a WAL mutation".into(),
            });
        }
        doc.seq = seq;
        if let Ok(report) = doc.labeled.apply(&mutation) {
            doc.table.apply_report(doc.labeled.tree(), doc.labeled.doc(), &report);
        }
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Every open document, in id order.
    pub fn docs(&self) -> impl Iterator<Item = &OpenDoc> + '_ {
        self.docs.values()
    }

    /// The document keyed by `uri`, if the store holds it.
    pub fn doc(&self, uri: &str) -> Option<&OpenDoc> {
        self.docs.values().find(|d| d.uri == uri)
    }

    fn doc_id_of(&self, uri: &str) -> Result<u64, StoreError> {
        self.doc(uri)
            .map(|d| d.doc_id)
            .ok_or_else(|| StoreError::UnknownUri(uri.to_owned()))
    }

    /// Parses `xml`, labels it with an SC chunk capacity of
    /// `chunk_capacity`, and adds it under `uri` — durably: the document is
    /// checkpointed (epoch 1) and the manifest swapped before this returns.
    pub fn add_document(
        &mut self,
        uri: &str,
        xml: &str,
        chunk_capacity: usize,
    ) -> Result<u64, StoreError> {
        if self.doc(uri).is_some() {
            return Err(StoreError::DuplicateUri(uri.to_owned()));
        }
        let tree = xp_xmltree::parse(xml)
            .map_err(|e| StoreError::Dynamic(xp_labelkit::DynamicError::Fragment(e.to_string())))?;
        let labeled = LabeledStore::build(DynamicPrime::new(chunk_capacity), tree)?;
        let table = LabelTable::build(labeled.tree(), labeled.doc());
        let doc_id = self.next_doc_id;
        let doc = OpenDoc {
            uri: uri.to_owned(),
            doc_id,
            epoch: 1,
            durable_seq: 0,
            seq: 0,
            chunk_capacity,
            labeled,
            table,
        };
        segment::write_segment(&self.dir, doc_id, 1, &doc.segment_payload(1))?;
        let mut manifest = self.manifest_snapshot();
        manifest.next_doc_id = doc_id + 1;
        manifest.upsert(ManifestEntry { uri: uri.to_owned(), doc_id, epoch: 1, seq: 0 });
        manifest.swap(&self.dir)?;
        self.next_doc_id = doc_id + 1;
        self.docs.insert(doc_id, doc);
        Ok(doc_id)
    }

    /// The manifest describing current *durable* state (what a crash right
    /// now would recover to).
    fn manifest_snapshot(&self) -> Manifest {
        Manifest {
            next_doc_id: self.next_doc_id,
            entries: self
                .docs
                .values()
                .map(|d| ManifestEntry {
                    uri: d.uri.clone(),
                    doc_id: d.doc_id,
                    epoch: d.epoch,
                    seq: d.durable_seq,
                })
                .collect(),
        }
    }

    /// Applies one mutation to the document at `uri`, write-ahead: the WAL
    /// frame is appended and fsynced *before* any in-memory state changes.
    ///
    /// On a WAL error nothing in memory moved — but if the error came from
    /// the fsync window the frame may be durable anyway, and the next open
    /// will (correctly) replay it. On a scheme error the frame *is* durable
    /// and the failed apply still consumed a sequence number; replay fails
    /// it identically.
    pub fn apply(&mut self, uri: &str, mutation: &Mutation) -> Result<RelabelReport, StoreError> {
        match self.apply_batch(uri, std::slice::from_ref(mutation))?.pop() {
            Some(Ok(report)) => Ok(report),
            Some(Err(e)) => Err(StoreError::Dynamic(e)),
            None => Err(StoreError::Io {
                op: "apply",
                path: self.dir.clone(),
                msg: "single-mutation batch returned no result".into(),
            }),
        }
    }

    /// Group commit: frames every mutation, appends them all to the WAL with
    /// **one** fsync, then applies them in memory in order. Per-mutation
    /// scheme failures come back in the result vector (each failed apply
    /// still consumed a sequence number and re-fails identically on replay);
    /// a WAL-level error aborts the whole batch before any in-memory change.
    ///
    /// This is the server's epoch-apply primitive: an epoch of `k` batched
    /// mutations costs `1/k` fsyncs per mutation instead of 1.
    pub fn apply_batch(
        &mut self,
        uri: &str,
        mutations: &[Mutation],
    ) -> Result<Vec<Result<RelabelReport, DynamicError>>, StoreError> {
        if mutations.is_empty() {
            return Ok(Vec::new());
        }
        let doc_id = self.doc_id_of(uri)?;
        let payloads: Vec<Vec<u8>> = {
            let doc = self
                .docs
                .get(&doc_id)
                .ok_or_else(|| StoreError::UnknownUri(uri.to_owned()))?;
            mutations
                .iter()
                .enumerate()
                .map(|(i, mutation)| {
                    let mut payload = Vec::new();
                    write_varint(&mut payload, doc_id);
                    write_varint(&mut payload, doc.seq + 1 + i as u64);
                    mutation.encode(&mut payload);
                    payload
                })
                .collect()
        };
        self.wal.append_batch(&payloads)?;
        let doc = self
            .docs
            .get_mut(&doc_id)
            .ok_or_else(|| StoreError::UnknownUri(uri.to_owned()))?;
        let mut results = Vec::with_capacity(mutations.len());
        for mutation in mutations {
            doc.seq += 1;
            match doc.labeled.apply(mutation) {
                Ok(report) => {
                    doc.table.apply_report(doc.labeled.tree(), doc.labeled.doc(), &report);
                    results.push(Ok(report));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        Ok(results)
    }

    /// Data syncs the WAL has issued since this store was opened. With
    /// group commit ([`Store::apply_batch`]) this grows by 1 per batch, not
    /// per mutation — the `bench_server` gate divides it by mutations.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }

    /// Pins the current checkpoint segment of `uri` (see [`SegmentPin`]):
    /// while the returned pin is alive, [`Store::checkpoint`] defers the
    /// segment file's deletion instead of unlinking it.
    pub fn pin_segment(&self, uri: &str) -> Result<Arc<SegmentPin>, StoreError> {
        let doc = self.doc(uri).ok_or_else(|| StoreError::UnknownUri(uri.to_owned()))?;
        Ok(SegmentPin::acquire(&self.pins, doc.doc_id, doc.epoch))
    }

    /// Cuts an epoch-stamped consistent snapshot of `uri`: a deep copy of
    /// the label quadruple plus a pin on the checkpoint segment it was cut
    /// against. The handle stays valid — and answers queries identically —
    /// regardless of later mutations, checkpoints, or GC on the live store.
    pub fn snapshot(&self, uri: &str) -> Result<DocSnapshot, StoreError> {
        let doc = self.doc(uri).ok_or_else(|| StoreError::UnknownUri(uri.to_owned()))?;
        Ok(DocSnapshot {
            uri: doc.uri.clone(),
            doc_id: doc.doc_id,
            epoch: doc.epoch,
            seq: doc.seq,
            labeled: Arc::new(doc.labeled.fork()),
            table: Arc::new(doc.table.clone()),
            _pin: SegmentPin::acquire(&self.pins, doc.doc_id, doc.epoch),
        })
    }

    /// `true` iff some live pin references (doc, epoch).
    fn is_pinned(&self, doc_id: u64, epoch: u64) -> bool {
        self.pins.lock().map(|p| p.contains_key(&(doc_id, epoch))).unwrap_or(false)
    }

    /// Deletes a superseded segment now, or defers it while pinned.
    fn retire_segment(&mut self, doc_id: u64, epoch: u64) {
        if self.is_pinned(doc_id, epoch) {
            self.deferred.push((doc_id, epoch));
        } else {
            // Best-effort: an undeleted old segment is unreferenced and the
            // next open garbage-collects it.
            let _ = std::fs::remove_file(self.dir.join(segment_file(doc_id, epoch)));
        }
    }

    /// Sweeps the deferred-deletion list: every entry whose pins have all
    /// dropped is unlinked. Runs after each checkpoint; callers holding
    /// snapshots for a long time can invoke it directly once they drop them.
    pub fn sweep_unpinned(&mut self) {
        let deferred = std::mem::take(&mut self.deferred);
        for (doc_id, epoch) in deferred {
            if self.is_pinned(doc_id, epoch) {
                self.deferred.push((doc_id, epoch));
            } else {
                let _ = std::fs::remove_file(self.dir.join(segment_file(doc_id, epoch)));
            }
        }
    }

    /// Checkpoints one document: writes a fresh segment at the next epoch,
    /// swaps the manifest to it, then drops the old segment. A crash
    /// between the segment write and the swap leaves an unreferenced
    /// segment for GC; the old checkpoint stays live either way.
    pub fn checkpoint(&mut self, uri: &str) -> Result<(), StoreError> {
        let doc_id = self.doc_id_of(uri)?;
        let (next_epoch, payload, seq) = {
            let doc = self
                .docs
                .get(&doc_id)
                .ok_or_else(|| StoreError::UnknownUri(uri.to_owned()))?;
            (doc.epoch + 1, doc.segment_payload(doc.epoch + 1), doc.seq)
        };
        segment::write_segment(&self.dir, doc_id, next_epoch, &payload)?;
        let mut manifest = self.manifest_snapshot();
        manifest.upsert(ManifestEntry {
            uri: uri.to_owned(),
            doc_id,
            epoch: next_epoch,
            seq,
        });
        manifest.swap(&self.dir)?;
        let old_epoch = if let Some(doc) = self.docs.get_mut(&doc_id) {
            let old = doc.epoch;
            doc.epoch = next_epoch;
            doc.durable_seq = seq;
            Some(old)
        } else {
            None
        };
        if let Some(epoch) = old_epoch {
            // An open snapshot handle may still reference the superseded
            // checkpoint — deletion waits for its pins (GC-during-read).
            self.retire_segment(doc_id, epoch);
        }
        self.sweep_unpinned();
        Ok(())
    }

    /// Checkpoints every document, then — once nothing in the WAL is needed
    /// for recovery — truncates the log.
    pub fn checkpoint_all(&mut self) -> Result<(), StoreError> {
        let uris: Vec<String> = self.docs.values().map(|d| d.uri.clone()).collect();
        for uri in &uris {
            self.checkpoint(uri)?;
        }
        if self.docs.values().all(|d| d.durable_seq == d.seq) {
            self.wal.truncate()?;
        }
        Ok(())
    }

    /// Runs [`verify::check_doc`] over every open document.
    pub fn verify(&self) -> Result<(), StoreError> {
        for doc in self.docs.values() {
            verify::check_doc(&doc.labeled, &doc.table).map_err(|what| StoreError::Corrupt {
                path: self.dir.join(segment_file(doc.doc_id, doc.epoch)),
                what: format!("document `{}`: {what}", doc.uri),
            })?;
        }
        Ok(())
    }
}

/// Removes swap leftovers (`*.tmp`) and segment files no manifest entry
/// references — the debris a crash mid-checkpoint or mid-swap leaves.
/// Only the recovering open calls this; read-only [`fsck`] never deletes.
fn gc_stale_files(dir: &Path, manifest: &Manifest) -> Result<(), StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| error::io_err("read", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| error::io_err("read", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = if name.ends_with(".tmp") {
            true
        } else if let Some((doc_id, epoch)) = segment::parse_segment_file(name) {
            manifest.entry(doc_id).map(|e| e.epoch) != Some(epoch)
        } else {
            false
        };
        if stale {
            std::fs::remove_file(entry.path())
                .map_err(|e| error::io_err("remove", &entry.path(), e))?;
        }
    }
    Ok(())
}

/// Read-only integrity check of the store in `dir`: verifies the manifest,
/// every referenced segment, the WAL frame chain, and that replaying the
/// outstanding frames yields consistent documents — all in memory, without
/// truncating the torn tail, deleting stale files, or writing anything.
pub fn fsck(dir: &Path) -> Result<FsckReport, StoreError> {
    let manifest = Manifest::load(dir)?;
    let mut docs = BTreeMap::new();
    for entry in &manifest.entries {
        let seg = segment::load_segment(dir, entry.doc_id, entry.epoch)?;
        if seg.uri != entry.uri || seg.seq != entry.seq {
            return Err(StoreError::Corrupt {
                path: dir.join(segment_file(entry.doc_id, entry.epoch)),
                what: "segment header disagrees with the manifest".into(),
            });
        }
        let chunk_capacity = usize::try_from(seg.chunk_capacity).unwrap_or(usize::MAX);
        let state = xp_prime::OrderedPrimeDoc::from_parts(
            &seg.tree,
            seg.labels.clone(),
            seg.sc,
            seg.primes_handed_out,
        )?;
        let labeled = LabeledStore::from_parts(
            DynamicPrime::new(chunk_capacity),
            seg.tree,
            seg.labels,
            state,
        );
        docs.insert(entry.doc_id, (entry.seq, labeled));
    }

    let scan = wal::scan(dir)?;
    let mut replayed = 0usize;
    for frame in &scan.frames {
        let mut input = frame.as_slice();
        let doc_id = read_varint(&mut input)?;
        let seq = read_varint(&mut input)?;
        let Some((at, labeled)) = docs.get_mut(&doc_id) else { continue };
        if seq <= *at {
            continue;
        }
        if seq != *at + 1 {
            return Err(StoreError::Corrupt {
                path: dir.join(WAL_FILE),
                what: format!("WAL gap for doc {doc_id}: frame seq {seq} after seq {at}"),
            });
        }
        let mutation = Mutation::decode(&mut input, labeled.tree())?;
        *at = seq;
        let _ = labeled.apply(&mutation);
        replayed += 1;
    }

    for (doc_id, (_, labeled)) in &docs {
        let table = LabelTable::build(labeled.tree(), labeled.doc());
        verify::check_doc(labeled, &table).map_err(|what| StoreError::Corrupt {
            path: dir.to_path_buf(),
            what: format!("document id {doc_id}: {what}"),
        })?;
    }

    Ok(FsckReport {
        docs: docs.len(),
        wal_frames: scan.frames.len(),
        replayed,
        torn_tail_bytes: scan.torn_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::InsertPos;
    use xp_xmltree::NodeId;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xp-store-lib-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn nth_element(tree: &XmlTree, n: usize) -> NodeId {
        let mut it = tree.elements();
        let mut id = tree.root();
        for _ in 0..=n {
            id = match it.next() {
                Some(x) => x,
                None => panic!("tree has fewer than {n} elements"),
            };
        }
        id
    }

    #[test]
    fn create_add_reopen_round_trip() {
        let dir = tmpdir("roundtrip");
        {
            let mut store = Store::create(&dir).unwrap();
            store.add_document("a.xml", "<r><x/><y/></r>", 8).unwrap();
            store.add_document("b.xml", "<doc><p>hi</p></doc>", 16).unwrap();
            store.verify().unwrap();
        }
        let store = Store::open(&dir).unwrap();
        store.verify().unwrap();
        assert_eq!(store.docs().count(), 2);
        let a = store.doc("a.xml").unwrap();
        assert_eq!(a.tree().elements().count(), 3);
        assert_eq!(a.epoch(), 1);
        assert_eq!(store.doc("b.xml").unwrap().doc_id(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_uri_is_rejected() {
        let dir = tmpdir("dup");
        let mut store = Store::create(&dir).unwrap();
        store.add_document("a.xml", "<r/>", 8).unwrap();
        assert!(matches!(
            store.add_document("a.xml", "<r/>", 8),
            Err(StoreError::DuplicateUri(_))
        ));
        let target = store.doc("a.xml").unwrap().tree().root();
        assert!(matches!(
            store.apply("nope", &Mutation::Delete { target }),
            Err(StoreError::UnknownUri(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutations_survive_reopen_via_wal() {
        let dir = tmpdir("wal-replay");
        {
            let mut store = Store::create(&dir).unwrap();
            store.add_document("d.xml", "<r><a/><b/><c/></r>", 8).unwrap();
            let anchor = nth_element(store.doc("d.xml").unwrap().tree(), 2);
            store
                .apply("d.xml", &Mutation::InsertBefore { anchor, tag: "n".into() })
                .unwrap();
            let target = nth_element(store.doc("d.xml").unwrap().tree(), 1);
            store.apply("d.xml", &Mutation::Delete { target }).unwrap();
            store.verify().unwrap();
            // No checkpoint: reopen must recover from segment + WAL replay.
        }
        let store = Store::open(&dir).unwrap();
        store.verify().unwrap();
        let d = store.doc("d.xml").unwrap();
        assert_eq!(d.seq(), 2);
        assert_eq!(d.durable_seq(), 0);
        let tags: Vec<&str> =
            d.tree().elements().filter_map(|n| d.tree().tag(n)).collect();
        assert_eq!(tags, vec!["r", "n", "b", "c"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_folds_wal_and_truncates() {
        let dir = tmpdir("checkpoint");
        {
            let mut store = Store::create(&dir).unwrap();
            store.add_document("d.xml", "<r><a/><b/></r>", 8).unwrap();
            let anchor = nth_element(store.doc("d.xml").unwrap().tree(), 1);
            store
                .apply("d.xml", &Mutation::InsertBefore { anchor, tag: "z".into() })
                .unwrap();
            store.checkpoint_all().unwrap();
            let d = store.doc("d.xml").unwrap();
            assert_eq!(d.epoch(), 2);
            assert_eq!(d.durable_seq(), 1);
        }
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        assert!(dir.join(segment_file(1, 2)).exists());
        assert!(!dir.join(segment_file(1, 1)).exists(), "old epoch dropped");
        let store = Store::open(&dir).unwrap();
        store.verify().unwrap();
        let tags: Vec<&str> = {
            let d = store.doc("d.xml").unwrap();
            d.tree().elements().filter_map(|n| d.tree().tag(n)).collect()
        };
        assert_eq!(tags, vec!["r", "z", "a", "b"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_store_is_equivalent_to_live_one() {
        let dir = tmpdir("equiv");
        let mut live = Store::create(&dir).unwrap();
        live.add_document("d.xml", "<r><a/><b/><c/><d/></r>", 4).unwrap();
        let anchor = nth_element(live.doc("d.xml").unwrap().tree(), 2);
        live.apply("d.xml", &Mutation::InsertBefore { anchor, tag: "m".into() }).unwrap();
        let frag_pos = InsertPos::LastChildOf(live.doc("d.xml").unwrap().tree().root());
        live.apply(
            "d.xml",
            &Mutation::InsertSubtree { pos: frag_pos, xml: "<s><t/></s>".into() },
        )
        .unwrap();
        let reopened = Store::open(&dir).unwrap();
        verify::equivalent(
            live.doc("d.xml").unwrap().labeled(),
            reopened.doc("d.xml").unwrap().labeled(),
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_reports_without_repairing() {
        let dir = tmpdir("fsck");
        {
            let mut store = Store::create(&dir).unwrap();
            store.add_document("d.xml", "<r><a/><b/></r>", 8).unwrap();
            let anchor = nth_element(store.doc("d.xml").unwrap().tree(), 1);
            store
                .apply("d.xml", &Mutation::InsertBefore { anchor, tag: "z".into() })
                .unwrap();
        }
        // Simulate a torn tail by appending garbage to the WAL.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join(WAL_FILE))
                .unwrap();
            f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        }
        let len_before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        let report = fsck(&dir).unwrap();
        assert_eq!(report.docs, 1);
        assert_eq!(report.wal_frames, 1);
        assert_eq!(report.replayed, 1);
        assert_eq!(report.torn_tail_bytes, 3);
        // Read-only: the torn tail is still there.
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), len_before);
        // A recovering open truncates it.
        let _ = Store::open(&dir).unwrap();
        assert_eq!(
            std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(),
            len_before - 3
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_rejects_a_corrupt_segment() {
        let dir = tmpdir("fsck-bad");
        {
            let mut store = Store::create(&dir).unwrap();
            store.add_document("d.xml", "<r><a/></r>", 8).unwrap();
        }
        let path = dir.join(segment_file(1, 1));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(fsck(&dir), Err(StoreError::Corrupt { .. })));
        assert!(matches!(Store::open(&dir), Err(StoreError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_stale_segments_and_tmp() {
        let dir = tmpdir("gc");
        {
            let mut store = Store::create(&dir).unwrap();
            store.add_document("d.xml", "<r><a/></r>", 8).unwrap();
        }
        std::fs::write(dir.join("MANIFEST.tmp"), b"half-written").unwrap();
        std::fs::write(dir.join(segment_file(1, 9)), b"orphan").unwrap();
        let store = Store::open(&dir).unwrap();
        store.verify().unwrap();
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert!(!dir.join(segment_file(1, 9)).exists());
        assert!(dir.join(segment_file(1, 1)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_apply_consumes_a_seq_and_replays_identically() {
        let dir = tmpdir("failed-apply");
        let mut live = Store::create(&dir).unwrap();
        live.add_document("d.xml", "<r><a><b/></a></r>", 8).unwrap();
        let (a, b) = {
            let t = live.doc("d.xml").unwrap().tree();
            (nth_element(t, 1), nth_element(t, 2))
        };
        // Moving a into its own subtree fails validation — after the frame
        // is already durable.
        let bad = Mutation::MoveSubtree { target: a, pos: InsertPos::LastChildOf(b) };
        assert!(matches!(live.apply("d.xml", &bad), Err(StoreError::Dynamic(_))));
        assert_eq!(live.doc("d.xml").unwrap().seq(), 1);
        // A further good mutation lands at seq 2.
        live.apply("d.xml", &Mutation::InsertBefore { anchor: a, tag: "n".into() }).unwrap();
        assert_eq!(live.doc("d.xml").unwrap().seq(), 2);
        let reopened = Store::open(&dir).unwrap();
        reopened.verify().unwrap();
        assert_eq!(reopened.doc("d.xml").unwrap().seq(), 2);
        verify::equivalent(
            live.doc("d.xml").unwrap().labeled(),
            reopened.doc("d.xml").unwrap().labeled(),
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn apply_batch_is_one_fsync_and_matches_sequential_applies() {
        let dir = tmpdir("batch");
        let dir2 = tmpdir("batch-seq");
        let mut batched = Store::create(&dir).unwrap();
        let mut sequential = Store::create(&dir2).unwrap();
        for store in [&mut batched, &mut sequential] {
            store.add_document("d.xml", "<r><a/><b/><c/></r>", 8).unwrap();
        }
        let fsyncs_before = batched.wal_fsyncs();
        let muts: Vec<Mutation> = {
            let t = batched.doc("d.xml").unwrap().tree();
            vec![
                Mutation::InsertBefore { anchor: nth_element(t, 1), tag: "x".into() },
                Mutation::InsertSubtree {
                    pos: InsertPos::LastChildOf(t.root()),
                    xml: "<s><t/></s>".into(),
                },
                Mutation::Delete { target: nth_element(t, 2) },
            ]
        };
        let results = batched.apply_batch("d.xml", &muts).unwrap();
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(batched.wal_fsyncs() - fsyncs_before, 1, "group commit: one sync per batch");
        for m in &muts {
            sequential.apply("d.xml", m).unwrap();
        }
        assert_eq!(batched.doc("d.xml").unwrap().seq(), 3);
        verify::equivalent(
            batched.doc("d.xml").unwrap().labeled(),
            sequential.doc("d.xml").unwrap().labeled(),
        )
        .unwrap();
        // And the batch replays from the WAL like any other frames.
        let reopened = Store::open(&dir).unwrap();
        reopened.verify().unwrap();
        verify::equivalent(
            reopened.doc("d.xml").unwrap().labeled(),
            batched.doc("d.xml").unwrap().labeled(),
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn snapshot_pins_its_checkpoint_segment_through_gc() {
        let dir = tmpdir("pin");
        let mut store = Store::create(&dir).unwrap();
        store.add_document("d.xml", "<r><a/><b/></r>", 8).unwrap();
        let snap = store.snapshot("d.xml").unwrap();
        assert_eq!(snap.epoch(), 1);
        let elements_at_cut = snap.labeled().tree().elements().count();

        // Mutate and checkpoint: the store moves to epoch 2, but the pinned
        // epoch-1 segment must survive the checkpoint's GC.
        let anchor = nth_element(store.doc("d.xml").unwrap().tree(), 1);
        store.apply("d.xml", &Mutation::InsertBefore { anchor, tag: "z".into() }).unwrap();
        store.checkpoint("d.xml").unwrap();
        assert_eq!(store.doc("d.xml").unwrap().epoch(), 2);
        assert!(dir.join(segment_file(1, 1)).exists(), "pinned segment survives");
        assert!(dir.join(segment_file(1, 2)).exists());

        // The snapshot still answers from its own consistent copy.
        assert_eq!(snap.labeled().tree().elements().count(), elements_at_cut);
        assert_eq!(snap.seq(), 0);
        verify::check_doc(snap.labeled(), snap.table()).unwrap();

        // A clone of the handle keeps the pin alive after the original drops.
        let clone = snap.clone();
        drop(snap);
        store.sweep_unpinned();
        assert!(dir.join(segment_file(1, 1)).exists(), "cloned handle still pins");
        drop(clone);
        store.sweep_unpinned();
        assert!(!dir.join(segment_file(1, 1)).exists(), "unpinned segment swept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_then_checkpointed_again_sweeps_on_later_checkpoint() {
        let dir = tmpdir("pin-sweep");
        let mut store = Store::create(&dir).unwrap();
        store.add_document("d.xml", "<r><a/></r>", 8).unwrap();
        let snap = store.snapshot("d.xml").unwrap();
        let a = nth_element(store.doc("d.xml").unwrap().tree(), 1);
        store.apply("d.xml", &Mutation::InsertBefore { anchor: a, tag: "x".into() }).unwrap();
        store.checkpoint("d.xml").unwrap();
        assert!(dir.join(segment_file(1, 1)).exists());
        drop(snap);
        // The next checkpoint's sweep collects the now-unpinned deferral.
        store.apply("d.xml", &Mutation::InsertBefore { anchor: a, tag: "y".into() }).unwrap();
        store.checkpoint("d.xml").unwrap();
        assert!(!dir.join(segment_file(1, 1)).exists(), "deferred segment swept");
        assert!(!dir.join(segment_file(1, 2)).exists(), "unpinned old epoch dropped eagerly");
        assert!(dir.join(segment_file(1, 3)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let dir = tmpdir("recreate");
        let _ = Store::create(&dir).unwrap();
        assert!(Store::create(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
