//! Per-shard checkpoint segments: durable storage for one sharded document
//! ([`xp_prime::ShardedPrime`], the §3.2 decomposition promoted to the unit
//! of scale).
//!
//! A [`ShardedDocStore`] directory holds:
//!
//! * `MANIFEST` — the same atomic-swap manifest as [`crate::Store`], reused
//!   with a fixed id map: entry id 0 is the **skeleton**, entry id `s + 1`
//!   is shard `s`. Each entry records the epoch of that piece's current
//!   file, so shards checkpointed at different times coexist at different
//!   epochs — that is what makes checkpoints `O(dirty shards)`.
//! * `shard-skel-e{epoch}.dat` — the skeleton: document URI, sharding
//!   policy, SC chunk capacity, and the exact global tree arena (the shard
//!   shadows name global nodes by arena index, so the skeleton is the frame
//!   of reference every part is glued to).
//! * `shard-{sid}-e{epoch}.dat` — one file per live shard: the shard's
//!   linkage (parent shard, global root, local→global node map, stub→child
//!   map) followed by a standard columnar segment of its shadow tree, inner
//!   labels, and private SC table.
//! * `wal.log` — the same group-commit WAL as the flat store; frames are
//!   `varint seq` + the encoded mutation (no doc id — one document).
//!
//! Checkpointing drains [`xp_labelkit::take_dirty_shards`] and rewrites
//! only the skeleton plus the dirty shards' files at the new epoch; clean
//! shards keep their old files and only their manifest entries are
//! re-pointed. A checkpoint that fails part-way keeps its dirty set
//! pending, so the next attempt re-covers those shards; recovery is
//! unaffected either way because the manifest swap is the only commit
//! point and the WAL replays everything past the durable seq.
//!
//! Recovery (`open`) mirrors [`crate::Store::open`]: manifest load, stale
//! file GC, skeleton + part loads, [`ShardedScheme::assemble`], torn-tail
//! WAL truncation, replay, and one [`maintain_shards`] pass (split timing
//! during replay may differ from the crashed process, which changes only
//! shard topology, never document content or query answers).
//!
//! [`relabel_shard`] is **not** WAL-logged — a relabel changes labels, not
//! the document — so it checkpoints *immediately* instead: the relabeled
//! shard's file (plus the skeleton) is rewritten and the manifest swapped
//! before the call returns. Deferring that to the next scheduled
//! checkpoint would open a durability hole: mutations WAL-logged *after*
//! the relabel would replay on recovery against the pre-relabel labels,
//! where an insert that succeeded live can fail (or label differently)
//! against the unrelabeled, gap-exhausted shard. With the immediate swap,
//! recovery always starts from the post-relabel labels; a crash *during*
//! the swap leaves the old checkpoint fully live (pre-relabel labels, same
//! document), which is the other byte-identical fixed point.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::error::{io_err, StoreError};
use crate::manifest::{Manifest, ManifestEntry};
use crate::segment::{self, read_framed_file, write_framed_file};
use crate::wal::Wal;
use xp_labelkit::codec::{read_bytes, read_varint, write_bytes, write_varint};
use xp_labelkit::{
    apply_batch_sharded, maintain_shards, take_dirty_shards, DynamicError, LabeledStore, Mutation,
    RelabelReport, ShardId, ShardPart, ShardPolicy, ShardedScheme,
};
use xp_prime::{DynamicPrime, OrderedPrimeDoc, ShardedPrime};
use xp_xmltree::{NodeId, XmlTree};

const SKEL_MAGIC: &[u8; 8] = b"XPSKL01\n";
const SHARD_MAGIC: &[u8; 8] = b"XPSHD01\n";

/// Manifest entry id of the skeleton record.
const SKEL_ID: u64 = 0;

fn file_id(sid: ShardId) -> u64 {
    u64::from(sid.0) + 1
}

/// The file name the skeleton checkpoints to at `epoch`.
pub fn skeleton_file(epoch: u64) -> String {
    format!("shard-skel-e{epoch}.dat")
}

/// The file name shard `sid` checkpoints to at `epoch`.
pub fn shard_file(sid: ShardId, epoch: u64) -> String {
    format!("shard-{}-e{epoch}.dat", sid.0)
}

/// Parses a sharded-store file name: `None` shard means the skeleton.
fn parse_shard_file(name: &str) -> Option<(Option<u32>, u64)> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".dat")?;
    let (who, epoch) = rest.rsplit_once("-e")?;
    let epoch: u64 = epoch.parse().ok()?;
    if who == "skel" {
        Some((None, epoch))
    } else {
        Some((Some(who.parse().ok()?), epoch))
    }
}

// ---------------------------------------------------------------------------
// Skeleton and shard-part codecs
// ---------------------------------------------------------------------------

struct Skeleton {
    uri: String,
    epoch: u64,
    seq: u64,
    chunk_capacity: u64,
    policy: ShardPolicy,
    tree: XmlTree,
}

fn encode_skeleton(skel: &Skeleton) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SKEL_MAGIC);
    write_bytes(&mut out, skel.uri.as_bytes());
    for v in [
        skel.epoch,
        skel.seq,
        skel.chunk_capacity,
        skel.policy.cut_depth as u64,
        skel.policy.max_shard_nodes as u64,
    ] {
        write_varint(&mut out, v);
    }
    segment::encode_tree(&mut out, &skel.tree);
    out
}

fn decode_skeleton(payload: &[u8], path: &Path) -> Result<Skeleton, StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt { path: path.to_path_buf(), what: what.into() };
    if payload.len() < SKEL_MAGIC.len() || &payload[..SKEL_MAGIC.len()] != SKEL_MAGIC {
        return Err(corrupt("bad skeleton magic"));
    }
    let mut input = &payload[SKEL_MAGIC.len()..];
    let uri = std::str::from_utf8(read_bytes(&mut input)?)
        .map_err(|_| corrupt("skeleton URI is not UTF-8"))?
        .to_owned();
    let epoch = read_varint(&mut input)?;
    let seq = read_varint(&mut input)?;
    let chunk_capacity = read_varint(&mut input)?;
    let cut_depth = usize::try_from(read_varint(&mut input)?)
        .map_err(|_| corrupt("cut depth overflows"))?;
    let max_shard_nodes = usize::try_from(read_varint(&mut input)?)
        .map_err(|_| corrupt("shard size bound overflows"))?;
    let tree = segment::decode_tree(&mut input, path)?;
    if !input.is_empty() {
        return Err(corrupt("trailing skeleton bytes"));
    }
    Ok(Skeleton {
        uri,
        epoch,
        seq,
        chunk_capacity,
        policy: ShardPolicy { cut_depth, max_shard_nodes },
        tree,
    })
}

fn write_node_opt(out: &mut Vec<u8>, node: Option<NodeId>) {
    write_varint(out, node.map_or(0, |n| n.index() as u64 + 1));
}

fn read_node_opt(
    input: &mut &[u8],
    tree: &XmlTree,
    path: &Path,
) -> Result<Option<NodeId>, StoreError> {
    match read_varint(input)? {
        0 => Ok(None),
        n => {
            let idx = usize::try_from(n - 1).map_err(|_| StoreError::Corrupt {
                path: path.to_path_buf(),
                what: "node index overflows".into(),
            })?;
            tree.node_at(idx).map(Some).ok_or_else(|| StoreError::Corrupt {
                path: path.to_path_buf(),
                what: "shard part names a node outside its arena".into(),
            })
        }
    }
}

/// Serializes one shard's checkpoint payload: linkage header, then the
/// shadow tree + inner labels + private SC table as a standard columnar
/// segment (doc id = the shard's manifest id).
fn encode_shard_part(
    uri: &str,
    epoch: u64,
    seq: u64,
    chunk_capacity: u64,
    part: &ShardPart<DynamicPrime>,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SHARD_MAGIC);
    write_varint(&mut out, part.parent.map_or(0, |p| u64::from(p.0) + 1));
    write_varint(&mut out, part.root_global.index() as u64);
    write_varint(&mut out, part.to_global.len() as u64);
    for &slot in &part.to_global {
        write_node_opt(&mut out, slot);
    }
    write_varint(&mut out, part.stubs.len() as u64);
    for &(stub, child) in &part.stubs {
        write_varint(&mut out, stub.index() as u64);
        write_varint(&mut out, u64::from(child.0));
    }
    let inner = segment::encode_segment(
        uri,
        file_id(part.id),
        epoch,
        seq,
        chunk_capacity,
        part.state.primes_handed_out(),
        &part.shadow,
        &part.local_doc,
        part.state.sc_table(),
    );
    write_bytes(&mut out, &inner);
    out
}

/// Parses one shard's checkpoint payload back into a [`ShardPart`].
/// `global` is the skeleton tree the part's global node indices refer to.
fn decode_shard_part(
    payload: &[u8],
    sid: ShardId,
    global: &XmlTree,
    path: &Path,
) -> Result<ShardPart<DynamicPrime>, StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt { path: path.to_path_buf(), what: what.into() };
    if payload.len() < SHARD_MAGIC.len() || &payload[..SHARD_MAGIC.len()] != SHARD_MAGIC {
        return Err(corrupt("bad shard magic"));
    }
    let mut input = &payload[SHARD_MAGIC.len()..];
    let parent = match read_varint(&mut input)? {
        0 => None,
        n => Some(ShardId(
            u32::try_from(n - 1).map_err(|_| corrupt("parent shard id overflows"))?,
        )),
    };
    let root_idx =
        usize::try_from(read_varint(&mut input)?).map_err(|_| corrupt("root index overflows"))?;
    let root_global = global
        .node_at(root_idx)
        .ok_or_else(|| corrupt("shard root is outside the skeleton arena"))?;
    let nslots =
        usize::try_from(read_varint(&mut input)?).map_err(|_| corrupt("map length overflows"))?;
    let mut to_global = Vec::with_capacity(nslots.min(1 << 20));
    for _ in 0..nslots {
        to_global.push(read_node_opt(&mut input, global, path)?);
    }
    let nstubs =
        usize::try_from(read_varint(&mut input)?).map_err(|_| corrupt("stub count overflows"))?;
    let mut raw_stubs = Vec::with_capacity(nstubs.min(1 << 20));
    for _ in 0..nstubs {
        let local =
            usize::try_from(read_varint(&mut input)?).map_err(|_| corrupt("stub index overflows"))?;
        let child = u32::try_from(read_varint(&mut input)?)
            .map_err(|_| corrupt("stub shard id overflows"))?;
        raw_stubs.push((local, ShardId(child)));
    }
    let inner = read_bytes(&mut input)?;
    if !input.is_empty() {
        return Err(corrupt("trailing shard bytes"));
    }
    let seg = segment::decode_segment(inner, path)?;
    if seg.doc_id != file_id(sid) {
        return Err(corrupt("shard segment header disagrees with its file name"));
    }
    let stubs = raw_stubs
        .into_iter()
        .map(|(local, child)| {
            seg.tree
                .node_at(local)
                .map(|n| (n, child))
                .ok_or_else(|| corrupt("stub is outside the shadow arena"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let state =
        OrderedPrimeDoc::from_parts(&seg.tree, seg.labels.clone(), seg.sc, seg.primes_handed_out)?;
    Ok(ShardPart {
        id: sid,
        shadow: seg.tree,
        local_doc: seg.labels,
        state,
        parent,
        root_global,
        to_global,
        stubs,
    })
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Outcome of one [`ShardedDocStore::apply_batch`]: per-mutation results
/// in submission order, plus the shards the batch (including its
/// split/merge maintenance pass) dirtied.
#[derive(Debug, Default)]
pub struct ShardedBatch {
    /// One entry per submitted mutation.
    pub results: Vec<Result<RelabelReport, DynamicError>>,
    /// Shards mutated by this batch, ascending — the unit of table refresh
    /// and checkpoint rewrite. A shard merged away mid-batch is absent;
    /// callers prune dead partitions against
    /// [`ShardedDocStore::live_shards`].
    pub dirty: Vec<ShardId>,
}

/// A crash-safe store for **one** sharded document, with per-shard
/// checkpoint segments (see the module docs for the file layout and the
/// `O(dirty shards)` checkpoint contract).
pub struct ShardedDocStore {
    dir: PathBuf,
    wal: Wal,
    uri: String,
    chunk_capacity: usize,
    epoch: u64,
    durable_seq: u64,
    seq: u64,
    labeled: LabeledStore<ShardedPrime>,
    /// Epoch of each live shard's current on-disk file.
    shard_epochs: BTreeMap<ShardId, u64>,
    /// Shards mutated since their current file was written; a failed
    /// checkpoint leaves them here so the next attempt re-covers them.
    pending_dirty: BTreeSet<ShardId>,
}

impl ShardedDocStore {
    /// Creates a sharded store in the (empty or fresh) directory `dir`,
    /// labels `tree` under `policy`, and checkpoints every shard at
    /// epoch 1.
    pub fn create(
        dir: &Path,
        uri: &str,
        tree: XmlTree,
        chunk_capacity: usize,
        policy: ShardPolicy,
    ) -> Result<ShardedDocStore, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create", dir, e))?;
        let scheme = ShardedScheme::new(DynamicPrime::new(chunk_capacity), policy);
        let mut labeled = LabeledStore::build(scheme, tree)?;
        let _ = take_dirty_shards(&mut labeled);
        let (wal, _) = Wal::open(dir)?;
        let mut store = ShardedDocStore {
            dir: dir.to_path_buf(),
            wal,
            uri: uri.to_owned(),
            chunk_capacity,
            epoch: 0,
            durable_seq: 0,
            seq: 0,
            labeled,
            shard_epochs: BTreeMap::new(),
            pending_dirty: BTreeSet::new(),
        };
        store.pending_dirty = store.labeled.state().live_shards().into_iter().collect();
        store.persist(1)?;
        Ok(store)
    }

    /// Opens (= recovers) the sharded store in `dir`: manifest load, stale
    /// file GC, skeleton + shard-part loads, reassembly, WAL replay, and a
    /// post-replay [`maintain_shards`] pass.
    pub fn open(dir: &Path) -> Result<ShardedDocStore, StoreError> {
        let manifest = Manifest::load(dir)?;
        let skel_entry = manifest
            .entry(SKEL_ID)
            .ok_or_else(|| StoreError::Corrupt {
                path: dir.join(crate::manifest::MANIFEST_FILE),
                what: "sharded store manifest has no skeleton entry".into(),
            })?
            .clone();
        gc_shard_files(dir, &manifest)?;

        let skel_name = skeleton_file(skel_entry.epoch);
        let skel = decode_skeleton(&read_framed_file(dir, &skel_name)?, &dir.join(&skel_name))?;
        if skel.uri != skel_entry.uri || skel.epoch != skel_entry.epoch || skel.seq != skel_entry.seq
        {
            return Err(StoreError::Corrupt {
                path: dir.join(&skel_name),
                what: "skeleton header disagrees with the manifest".into(),
            });
        }

        let mut parts = Vec::new();
        let mut shard_epochs = BTreeMap::new();
        for entry in manifest.entries.iter().filter(|e| e.doc_id != SKEL_ID) {
            let sid = ShardId(u32::try_from(entry.doc_id - 1).map_err(|_| StoreError::Corrupt {
                path: dir.join(crate::manifest::MANIFEST_FILE),
                what: "manifest shard id overflows u32".into(),
            })?);
            let name = shard_file(sid, entry.epoch);
            let part =
                decode_shard_part(&read_framed_file(dir, &name)?, sid, &skel.tree, &dir.join(&name))?;
            parts.push(part);
            shard_epochs.insert(sid, entry.epoch);
        }

        let chunk_capacity = usize::try_from(skel.chunk_capacity).unwrap_or(usize::MAX);
        let scheme = ShardedScheme::new(DynamicPrime::new(chunk_capacity), skel.policy);
        let (doc, state) = scheme.assemble(&skel.tree, parts)?;
        let labeled = LabeledStore::from_parts(scheme, skel.tree, doc, state);

        let (wal, scan) = Wal::open(dir)?;
        let mut store = ShardedDocStore {
            dir: dir.to_path_buf(),
            wal,
            uri: skel.uri,
            chunk_capacity,
            epoch: skel_entry.epoch,
            durable_seq: skel_entry.seq,
            seq: skel_entry.seq,
            labeled,
            shard_epochs,
            pending_dirty: BTreeSet::new(),
        };
        for frame in &scan.frames {
            store.replay_frame(frame)?;
        }
        if store.seq > store.durable_seq {
            maintain_shards(&mut store.labeled)?;
        }
        let drained = take_dirty_shards(&mut store.labeled);
        store.pending_dirty.extend(drained);
        Ok(store)
    }

    /// Replays one WAL frame (`varint seq` + mutation), re-failing what
    /// failed live — failed applies consumed a sequence number too.
    fn replay_frame(&mut self, frame: &[u8]) -> Result<(), StoreError> {
        let mut input = frame;
        let seq = read_varint(&mut input)?;
        if seq <= self.durable_seq {
            return Ok(());
        }
        if seq != self.seq + 1 {
            return Err(StoreError::Corrupt {
                path: self.dir.join(crate::wal::WAL_FILE),
                what: format!("WAL gap: frame seq {seq} after seq {}", self.seq),
            });
        }
        let mutation = Mutation::decode(&mut input, self.labeled.tree())?;
        if !input.is_empty() {
            return Err(StoreError::Corrupt {
                path: self.dir.join(crate::wal::WAL_FILE),
                what: "trailing bytes after a WAL mutation".into(),
            });
        }
        self.seq = seq;
        let _ = self.labeled.apply(&mutation);
        Ok(())
    }

    /// Applies one epoch batch: WAL-logs every mutation (group commit, one
    /// fsync), fans the applies across shards via [`apply_batch_sharded`],
    /// then runs the split/merge maintenance pass. Per-mutation outcomes
    /// come back in order together with the shards the batch dirtied (the
    /// unit the query layer refreshes and the next checkpoint rewrites);
    /// a WAL-level error aborts the whole batch before any in-memory
    /// change.
    pub fn apply_batch(&mut self, mutations: &[Mutation]) -> Result<ShardedBatch, StoreError> {
        if mutations.is_empty() {
            return Ok(ShardedBatch::default());
        }
        let payloads: Vec<Vec<u8>> = mutations
            .iter()
            .enumerate()
            .map(|(i, mutation)| {
                let mut payload = Vec::new();
                write_varint(&mut payload, self.seq + 1 + i as u64);
                mutation.encode(&mut payload);
                payload
            })
            .collect();
        self.wal.append_batch(&payloads)?;
        self.seq += mutations.len() as u64;
        let results = apply_batch_sharded(&mut self.labeled, mutations);
        maintain_shards(&mut self.labeled)?;
        let dirty = take_dirty_shards(&mut self.labeled);
        self.pending_dirty.extend(dirty.iter().copied());
        Ok(ShardedBatch { results, dirty })
    }

    /// Relabels one hot shard from scratch without touching its siblings
    /// and checkpoints **immediately** — the relabel is not WAL-logged, so
    /// it must be durable before any later WAL frame can depend on the new
    /// labels (see the module docs for the replay divergence a deferred
    /// checkpoint would allow). The write is `O(dirty shards)`, normally
    /// just `sid` plus the skeleton.
    pub fn relabel_shard(&mut self, sid: ShardId) -> Result<RelabelReport, StoreError> {
        let report = xp_labelkit::relabel_shard(&mut self.labeled, sid)?;
        let drained = take_dirty_shards(&mut self.labeled);
        self.pending_dirty.extend(drained);
        self.pending_dirty.insert(sid);
        self.persist(self.epoch + 1)?;
        Ok(report)
    }

    /// Checkpoints at the next epoch, rewriting only the skeleton and the
    /// dirty shards' files; clean shards keep their existing files. On
    /// success the WAL truncates. A no-op when nothing changed since the
    /// last checkpoint.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let drained = take_dirty_shards(&mut self.labeled);
        self.pending_dirty.extend(drained);
        for sid in self.labeled.state().live_shards() {
            if !self.shard_epochs.contains_key(&sid) {
                self.pending_dirty.insert(sid);
            }
        }
        let topology_changed = self
            .shard_epochs
            .keys()
            .any(|sid| self.labeled.state().cell(*sid).is_none());
        if self.seq == self.durable_seq && self.pending_dirty.is_empty() && !topology_changed {
            return Ok(());
        }
        self.persist(self.epoch + 1)
    }

    /// Writes the skeleton plus every pending-dirty live shard at
    /// `new_epoch`, swaps the manifest, then garbage-collects superseded
    /// files and truncates the WAL. The manifest swap is the only commit
    /// point; any earlier failure leaves the old checkpoint fully live.
    fn persist(&mut self, new_epoch: u64) -> Result<(), StoreError> {
        let live: Vec<ShardId> = self.labeled.state().live_shards();
        let skel = Skeleton {
            uri: self.uri.clone(),
            epoch: new_epoch,
            seq: self.seq,
            chunk_capacity: self.chunk_capacity as u64,
            policy: self.labeled.scheme().policy(),
            tree: self.labeled.tree().clone(),
        };
        write_framed_file(&self.dir, &skeleton_file(new_epoch), &encode_skeleton(&skel))?;

        let mut manifest = Manifest {
            next_doc_id: live.iter().map(|s| file_id(*s) + 1).max().unwrap_or(1),
            entries: vec![ManifestEntry {
                uri: self.uri.clone(),
                doc_id: SKEL_ID,
                epoch: new_epoch,
                seq: self.seq,
            }],
        };
        let mut new_epochs = BTreeMap::new();
        for &sid in &live {
            let dirty = self.pending_dirty.contains(&sid);
            let epoch = if dirty {
                let cell = self.labeled.state().cell(sid).ok_or_else(|| {
                    StoreError::Dynamic(DynamicError::Fragment("shard vanished mid-persist".into()))
                })?;
                let part = cell.export(sid);
                let payload =
                    encode_shard_part(&self.uri, new_epoch, self.seq, self.chunk_capacity as u64, &part);
                write_framed_file(&self.dir, &shard_file(sid, new_epoch), &payload)?;
                new_epoch
            } else {
                *self.shard_epochs.get(&sid).unwrap_or(&new_epoch)
            };
            new_epochs.insert(sid, epoch);
            manifest.upsert(ManifestEntry {
                uri: self.uri.clone(),
                doc_id: file_id(sid),
                epoch,
                seq: self.seq,
            });
        }
        manifest.swap(&self.dir)?;

        self.epoch = new_epoch;
        self.durable_seq = self.seq;
        self.shard_epochs = new_epochs;
        self.pending_dirty.clear();
        gc_shard_files(&self.dir, &manifest)?;
        self.wal.truncate()?;
        Ok(())
    }

    /// The live sharded label store.
    pub fn labeled(&self) -> &LabeledStore<ShardedPrime> {
        &self.labeled
    }

    /// The document URI.
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current checkpoint epoch (the skeleton's epoch; individual shards
    /// may sit at older epochs if they have not been dirtied since).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mutations accepted so far (WAL sequence).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Mutations folded into the current checkpoint.
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// Live shard ids, ascending.
    pub fn live_shards(&self) -> Vec<ShardId> {
        self.labeled.state().live_shards()
    }

    /// The sharding policy the document was created under.
    pub fn policy(&self) -> ShardPolicy {
        self.labeled.scheme().policy()
    }

    /// Data syncs the WAL has issued through this handle.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }
}

/// Removes sharded-store files no manifest entry references (superseded
/// epochs, torn checkpoint writes, stale manifest staging files).
fn gc_shard_files(dir: &Path, manifest: &Manifest) -> Result<(), StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("read", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = if name.ends_with(".tmp") {
            true
        } else if let Some((who, epoch)) = parse_shard_file(name) {
            let id = who.map_or(SKEL_ID, |sid| u64::from(sid) + 1);
            manifest.entry(id).map(|e| e.epoch) != Some(epoch)
        } else {
            false
        };
        if stale {
            std::fs::remove_file(entry.path()).map_err(|e| io_err("remove", &entry.path(), e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::InsertPos;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xp-store-shard-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_tree() -> XmlTree {
        xp_xmltree::parse(
            "<lib><shelf><book><title>a</title><title>b</title></book><book/></shelf>\
             <shelf><case><book/><book/></case></shelf><attic><box/></attic></lib>",
        )
        .unwrap()
    }

    fn nth_element(tree: &XmlTree, n: usize) -> NodeId {
        tree.elements().nth(n).unwrap()
    }

    /// Document order and ancestry of the recovered store must agree with
    /// a fresh unsharded labeling of the identical tree.
    fn assert_consistent(store: &ShardedDocStore) {
        let tree = store.labeled().tree().clone();
        let oracle = LabeledStore::build(DynamicPrime::new(8), tree.clone()).unwrap();
        assert_eq!(store.labeled().ordered_nodes(), oracle.ordered_nodes());
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &a in &nodes {
            for &b in &nodes {
                let truth = a != b && tree.ancestors(b).any(|x| x == a);
                let claimed = xp_labelkit::LabelOps::is_ancestor_of(
                    store.labeled().doc().get(a).unwrap(),
                    store.labeled().doc().get(b).unwrap(),
                );
                assert_eq!(claimed, truth, "{a:?} vs {b:?}");
            }
        }
    }

    fn shard_files(dir: &Path) -> BTreeMap<String, u64> {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().to_str().unwrap().to_owned();
                parse_shard_file(&name).map(|(who, epoch)| {
                    (who.map_or("skel".to_owned(), |s| s.to_string()), epoch)
                })
            })
            .collect()
    }

    #[test]
    fn create_reopen_round_trips() {
        let dir = tmpdir("roundtrip");
        let store =
            ShardedDocStore::create(&dir, "doc.xml", sample_tree(), 8, ShardPolicy::at_depth(1))
                .unwrap();
        assert!(store.live_shards().len() > 1, "cut 1 must produce several shards");
        let labels: Vec<_> =
            store.labeled().tree().elements().map(|n| store.labeled().doc().get(n).cloned()).collect();
        let ordered = store.labeled().ordered_nodes();
        let shards = store.live_shards();
        drop(store);

        let back = ShardedDocStore::open(&dir).unwrap();
        assert_eq!(back.uri(), "doc.xml");
        assert_eq!(back.epoch(), 1);
        assert_eq!(back.live_shards(), shards);
        assert_eq!(back.labeled().tree().snapshot(), sample_tree().snapshot());
        let back_labels: Vec<_> =
            back.labeled().tree().elements().map(|n| back.labeled().doc().get(n).cloned()).collect();
        assert_eq!(back_labels, labels, "labels must survive reassembly byte-identically");
        assert_eq!(back.labeled().ordered_nodes(), ordered);
        assert_consistent(&back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_replay_recovers_an_uncheckpointed_batch() {
        let dir = tmpdir("replay");
        let mut store =
            ShardedDocStore::create(&dir, "d", sample_tree(), 8, ShardPolicy::at_depth(1)).unwrap();
        let anchor = nth_element(store.labeled().tree(), 3);
        let target = nth_element(store.labeled().tree(), 9);
        let results = store
            .apply_batch(&[
                Mutation::InsertBefore { anchor, tag: "neu".into() },
                Mutation::InsertSubtree {
                    pos: InsertPos::LastChildOf(anchor),
                    xml: "<x><y/></x>".into(),
                },
                Mutation::Delete { target },
            ])
            .unwrap();
        assert!(results.results.iter().all(Result::is_ok));
        assert!(!results.dirty.is_empty());
        assert_eq!(store.seq(), 3);
        let snap = store.labeled().tree().snapshot();
        let ordered = store.labeled().ordered_nodes();
        drop(store);

        let back = ShardedDocStore::open(&dir).unwrap();
        assert_eq!(back.seq(), 3);
        assert_eq!(back.durable_seq(), 0);
        assert_eq!(back.labeled().tree().snapshot(), snap);
        assert_eq!(back.labeled().ordered_nodes(), ordered);
        assert_consistent(&back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rewrites_only_dirty_shards() {
        let dir = tmpdir("dirty");
        // Cut every 2 levels: <title> sits mid-shard, so inserting beside
        // it touches exactly one shard (before a shard *root* it would
        // route to the parent shard instead).
        let mut store =
            ShardedDocStore::create(&dir, "d", sample_tree(), 8, ShardPolicy::at_depth(2)).unwrap();
        let before = shard_files(&dir);
        assert!(before.values().all(|&e| e == 1));
        let nshards = store.live_shards().len();
        assert!(nshards > 2);

        let anchor = nth_element(store.labeled().tree(), 3); // <title>a</title>
        let touched = store.labeled().state().shard_of_node(anchor).unwrap();
        assert_ne!(
            store.labeled().state().cell(touched).unwrap().root_global(),
            anchor,
            "anchor must not be a shard root for this test"
        );
        store.apply_batch(&[Mutation::InsertBefore { anchor, tag: "neu".into() }]).unwrap();
        store.checkpoint().unwrap();

        let after = shard_files(&dir);
        assert_eq!(after.len(), nshards + 1, "one file per shard plus the skeleton");
        assert_eq!(after["skel"], 2, "skeleton always rides the new epoch");
        for (who, epoch) in &after {
            if who == "skel" {
                continue;
            }
            let expected = if *who == touched.0.to_string() { 2 } else { 1 };
            assert_eq!(*epoch, expected, "shard {who} file epoch");
        }

        // A clean checkpoint is a no-op.
        store.checkpoint().unwrap();
        assert_eq!(store.epoch(), 2);
        drop(store);
        let back = ShardedDocStore::open(&dir).unwrap();
        assert_eq!(back.durable_seq(), 1);
        assert_consistent(&back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn relabeled_hot_shard_persists_alone() {
        let dir = tmpdir("relabel");
        let mut store =
            ShardedDocStore::create(&dir, "d", sample_tree(), 8, ShardPolicy::at_depth(1)).unwrap();
        let hot = *store.live_shards().last().unwrap();
        store.relabel_shard(hot).unwrap();
        store.checkpoint().unwrap();
        let files = shard_files(&dir);
        for (who, epoch) in &files {
            let expected = if who == "skel" || *who == hot.0.to_string() { 2 } else { 1 };
            assert_eq!(*epoch, expected, "file {who}");
        }
        drop(store);
        assert_consistent(&ShardedDocStore::open(&dir).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn split_topology_survives_reopen() {
        let dir = tmpdir("split");
        let policy = ShardPolicy { cut_depth: 1, max_shard_nodes: 4 };
        let mut store = ShardedDocStore::create(&dir, "d", sample_tree(), 8, policy).unwrap();
        let start = store.live_shards().len();
        // Grow one subtree past the bound so maintain_shards splits it.
        for _ in 0..4 {
            let anchor = nth_element(store.labeled().tree(), 3);
            store
                .apply_batch(&[Mutation::InsertSubtree {
                    pos: InsertPos::LastChildOf(anchor),
                    xml: "<g><h/><h/></g>".into(),
                }])
                .unwrap();
        }
        let grown = store.live_shards();
        assert!(grown.len() > start, "growth must have split a shard");
        store.checkpoint().unwrap();
        let snap = store.labeled().tree().snapshot();
        drop(store);

        let back = ShardedDocStore::open(&dir).unwrap();
        assert_eq!(back.live_shards(), grown);
        assert_eq!(back.labeled().tree().snapshot(), snap);
        assert_consistent(&back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn element_labels(
        store: &ShardedDocStore,
    ) -> Vec<Option<xp_labelkit::ShardedLabel<xp_prime::PrimeLabel>>> {
        store
            .labeled()
            .tree()
            .elements()
            .map(|n| store.labeled().doc().get(n).cloned())
            .collect()
    }

    /// The durability hole the immediate relabel checkpoint closes:
    /// mutations WAL-logged *after* a relabel replay on recovery against
    /// whatever labels are durable. The relabel must therefore be durable
    /// before `relabel_shard` returns, so a crash at any later point
    /// recovers labels byte-identical to the live process.
    #[test]
    fn wal_frames_after_a_relabel_replay_against_the_relabeled_labels() {
        let dir = tmpdir("relabel-replay");
        let mut store =
            ShardedDocStore::create(&dir, "d", sample_tree(), 8, ShardPolicy::at_depth(1)).unwrap();
        // Chew through the hot shard's label gaps so the relabel actually
        // reassigns, then relabel (durable immediately, not WAL-logged).
        let anchor = nth_element(store.labeled().tree(), 3);
        for _ in 0..6 {
            store.apply_batch(&[Mutation::InsertBefore { anchor, tag: "pad".into() }]).unwrap();
        }
        let hot = store.labeled().state().shard_of_node(anchor).unwrap();
        store.relabel_shard(hot).unwrap();
        assert_eq!(
            store.durable_seq(),
            store.seq(),
            "the relabel checkpoint must fold the WAL into the manifest"
        );

        // Mutations *after* the relabel hand out labels that depend on the
        // relabeled state; they stay WAL-only (no further checkpoint).
        store
            .apply_batch(&[
                Mutation::InsertBefore { anchor, tag: "neu".into() },
                Mutation::InsertSubtree {
                    pos: InsertPos::LastChildOf(anchor),
                    xml: "<x><y/></x>".into(),
                },
            ])
            .unwrap();
        let live_labels = element_labels(&store);
        let live_snap = store.labeled().tree().snapshot();
        drop(store);

        let back = ShardedDocStore::open(&dir).unwrap();
        assert_eq!(back.labeled().tree().snapshot(), live_snap);
        assert_eq!(
            element_labels(&back),
            live_labels,
            "replayed labels must be byte-identical to the live process"
        );
        assert_consistent(&back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A crash *during* the relabel's immediate checkpoint must land on a
    /// byte-identical fixed point: either the pre-relabel labels (manifest
    /// swap never committed) or the post-relabel labels (it did).
    #[test]
    fn a_crash_during_the_relabel_checkpoint_reopens_byte_identical() {
        use xp_testkit::fault;
        // The deterministic post-relabel oracle: the same store, same
        // history, relabeled without a fault.
        let post_labels = {
            let dir = tmpdir("relabel-crash-oracle");
            let mut store =
                ShardedDocStore::create(&dir, "d", sample_tree(), 8, ShardPolicy::at_depth(1))
                    .unwrap();
            let anchor = nth_element(store.labeled().tree(), 3);
            for _ in 0..6 {
                store.apply_batch(&[Mutation::InsertBefore { anchor, tag: "pad".into() }]).unwrap();
            }
            let hot = store.labeled().state().shard_of_node(anchor).unwrap();
            store.relabel_shard(hot).unwrap();
            let labels = element_labels(&store);
            let _ = std::fs::remove_dir_all(&dir);
            labels
        };

        let sites = [
            "store.checkpoint.write:1",
            "store.checkpoint.write:1:torn",
            "store.checkpoint.write:2",
            "store.checkpoint.write:2:torn",
            "store.manifest.swap:1",
            "store.manifest.swap:1:torn",
        ];
        for (i, site) in sites.iter().enumerate() {
            let dir = tmpdir(&format!("relabel-crash{i}"));
            fault::reset();
            let mut store =
                ShardedDocStore::create(&dir, "d", sample_tree(), 8, ShardPolicy::at_depth(1))
                    .unwrap();
            let anchor = nth_element(store.labeled().tree(), 3);
            for _ in 0..6 {
                store.apply_batch(&[Mutation::InsertBefore { anchor, tag: "pad".into() }]).unwrap();
            }
            store.checkpoint().unwrap();
            let pre_labels = element_labels(&store);
            let pre_snap = store.labeled().tree().snapshot();
            let hot = store.labeled().state().shard_of_node(anchor).unwrap();

            fault::arm(site);
            let res = store.relabel_shard(hot);
            fault::reset();
            assert!(res.is_err(), "{site}: the armed fault must surface");
            drop(store);

            let back = ShardedDocStore::open(&dir)
                .unwrap_or_else(|e| panic!("{site}: reopen failed: {e}"));
            assert_eq!(back.labeled().tree().snapshot(), pre_snap, "{site}: document changed");
            let got = element_labels(&back);
            assert!(
                got == pre_labels || got == post_labels,
                "{site}: recovered labels are neither the pre- nor the post-relabel fixed point"
            );
            assert_consistent(&back);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn every_fault_site_leaves_the_store_recoverable() {
        use xp_testkit::fault;
        let sites = [
            "store.wal.append:1",
            "store.wal.append:1:torn",
            "store.wal.fsync:1",
            "store.checkpoint.write:1",
            "store.checkpoint.write:2:torn",
            "store.manifest.swap:1",
            "store.manifest.swap:1:torn",
        ];
        for (i, site) in sites.iter().enumerate() {
            let dir = tmpdir(&format!("fault{i}"));
            fault::reset();
            let mut store =
                ShardedDocStore::create(&dir, "d", sample_tree(), 8, ShardPolicy::at_depth(1))
                    .unwrap();
            let pre = store.labeled().tree().snapshot();
            let anchor = nth_element(store.labeled().tree(), 3);
            let mutation = Mutation::InsertBefore { anchor, tag: "f".into() };
            // The document as it would look with the batch applied — an
            // fsync-site fault leaves the frame durable even though the
            // caller saw an error, so recovery may land on either side.
            let post = {
                let mut oracle = LabeledStore::build(
                    DynamicPrime::new(8),
                    store.labeled().tree().clone(),
                )
                .unwrap();
                oracle.apply(&mutation).unwrap();
                oracle.tree().snapshot()
            };
            fault::arm(site);
            let batch = store.apply_batch(std::slice::from_ref(&mutation));
            let ckpt = store.checkpoint();
            fault::reset();
            assert!(batch.is_err() || ckpt.is_err(), "{site}: a fault must surface");
            drop(store);

            let back = ShardedDocStore::open(&dir)
                .unwrap_or_else(|e| panic!("{site}: reopen failed: {e}"));
            let got = back.labeled().tree().snapshot();
            assert!(
                got == pre || got == post,
                "{site}: recovered tree is neither the pre- nor the post-batch document"
            );
            assert_consistent(&back);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
