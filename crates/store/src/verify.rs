//! Consistency checks over the recovered quadruple (document tree, labels,
//! SC table, label table) — what fsck and every crash test assert.

use xp_labelkit::dynamic::LabeledStore;
use xp_prime::{DynamicPrime, PrimeLabel};
use xp_query::LabelTable;
use xp_xmltree::NodeId;

/// Checks one document's internal consistency:
///
/// 1. no open recovery journal,
/// 2. the tree arena re-validates as a snapshot,
/// 3. the store mirror holds exactly the attached elements and agrees
///    label-for-label with the scheme state,
/// 4. the SC table's cached columns re-solve to their CRT solutions,
/// 5. scheme document order equals tree preorder,
/// 6. the relational label table covers exactly the labeled nodes with the
///    current labels.
pub fn check_doc(
    store: &LabeledStore<DynamicPrime>,
    table: &LabelTable<PrimeLabel>,
) -> Result<(), String> {
    if store.needs_recovery() {
        return Err("state carries an open recovery journal".into());
    }
    let tree = store.tree();
    xp_xmltree::XmlTree::from_snapshot(&tree.snapshot())
        .map_err(|e| format!("tree arena fails validation: {e}"))?;
    let elements: Vec<NodeId> = tree.elements().collect();
    if store.doc().len() != elements.len() {
        return Err(format!(
            "mirror holds {} labels for {} attached elements",
            store.doc().len(),
            elements.len()
        ));
    }
    for &n in &elements {
        let mirrored = store
            .doc()
            .get(n)
            .ok_or_else(|| format!("attached element {n} has no label"))?;
        let state_label = store
            .state()
            .labels()
            .get(n)
            .ok_or_else(|| format!("scheme state lost the label of {n}"))?;
        if mirrored != state_label {
            return Err(format!("mirror and scheme state disagree on {n}"));
        }
    }
    store
        .state()
        .sc_table()
        .check_cached_columns()
        .map_err(|e| format!("SC cached columns corrupt: {e}"))?;
    let ordered = store
        .try_ordered_nodes()
        .map_err(|e| format!("order oracle refused: {e}"))?;
    if ordered != elements {
        return Err("scheme document order diverges from tree preorder".into());
    }
    if table.len() != elements.len() {
        return Err(format!(
            "label table holds {} rows for {} elements",
            table.len(),
            elements.len()
        ));
    }
    for &n in &elements {
        if table.label(n) != store.doc().label(n) {
            return Err(format!("label table row of {n} is stale"));
        }
    }
    Ok(())
}

/// Checks that two documents are logically byte-identical: same arena
/// (slot for slot), same labels in the same labeling order, same SC table
/// bytes, same allocator high-water mark, same document order. This is the
/// crash harness's oracle comparison — a store reopened after a kill must
/// pass this against a never-crashed twin.
pub fn equivalent(
    a: &LabeledStore<DynamicPrime>,
    b: &LabeledStore<DynamicPrime>,
) -> Result<(), String> {
    if a.tree().snapshot() != b.tree().snapshot() {
        return Err("tree arenas differ".into());
    }
    let la: Vec<(NodeId, &PrimeLabel)> = a.doc().iter().collect();
    let lb: Vec<(NodeId, &PrimeLabel)> = b.doc().iter().collect();
    if la != lb {
        return Err("labels (or labeling order) differ".into());
    }
    if a.state().sc_table().encode() != b.state().sc_table().encode() {
        return Err("SC tables differ".into());
    }
    if a.state().primes_handed_out() != b.state().primes_handed_out() {
        return Err("prime allocator high-water marks differ".into());
    }
    if a.ordered_nodes() != b.ordered_nodes() {
        return Err("document orders differ".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::InsertPos;

    fn sample() -> (LabeledStore<DynamicPrime>, LabelTable<PrimeLabel>) {
        let tree = xp_xmltree::parse("<r><a><b/></a><c/><d/></r>").unwrap();
        let store = LabeledStore::build(DynamicPrime::new(8), tree).unwrap();
        let table = LabelTable::build(store.tree(), store.doc());
        (store, table)
    }

    #[test]
    fn fresh_store_checks_out() {
        let (store, table) = sample();
        check_doc(&store, &table).unwrap();
        equivalent(&store, &store).unwrap();
    }

    #[test]
    fn mutated_twin_is_not_equivalent() {
        let (a, _) = sample();
        let (mut b, _) = sample();
        let anchor = b.tree().first_child(b.tree().root()).unwrap();
        b.insert_before(anchor, "new").unwrap();
        assert!(equivalent(&a, &b).is_err());
    }

    #[test]
    fn stale_table_is_caught() {
        let (mut store, table) = sample();
        let anchor = store.tree().first_child(store.tree().root()).unwrap();
        store.insert_before(anchor, "new").unwrap();
        let err = check_doc(&store, &table).unwrap_err();
        assert!(err.contains("label table"), "{err}");
        // Rebuilt table passes again.
        let fresh = LabelTable::build(store.tree(), store.doc());
        check_doc(&store, &fresh).unwrap();
    }

    #[test]
    fn patched_table_stays_consistent() {
        let (mut store, mut table) = sample();
        let anchor = store.tree().first_child(store.tree().root()).unwrap();
        let report = store.insert_before(anchor, "new").unwrap();
        table.apply_report(store.tree(), store.doc(), &report);
        check_doc(&store, &table).unwrap();
        let target = store.tree().last_child(store.tree().root()).unwrap();
        let report = store.delete(target).unwrap();
        table.apply_report(store.tree(), store.doc(), &report);
        check_doc(&store, &table).unwrap();
        let frag = xp_xmltree::parse("<x><y/></x>").unwrap();
        let pos = InsertPos::LastChildOf(store.tree().root());
        let report = store.insert_subtree(pos, &frag).unwrap();
        table.apply_report(store.tree(), store.doc(), &report);
        check_doc(&store, &table).unwrap();
    }
}
