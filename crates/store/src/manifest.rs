//! The checkpoint manifest: the single source of truth for which segment of
//! each document is current.
//!
//! One file, `MANIFEST`, holding one checksummed frame. Each document entry
//! carries its URI, numeric id, checkpoint **epoch** (bumped every time a
//! fresh segment is written; the segment file name embeds it) and durable
//! **seq** (how many WAL frames for that document the segment already
//! folds in — replay skips frames at or below it).
//!
//! Updates use the classic atomic-swap protocol: write `MANIFEST.tmp`,
//! fsync it, `rename` over `MANIFEST`, fsync the directory. A crash at any
//! point leaves either the old or the new manifest intact — never a mix —
//! because rename is atomic on POSIX filesystems. Stale `.tmp` files and
//! segments no manifest entry references are garbage-collected on open
//! (but **not** by read-only fsck).
//!
//! Fault site `store.manifest.swap` fires at the head of the swap: `torn`
//! and `abort` modes persist half of the tmp file (exercising tmp GC; the
//! live manifest is untouched), `error` writes nothing.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::{io_err, StoreError};
use crate::frame::{decode_single_frame, encode_frame};
use xp_labelkit::codec::{read_bytes, read_varint, write_bytes, write_varint};
use xp_testkit::FaultMode;

/// Name of the manifest file inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Name of the swap staging file.
pub const MANIFEST_TMP: &str = "MANIFEST.tmp";

const MAGIC: &[u8; 8] = b"XPMAN01\n";

/// One document's checkpoint coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Document URI — the user-facing key.
    pub uri: String,
    /// Stable numeric id; embeds into segment file names and WAL frames.
    pub doc_id: u64,
    /// Checkpoint epoch: which `seg-{doc_id}-e{epoch}.dat` is current.
    pub epoch: u64,
    /// WAL sequence folded into that segment; frames with `seq` at or
    /// below this are already durable in the segment and replay skips them.
    pub seq: u64,
}

/// The decoded manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Next document id `add_document` will assign.
    pub next_doc_id: u64,
    /// One entry per document, in id order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Serializes to the single-frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, self.next_doc_id);
        write_varint(&mut out, self.entries.len() as u64);
        for e in &self.entries {
            write_bytes(&mut out, e.uri.as_bytes());
            write_varint(&mut out, e.doc_id);
            write_varint(&mut out, e.epoch);
            write_varint(&mut out, e.seq);
        }
        out
    }

    /// Parses a single-frame payload.
    pub fn decode(payload: &[u8]) -> Result<Manifest, StoreError> {
        let path = PathBuf::from(MANIFEST_FILE);
        if payload.len() < MAGIC.len() || &payload[..MAGIC.len()] != MAGIC {
            return Err(StoreError::Corrupt { path, what: "bad manifest magic".into() });
        }
        let mut input = &payload[MAGIC.len()..];
        let next_doc_id = read_varint(&mut input)?;
        let count = read_varint(&mut input)?;
        let mut entries = Vec::new();
        for _ in 0..count {
            let uri = std::str::from_utf8(read_bytes(&mut input)?)
                .map_err(|_| StoreError::Corrupt {
                    path: path.clone(),
                    what: "manifest URI is not UTF-8".into(),
                })?
                .to_owned();
            let doc_id = read_varint(&mut input)?;
            let epoch = read_varint(&mut input)?;
            let seq = read_varint(&mut input)?;
            entries.push(ManifestEntry { uri, doc_id, epoch, seq });
        }
        if !input.is_empty() {
            return Err(StoreError::Corrupt { path, what: "trailing manifest bytes".into() });
        }
        Ok(Manifest { next_doc_id, entries })
    }

    /// Loads and verifies the manifest from a store directory. A missing
    /// file yields `NotAStore` — it is what distinguishes a store from an
    /// arbitrary directory.
    pub fn load(dir: &Path) -> Result<Manifest, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotAStore(dir.to_path_buf()));
            }
            Err(e) => return Err(io_err("read", &path, e)),
        };
        let payload = decode_single_frame(&bytes)
            .map_err(|what| StoreError::Corrupt { path: path.clone(), what: what.into() })?;
        Manifest::decode(payload)
    }

    /// Atomically replaces the on-disk manifest with `self` (tmp + fsync +
    /// rename + directory fsync).
    pub fn swap(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join(MANIFEST_TMP);
        let dst = dir.join(MANIFEST_FILE);
        let payload = self.encode();
        crate::error::ensure_frameable(payload.len())?;
        let frame = encode_frame(&payload);
        if let Err(inj) = xp_testkit::faultpoint!("store.manifest.swap") {
            match inj.mode {
                FaultMode::Torn | FaultMode::Abort => {
                    // Half-written tmp: the live manifest is untouched and
                    // open() garbage-collects the staging file.
                    let half = frame.len() / 2;
                    let _ = std::fs::write(&tmp, &frame[..half]);
                    if inj.mode == FaultMode::Abort {
                        std::process::abort();
                    }
                }
                FaultMode::Error | FaultMode::Short => {}
            }
            return Err(StoreError::Io {
                op: "rename",
                path: dst,
                msg: format!("{inj}"),
            });
        }
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        f.write_all(&frame).map_err(|e| io_err("write", &tmp, e))?;
        f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
        drop(f);
        std::fs::rename(&tmp, &dst).map_err(|e| io_err("rename", &dst, e))?;
        sync_dir(dir)
    }

    /// The entry for `doc_id`, if present.
    pub fn entry(&self, doc_id: u64) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.doc_id == doc_id)
    }

    /// Inserts or replaces the entry for `entry.doc_id`, keeping id order.
    pub fn upsert(&mut self, entry: ManifestEntry) {
        match self.entries.iter_mut().find(|e| e.doc_id == entry.doc_id) {
            Some(slot) => *slot = entry,
            None => {
                self.entries.push(entry);
                self.entries.sort_by_key(|e| e.doc_id);
            }
        }
    }
}

/// Fsyncs a directory so a rename within it is durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    let d = std::fs::File::open(dir).map_err(|e| io_err("open", dir, e))?;
    d.sync_all().map_err(|e| io_err("fsync", dir, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_testkit::fault;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xp-store-man-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Manifest {
        Manifest {
            next_doc_id: 3,
            entries: vec![
                ManifestEntry { uri: "a.xml".into(), doc_id: 1, epoch: 4, seq: 17 },
                ManifestEntry { uri: "b.xml".into(), doc_id: 2, epoch: 1, seq: 0 },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn swap_then_load() {
        let dir = tmpdir("swap");
        let m = sample();
        m.swap(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        // A second swap replaces atomically.
        let mut m2 = m.clone();
        m2.upsert(ManifestEntry { uri: "a.xml".into(), doc_id: 1, epoch: 5, seq: 30 });
        m2.swap(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap().entry(1).unwrap().epoch, 5);
        assert!(!dir.join(MANIFEST_TMP).exists(), "tmp cleaned by rename");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_not_a_store() {
        let dir = tmpdir("missing");
        assert!(matches!(Manifest::load(&dir), Err(StoreError::NotAStore(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_reported() {
        let dir = tmpdir("corrupt");
        sample().swap(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Manifest::load(&dir), Err(StoreError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_swap_preserves_old_manifest() {
        let dir = tmpdir("torn");
        fault::reset();
        let m = sample();
        m.swap(&dir).unwrap();
        let mut m2 = m.clone();
        m2.next_doc_id = 99;
        fault::arm("store.manifest.swap:1:torn");
        assert!(m2.swap(&dir).is_err());
        fault::reset();
        // Old manifest intact, half-written tmp present for GC.
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        assert!(dir.join(MANIFEST_TMP).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_swap_writes_nothing() {
        let dir = tmpdir("noop");
        fault::reset();
        let m = sample();
        m.swap(&dir).unwrap();
        fault::arm("store.manifest.swap:1");
        assert!(m.swap(&dir).is_err());
        fault::reset();
        assert!(!dir.join(MANIFEST_TMP).exists());
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn upsert_keeps_id_order() {
        let mut m = Manifest::default();
        m.upsert(ManifestEntry { uri: "b".into(), doc_id: 2, epoch: 1, seq: 0 });
        m.upsert(ManifestEntry { uri: "a".into(), doc_id: 1, epoch: 1, seq: 0 });
        assert_eq!(m.entries[0].doc_id, 1);
        assert_eq!(m.entries[1].doc_id, 2);
    }
}
