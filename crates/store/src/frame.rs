//! Checksummed length-prefixed frames — the atom of every on-disk file.
//!
//! Layout (DESIGN.md §11): `[len: u32 le][crc: u32 le][payload: len bytes]`,
//! where `crc` is the CRC-32 (IEEE/ISO-HDLC polynomial, the zlib/PNG one)
//! of the payload. A file is a concatenation of frames; any suffix that
//! fails the length or checksum check is a *torn tail* — the signature a
//! crash mid-write leaves — and decoding reports exactly where the valid
//! prefix ends so recovery can discard the rest.

/// Bytes of frame header preceding each payload.
pub const FRAME_HEADER: usize = 8;

/// Largest payload a frame can carry: the length field is a `u32`, so
/// anything longer cannot be framed. Writers must reject oversized payloads
/// *before* encoding — a silent `as u32` truncation would emit a frame whose
/// CRC covers the wrong byte span, which recovery would then misread as a
/// torn tail followed by garbage.
pub const MAX_FRAME_PAYLOAD: usize = u32::MAX as usize;

/// `true` iff a payload of `len` bytes fits the frame length field. This is
/// the guard every write path checks before calling [`encode_frame`].
pub const fn payload_fits(len: usize) -> bool {
    len <= MAX_FRAME_PAYLOAD
}

/// CRC-32 (IEEE 802.3 polynomial, reflected: 0xEDB88320), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: [u32; 256] = build_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Wraps `payload` in one frame. The payload must satisfy
/// [`payload_fits`]; callers (WAL append, segment write, manifest swap)
/// reject oversized payloads with a typed error before reaching this point.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload_fits(payload.len()), "oversized payload must be rejected upstream");
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of scanning a byte stream as consecutive frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameScan<'a> {
    /// Every frame payload whose length and checksum verified, in order.
    pub frames: Vec<&'a [u8]>,
    /// Length of the valid prefix (offset where the torn tail, if any,
    /// begins). Equal to the input length iff the stream is clean.
    pub valid_len: usize,
}

impl FrameScan<'_> {
    /// `true` iff the stream ended exactly on a frame boundary.
    pub fn is_clean(&self, total_len: usize) -> bool {
        self.valid_len == total_len
    }
}

/// Scans `bytes` as consecutive frames, stopping at the first frame whose
/// header is incomplete, whose declared payload runs past the end, or whose
/// checksum fails — the three shapes a torn write can leave.
pub fn decode_frames(bytes: &[u8]) -> FrameScan<'_> {
    let mut frames = Vec::new();
    let mut off = 0usize;
    while bytes.len() - off >= FRAME_HEADER {
        let len = u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
            as usize;
        let crc =
            u32::from_le_bytes([bytes[off + 4], bytes[off + 5], bytes[off + 6], bytes[off + 7]]);
        let start = off + FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            break; // truncated payload
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break; // torn or corrupted mid-frame
        }
        frames.push(payload);
        off = end;
    }
    FrameScan { frames, valid_len: off }
}

/// Decodes a file that must consist of exactly one clean frame (manifests
/// and segments), returning its payload.
pub fn decode_single_frame(bytes: &[u8]) -> Result<&[u8], &'static str> {
    let scan = decode_frames(bytes);
    if !scan.is_clean(bytes.len()) {
        return Err("torn or corrupt frame");
    }
    match scan.frames.as_slice() {
        [one] => Ok(one),
        [] => Err("empty file"),
        _ => Err("expected exactly one frame"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut stream = Vec::new();
        let payloads: &[&[u8]] = &[b"first", b"", b"third frame with more bytes"];
        for p in payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let scan = decode_frames(&stream);
        assert!(scan.is_clean(stream.len()));
        assert_eq!(scan.frames, payloads);
    }

    #[test]
    fn every_truncation_point_yields_a_valid_prefix() {
        let mut stream = Vec::new();
        for p in [&b"alpha"[..], b"beta", b"gamma-gamma"] {
            stream.extend_from_slice(&encode_frame(p));
        }
        for cut in 0..=stream.len() {
            let scan = decode_frames(&stream[..cut]);
            // The valid prefix must itself rescan cleanly to the same frames.
            let again = decode_frames(&stream[..scan.valid_len]);
            assert!(again.is_clean(scan.valid_len));
            assert_eq!(again.frames, scan.frames);
            assert!(scan.valid_len <= cut);
        }
        // Full stream decodes all three.
        assert_eq!(decode_frames(&stream).frames.len(), 3);
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let mut stream = encode_frame(b"good");
        let tail_at = stream.len();
        stream.extend_from_slice(&encode_frame(b"bad"));
        stream[tail_at + FRAME_HEADER] ^= 0x40; // flip a payload bit
        let scan = decode_frames(&stream);
        assert_eq!(scan.frames, vec![&b"good"[..]]);
        assert_eq!(scan.valid_len, tail_at);
    }

    #[test]
    fn absurd_length_is_a_torn_tail_not_a_panic() {
        let mut stream = encode_frame(b"ok");
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.extend_from_slice(&[0u8; 20]);
        let scan = decode_frames(&stream);
        assert_eq!(scan.frames.len(), 1);
    }

    #[test]
    fn payload_size_boundary() {
        // The exact boundary: u32::MAX bytes is the largest frameable
        // payload; one more byte cannot be expressed by the length field.
        assert!(payload_fits(MAX_FRAME_PAYLOAD));
        assert!(payload_fits(0));
        // On 64-bit targets the +1 case is representable as a usize and
        // must be rejected — this is the silent-`as u32`-truncation bug.
        if let Some(over) = MAX_FRAME_PAYLOAD.checked_add(1) {
            assert!(!payload_fits(over));
        }
        // And the frame a truncating cast *would* have produced really does
        // describe the wrong byte span: (u32::MAX as u64 + 1) as u32 == 0.
        assert_eq!((MAX_FRAME_PAYLOAD as u64 + 1) as u32, 0);
    }

    #[test]
    fn single_frame_decoder() {
        let f = encode_frame(b"payload");
        assert_eq!(decode_single_frame(&f), Ok(&b"payload"[..]));
        assert!(decode_single_frame(&f[..f.len() - 1]).is_err());
        let mut two = f.clone();
        two.extend_from_slice(&encode_frame(b"second"));
        assert!(decode_single_frame(&two).is_err());
        assert!(decode_single_frame(b"").is_err());
    }
}
