//! The store's error type: every failure a disk-backed open/apply/checkpoint
//! can hit, including injected ones.

use std::fmt;
use std::path::PathBuf;
use xp_labelkit::dynamic::DynamicError;
use xp_labelkit::CodecError;
use xp_testkit::Injected;
use xp_xmltree::SnapshotError;

/// Any failure of the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure (or an injected one at an I/O site).
    Io {
        /// What the store was doing (`"read"`, `"write"`, `"fsync"`,
        /// `"rename"`, `"create"`, ...).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error text.
        msg: String,
    },
    /// On-disk bytes failed a checksum or structural check. Recovery never
    /// guesses: corrupt non-tail data is reported, not repaired.
    Corrupt {
        /// The file that failed.
        path: PathBuf,
        /// What about it is wrong.
        what: String,
    },
    /// A payload was too large to frame: the frame length field is a `u32`,
    /// and encoding anything longer would silently truncate the length and
    /// checksum the wrong byte span. Writers reject this before touching
    /// the disk, so the on-disk state is unchanged.
    FrameTooLarge {
        /// The oversized payload's length in bytes.
        len: u64,
        /// The largest frameable payload
        /// ([`crate::frame::MAX_FRAME_PAYLOAD`]).
        max: u64,
    },
    /// A frame payload failed to decode (varint/label/mutation codec).
    Codec(CodecError),
    /// A persisted tree snapshot failed arena validation.
    Snapshot(SnapshotError),
    /// The prime scheme rejected reassembled parts (labels and SC table
    /// disagree, unknown self-labels, ...).
    Scheme(xp_prime::Error),
    /// A live mutation failed in the labeling scheme; the WAL frame is
    /// already durable, and replay will fail it identically.
    Dynamic(DynamicError),
    /// `add_document` was given a URI the store already holds.
    DuplicateUri(String),
    /// An operation named a URI the store does not hold.
    UnknownUri(String),
    /// The directory exists but does not look like a store (no manifest).
    NotAStore(PathBuf),
    /// A non-I/O fault site fired ([`xp_testkit::fault`]).
    FaultInjected(Injected),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, msg } => {
                write!(f, "{op} failed on {}: {msg}", path.display())
            }
            StoreError::Corrupt { path, what } => {
                write!(f, "{} is corrupt: {what}", path.display())
            }
            StoreError::FrameTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds the frame limit of {max} bytes")
            }
            StoreError::Codec(e) => write!(f, "frame payload failed to decode: {e}"),
            StoreError::Snapshot(e) => write!(f, "persisted tree snapshot is invalid: {e}"),
            StoreError::Scheme(e) => write!(f, "persisted label state is inconsistent: {e}"),
            StoreError::Dynamic(e) => write!(f, "mutation failed: {e}"),
            StoreError::DuplicateUri(uri) => write!(f, "store already holds document `{uri}`"),
            StoreError::UnknownUri(uri) => write!(f, "store holds no document `{uri}`"),
            StoreError::NotAStore(p) => {
                write!(f, "{} is not a label store (no manifest)", p.display())
            }
            StoreError::FaultInjected(i) => write!(f, "{i}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Codec(e) => Some(e),
            StoreError::Snapshot(e) => Some(e),
            StoreError::Scheme(e) => Some(e),
            StoreError::Dynamic(e) => Some(e),
            StoreError::FaultInjected(i) => Some(i),
            _ => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Snapshot(e)
    }
}

impl From<xp_prime::Error> for StoreError {
    fn from(e: xp_prime::Error) -> Self {
        StoreError::Scheme(e)
    }
}

impl From<DynamicError> for StoreError {
    fn from(e: DynamicError) -> Self {
        StoreError::Dynamic(e)
    }
}

impl From<Injected> for StoreError {
    fn from(i: Injected) -> Self {
        StoreError::FaultInjected(i)
    }
}

/// The guard every frame-writing path runs before encoding: payloads the
/// `u32` length field cannot express are rejected with a typed error while
/// the disk is still untouched.
pub(crate) fn ensure_frameable(len: usize) -> Result<(), StoreError> {
    if crate::frame::payload_fits(len) {
        Ok(())
    } else {
        Err(StoreError::FrameTooLarge {
            len: len as u64,
            max: crate::frame::MAX_FRAME_PAYLOAD as u64,
        })
    }
}

/// Shorthand for wrapping a [`std::io::Error`] with its operation and path.
pub(crate) fn io_err(
    op: &'static str,
    path: &std::path::Path,
    e: std::io::Error,
) -> StoreError {
    StoreError::Io { op, path: path.to_path_buf(), msg: e.to_string() }
}
