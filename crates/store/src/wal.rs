//! The write-ahead log: one frame per durable mutation, append-only.
//!
//! Every [`Mutation`](xp_labelkit::Mutation) a [`Store`](crate::Store)
//! applies is framed ([`crate::frame`]) and appended here *before* any
//! in-memory state changes — write-ahead in the classic sense. A crash can
//! therefore leave at most one torn frame at the tail, which recovery
//! detects by checksum and discards; every complete frame prefix replays to
//! a consistent store.
//!
//! Fault sites (see `xp_testkit::fault`):
//!
//! * `store.wal.append` — fires before/during the frame write. `torn` mode
//!   persists half the frame then errors; `abort` persists half then kills
//!   the process; `error` leaves the file untouched.
//! * `store.wal.fsync` — fires after the frame is fully written. The frame
//!   may already be durable, so the caller's in-memory state legitimately
//!   lags the disk by one mutation; recovery tests accept either prefix.
//! * `store.wal.read` — fires on the recovery read path. `short` mode
//!   models a read that returned fewer bytes than the file holds; it is a
//!   typed error, **not** a silent tail truncation — truncating on a short
//!   read would discard durable frames.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::error::{ensure_frameable, io_err, StoreError};
use crate::frame::{decode_frames, encode_frame};
use xp_testkit::FaultMode;

/// Name of the log file inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// An open append handle on the log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Data syncs issued since open — the group-commit bench gate divides
    /// this by mutations applied to prove batching amortizes the fsync.
    fsyncs: u64,
}

/// What a (recovery-time) scan of the log found.
#[derive(Debug)]
pub struct WalScan {
    /// Every complete, checksum-verified frame payload, in append order.
    pub frames: Vec<Vec<u8>>,
    /// Length of the valid prefix.
    pub valid_len: u64,
    /// Total file length; `> valid_len` iff the tail is torn.
    pub total_len: u64,
}

impl WalScan {
    /// Bytes of torn tail after the last complete frame.
    pub fn torn_bytes(&self) -> u64 {
        self.total_len - self.valid_len
    }
}

/// Reads and scans the log without modifying it (the fsck path — a missing
/// file scans as empty, matching a store that never logged a mutation).
pub fn scan(dir: &Path) -> Result<WalScan, StoreError> {
    let path = dir.join(WAL_FILE);
    let bytes = read_all(&path)?;
    let scanned = decode_frames(&bytes);
    Ok(WalScan {
        frames: scanned.frames.iter().map(|f| f.to_vec()).collect(),
        valid_len: scanned.valid_len as u64,
        total_len: bytes.len() as u64,
    })
}

fn read_all(path: &Path) -> Result<Vec<u8>, StoreError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("read", path, e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(|e| io_err("read", path, e))?;
    // A short read delivers fewer bytes than the file holds; surfacing it as
    // a typed error (rather than scanning the partial buffer) is what keeps
    // durable frames from being mistaken for a torn tail and truncated.
    if let Err(inj) = xp_testkit::faultpoint!("store.wal.read") {
        let what = match inj.mode {
            FaultMode::Short => "short read (fewer bytes than the file holds)",
            _ => "injected read failure",
        };
        return Err(StoreError::Io { op: "read", path: path.to_path_buf(), msg: what.into() });
    }
    Ok(bytes)
}

impl Wal {
    /// Opens the log for recovery + append: scans it, truncates any torn
    /// tail (the only bytes recovery ever discards), and returns the handle
    /// together with every complete frame.
    pub fn open(dir: &Path) -> Result<(Wal, WalScan), StoreError> {
        let path = dir.join(WAL_FILE);
        let bytes = read_all(&path)?;
        let scanned = decode_frames(&bytes);
        let scan = WalScan {
            frames: scanned.frames.iter().map(|f| f.to_vec()).collect(),
            valid_len: scanned.valid_len as u64,
            total_len: bytes.len() as u64,
        };
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        if scan.torn_bytes() > 0 {
            file.set_len(scan.valid_len).map_err(|e| io_err("truncate", &path, e))?;
            file.sync_data().map_err(|e| io_err("fsync", &path, e))?;
        }
        let mut wal = Wal { path, file, fsyncs: 0 };
        wal.seek_end()?;
        Ok((wal, scan))
    }

    fn seek_end(&mut self) -> Result<(), StoreError> {
        use std::io::Seek;
        self.file
            .seek(std::io::SeekFrom::End(0))
            .map(|_| ())
            .map_err(|e| io_err("seek", &self.path, e))
    }

    /// Appends one frame and syncs it to disk. On success the payload is
    /// durable. On an append-site fault the file holds either nothing new
    /// (`error`) or a torn tail (`torn`/`abort`); on an fsync-site fault the
    /// frame is fully written but possibly unsynced — the reopened store may
    /// contain this mutation even though the caller saw an error.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        self.append_batch(&[payload])
    }

    /// Group commit: appends every payload as its own frame, then issues
    /// **one** `fsync` for the whole batch. On success every payload is
    /// durable. Failure semantics match [`Wal::append`], applied to the
    /// batch as a unit: an append-site fault can leave a torn tail inside
    /// the batch (recovery keeps the complete-frame prefix), and an
    /// fsync-site fault leaves all frames written but possibly unsynced.
    pub fn append_batch<P: AsRef<[u8]>>(&mut self, payloads: &[P]) -> Result<(), StoreError> {
        if payloads.is_empty() {
            return Ok(());
        }
        for payload in payloads {
            ensure_frameable(payload.as_ref().len())?;
        }
        for payload in payloads {
            let frame = encode_frame(payload.as_ref());
            if let Err(inj) = xp_testkit::faultpoint!("store.wal.append") {
                return self.fail_write(&frame, inj, "store.wal.append");
            }
            self.file.write_all(&frame).map_err(|e| io_err("write", &self.path, e))?;
        }
        if let Err(inj) = xp_testkit::faultpoint!("store.wal.fsync") {
            if inj.mode == FaultMode::Abort {
                let _ = self.file.sync_data();
                std::process::abort();
            }
            return Err(StoreError::Io {
                op: "fsync",
                path: self.path.clone(),
                msg: format!("{inj}"),
            });
        }
        self.fsyncs += 1;
        self.file.sync_data().map_err(|e| io_err("fsync", &self.path, e))?;
        Ok(())
    }

    /// Data syncs issued through this handle since it was opened.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// The injected-failure half of [`Wal::append`]: leave the disk in the
    /// state the fault mode dictates, then error or die.
    fn fail_write(
        &mut self,
        frame: &[u8],
        inj: xp_testkit::Injected,
        site: &str,
    ) -> Result<(), StoreError> {
        match inj.mode {
            FaultMode::Torn | FaultMode::Abort => {
                // A torn write persists a strict prefix of the frame — the
                // checksum over the partial payload cannot verify, so
                // recovery sees it as the torn tail.
                let half = frame.len() / 2;
                let _ = self.file.write_all(&frame[..half]);
                let _ = self.file.sync_data();
                if inj.mode == FaultMode::Abort {
                    std::process::abort();
                }
                Err(StoreError::Io {
                    op: "write",
                    path: self.path.clone(),
                    msg: format!("injected torn write at {site}"),
                })
            }
            FaultMode::Error | FaultMode::Short => Err(StoreError::Io {
                op: "write",
                path: self.path.clone(),
                msg: format!("{inj}"),
            }),
        }
    }

    /// Discards the entire log. Only called once every document's durable
    /// checkpoint has caught up with the in-memory sequence — at that point
    /// no frame is needed for recovery.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.file.set_len(0).map_err(|e| io_err("truncate", &self.path, e))?;
        self.file.sync_data().map_err(|e| io_err("fsync", &self.path, e))?;
        self.seek_end()
    }

    /// Current log length in bytes.
    pub fn len(&self) -> Result<u64, StoreError> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| io_err("stat", &self.path, e))
    }

    /// `true` iff the log holds no frames.
    pub fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAME_HEADER;
    use xp_testkit::fault;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xp-store-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_reopen_reads_back() {
        let dir = tmpdir("roundtrip");
        {
            let (mut wal, scan) = Wal::open(&dir).unwrap();
            assert!(scan.frames.is_empty());
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
        }
        let (_, scan) = Wal::open(&dir).unwrap();
        assert_eq!(scan.frames, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(scan.torn_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_leaves_recoverable_prefix() {
        let dir = tmpdir("torn");
        fault::reset();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(b"durable").unwrap();
            fault::arm("store.wal.append:1:torn");
            let err = wal.append(b"lost-to-the-crash").unwrap_err();
            fault::reset();
            assert!(matches!(err, StoreError::Io { .. }), "{err}");
        }
        // The file now has a torn tail; reopening truncates it away.
        let before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        let (_, scan) = Wal::open(&dir).unwrap();
        assert_eq!(scan.frames, vec![b"durable".to_vec()]);
        assert!(scan.torn_bytes() > 0, "tail was torn");
        let after = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert!(after < before);
        assert_eq!(after, scan.valid_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_append_leaves_file_untouched() {
        let dir = tmpdir("error");
        fault::reset();
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(b"kept").unwrap();
        let len = wal.len().unwrap();
        fault::arm("store.wal.append:1");
        assert!(wal.append(b"never-written").is_err());
        fault::reset();
        assert_eq!(wal.len().unwrap(), len, "error mode writes nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_fault_leaves_frame_durable() {
        let dir = tmpdir("fsync");
        fault::reset();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            fault::arm("store.wal.fsync:1");
            let err = wal.append(b"maybe-durable").unwrap_err();
            fault::reset();
            assert!(matches!(err, StoreError::Io { op: "fsync", .. }));
        }
        // The frame was fully written before the (failed) sync: recovery
        // legitimately sees it.
        let (_, scan) = Wal::open(&dir).unwrap();
        assert_eq!(scan.frames, vec![b"maybe-durable".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_read_is_a_typed_error_not_truncation() {
        let dir = tmpdir("short");
        fault::reset();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(b"durable-frame").unwrap();
        }
        let len_before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        fault::arm("store.wal.read:1:short");
        let err = Wal::open(&dir).unwrap_err();
        fault::reset();
        assert!(matches!(err, StoreError::Io { op: "read", .. }), "{err}");
        // Crucially the durable frame was NOT truncated away.
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), len_before);
        let (_, scan) = Wal::open(&dir).unwrap();
        assert_eq!(scan.frames.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_append_costs_one_fsync() {
        let dir = tmpdir("batch");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append_batch(&[b"a".as_slice(), b"bb", b"ccc"]).unwrap();
            assert_eq!(wal.fsyncs(), 1, "the whole batch shares one sync");
            wal.append(b"d").unwrap();
            assert_eq!(wal.fsyncs(), 2);
            assert!(wal.append_batch::<&[u8]>(&[]).is_ok());
            assert_eq!(wal.fsyncs(), 2, "an empty batch syncs nothing");
        }
        let (_, scan) = Wal::open(&dir).unwrap();
        assert_eq!(
            scan.frames,
            vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec(), b"d".to_vec()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_batch_recovers_to_the_complete_frame_prefix() {
        let dir = tmpdir("batch-torn");
        fault::reset();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            fault::arm("store.wal.append:2:torn");
            let err = wal
                .append_batch(&[b"first-lands".as_slice(), b"second-tears", b"third-never"])
                .unwrap_err();
            fault::reset();
            assert!(matches!(err, StoreError::Io { .. }), "{err}");
        }
        let (_, scan) = Wal::open(&dir).unwrap();
        assert_eq!(scan.frames, vec![b"first-lands".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_empties_the_log() {
        let dir = tmpdir("truncate");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(b"a").unwrap();
        wal.truncate().unwrap();
        assert!(wal.is_empty().unwrap());
        wal.append(b"b").unwrap();
        let (_, scan) = Wal::open(&dir).unwrap();
        assert_eq!(scan.frames, vec![b"b".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_byte_prefix_of_a_log_recovers() {
        let dir = tmpdir("prefix");
        let mut payloads = Vec::new();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            for i in 0..5u32 {
                let p = format!("frame-{i}-{}", "x".repeat(i as usize * 3)).into_bytes();
                wal.append(&p).unwrap();
                payloads.push(p);
            }
        }
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let pdir = tmpdir("prefix-scratch");
        for cut in 0..=bytes.len() {
            std::fs::write(pdir.join(WAL_FILE), &bytes[..cut]).unwrap();
            let (_, scan) = Wal::open(&pdir).unwrap();
            // Frames recovered must be a prefix of the appended payloads.
            assert!(scan.frames.len() <= payloads.len());
            assert_eq!(scan.frames[..], payloads[..scan.frames.len()]);
            // And the number recovered only drops at frame boundaries.
            let mut complete = 0usize;
            let mut off = 0usize;
            for p in &payloads {
                off += FRAME_HEADER + p.len();
                if off <= cut {
                    complete += 1;
                }
            }
            assert_eq!(scan.frames.len(), complete, "cut at byte {cut}");
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&pdir);
    }
}
