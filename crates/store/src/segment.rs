//! Checkpoint segments: one file per (document, epoch) holding the full
//! label-table state in columnar form.
//!
//! A segment is a single checksummed frame whose payload lays the document
//! out column-wise (DESIGN.md §11): the exact tree arena (slot payloads,
//! then five link columns), an interned tag dictionary, then per labeled
//! row — in **labeling order**, so the reassembled [`LabeledDoc`] iterates
//! identically to the one that was checkpointed — a node-index column, a
//! tag-id column, a level column, a label-length column, and finally the
//! concatenated label bytes as one arena blob. The SC table's own encoding
//! closes the payload.
//!
//! The tag-id and level columns are *redundant* with the tree section: the
//! loader recomputes both and rejects the segment on any mismatch, so a
//! checkpoint whose columns drifted (bit rot the frame checksum happened to
//! miss, or a writer bug) is refused instead of mis-answering queries.
//!
//! Fault site `store.checkpoint.write` fires before the file write; `torn`
//! persists half the frame (an unreferenced, checksum-invalid file the next
//! open garbage-collects), `abort` does the same then kills the process.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::{io_err, StoreError};
use crate::frame::{decode_single_frame, encode_frame};
use xp_labelkit::codec::{read_bytes, read_varint, write_bytes, write_varint};
use xp_labelkit::{CodecError, LabelCodec, LabeledDoc};
use xp_prime::{PrimeLabel, ScTable};
use xp_testkit::FaultMode;
use xp_xmltree::{NodeKind, SlotSnapshot, TreeSnapshot, XmlTree};

const MAGIC: &[u8; 8] = b"XPSEG01\n";

const KIND_ELEMENT: u64 = 0;
const KIND_TEXT: u64 = 1;

/// A fully decoded checkpoint segment.
#[derive(Debug)]
pub struct Segment {
    /// Document URI (cross-checked against the manifest entry).
    pub uri: String,
    /// Document id (cross-checked against the file name and manifest).
    pub doc_id: u64,
    /// Checkpoint epoch this segment belongs to.
    pub epoch: u64,
    /// WAL sequence folded into this segment.
    pub seq: u64,
    /// SC chunk capacity the document was built with.
    pub chunk_capacity: u64,
    /// Prime-allocator high-water mark at checkpoint time.
    pub primes_handed_out: u64,
    /// The reassembled tree, arena-identical to the checkpointed one.
    pub tree: XmlTree,
    /// Per-node labels in the original labeling order.
    pub labels: LabeledDoc<PrimeLabel>,
    /// The decoded SC table.
    pub sc: ScTable,
}

/// The file name a (document, epoch) pair checkpoints to.
pub fn segment_file(doc_id: u64, epoch: u64) -> String {
    format!("seg-{doc_id}-e{epoch}.dat")
}

/// Parses `seg-{doc_id}-e{epoch}.dat` back into its coordinates.
pub fn parse_segment_file(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".dat")?;
    let (doc, epoch) = rest.split_once("-e")?;
    Some((doc.parse().ok()?, epoch.parse().ok()?))
}

fn write_opt(out: &mut Vec<u8>, link: Option<u32>) {
    write_varint(out, link.map_or(0, |n| u64::from(n) + 1));
}

fn read_opt(input: &mut &[u8]) -> Result<Option<u32>, CodecError> {
    match read_varint(input)? {
        0 => Ok(None),
        n => u32::try_from(n - 1)
            .map(Some)
            .map_err(|_| CodecError::Corrupt("arena link overflows u32")),
    }
}

fn read_str(input: &mut &[u8]) -> Result<String, CodecError> {
    std::str::from_utf8(read_bytes(input)?)
        .map(str::to_owned)
        .map_err(|_| CodecError::Corrupt("segment string is not UTF-8"))
}

/// Appends the columnar tree section (slot payloads, then the five link
/// columns) — the exact-arena encoding both whole-document segments and
/// the sharded store's skeleton / shadow records share.
pub(crate) fn encode_tree(out: &mut Vec<u8>, tree: &XmlTree) {
    let snap = tree.snapshot();
    write_varint(out, snap.slots.len() as u64);
    write_varint(out, u64::from(snap.root));
    for slot in &snap.slots {
        match &slot.kind {
            NodeKind::Element { tag, attrs } => {
                write_varint(out, KIND_ELEMENT);
                write_bytes(out, tag.as_bytes());
                write_varint(out, attrs.len() as u64);
                for (k, v) in attrs {
                    write_bytes(out, k.as_bytes());
                    write_bytes(out, v.as_bytes());
                }
            }
            NodeKind::Text(text) => {
                write_varint(out, KIND_TEXT);
                write_bytes(out, text.as_bytes());
            }
        }
    }
    for column in [
        |s: &SlotSnapshot| s.parent,
        |s: &SlotSnapshot| s.first_child,
        |s: &SlotSnapshot| s.last_child,
        |s: &SlotSnapshot| s.prev_sibling,
        |s: &SlotSnapshot| s.next_sibling,
    ] {
        for slot in &snap.slots {
            write_opt(out, column(slot));
        }
    }
}

/// Parses a tree section back into an arena-identical [`XmlTree`].
pub(crate) fn decode_tree(input: &mut &[u8], path: &Path) -> Result<XmlTree, StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt { path: path.to_path_buf(), what: what.into() };
    let nslots = usize::try_from(read_varint(input)?)
        .map_err(|_| corrupt("slot count overflows"))?;
    let root = u32::try_from(read_varint(input)?)
        .map_err(|_| corrupt("root index overflows u32"))?;
    let mut slots = Vec::with_capacity(nslots.min(1 << 20));
    for _ in 0..nslots {
        let kind = match read_varint(input)? {
            KIND_ELEMENT => {
                let tag = read_str(input)?;
                let nattrs = read_varint(input)?;
                let mut attrs = Vec::new();
                for _ in 0..nattrs {
                    let k = read_str(input)?;
                    let v = read_str(input)?;
                    attrs.push((k, v));
                }
                NodeKind::Element { tag, attrs }
            }
            KIND_TEXT => NodeKind::Text(read_str(input)?),
            _ => return Err(corrupt("unknown node kind tag")),
        };
        slots.push(SlotSnapshot {
            kind,
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
        });
    }
    for column in 0..5usize {
        for slot in slots.iter_mut() {
            let link = read_opt(input)?;
            match column {
                0 => slot.parent = link,
                1 => slot.first_child = link,
                2 => slot.last_child = link,
                3 => slot.prev_sibling = link,
                _ => slot.next_sibling = link,
            }
        }
    }
    Ok(XmlTree::from_snapshot(&TreeSnapshot { root, slots })?)
}

/// Serializes the columnar payload (no frame, no I/O).
#[allow(clippy::too_many_arguments)]
pub fn encode_segment(
    uri: &str,
    doc_id: u64,
    epoch: u64,
    seq: u64,
    chunk_capacity: u64,
    primes_handed_out: u64,
    tree: &XmlTree,
    labels: &LabeledDoc<PrimeLabel>,
    sc: &ScTable,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    write_bytes(&mut out, uri.as_bytes());
    for v in [doc_id, epoch, seq, chunk_capacity, primes_handed_out] {
        write_varint(&mut out, v);
    }
    encode_tree(&mut out, tree);

    // Label section. Tag dictionary first.
    let mut tag_ids = std::collections::HashMap::new();
    let mut tag_names: Vec<&str> = Vec::new();
    for &node in labels.nodes() {
        if let Some(tag) = tree.tag(node) {
            tag_ids.entry(tag).or_insert_with(|| {
                tag_names.push(tag);
                tag_names.len() - 1
            });
        }
    }
    write_varint(&mut out, tag_names.len() as u64);
    for tag in &tag_names {
        write_bytes(&mut out, tag.as_bytes());
    }

    // Row columns, all in labeling order: node index, tag id, level,
    // label byte-length, then the label blob.
    let rows = labels.nodes();
    write_varint(&mut out, rows.len() as u64);
    for &node in rows {
        write_varint(&mut out, node.index() as u64);
    }
    for &node in rows {
        let tag = tree.tag(node).unwrap_or_default();
        write_varint(&mut out, *tag_ids.get(tag).unwrap_or(&0) as u64);
    }
    for &node in rows {
        write_varint(&mut out, tree.depth(node) as u64);
    }
    let mut blob = Vec::new();
    for &node in rows {
        let at = blob.len();
        if let Some(label) = labels.get(node) {
            label.encode(&mut blob);
        }
        write_varint(&mut out, (blob.len() - at) as u64);
    }
    out.extend_from_slice(&blob);

    // SC section.
    write_bytes(&mut out, &sc.encode());
    out
}

/// Parses and validates a segment payload.
pub fn decode_segment(payload: &[u8], path: &Path) -> Result<Segment, StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt { path: path.to_path_buf(), what: what.into() };
    if payload.len() < MAGIC.len() || &payload[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad segment magic"));
    }
    let mut input = &payload[MAGIC.len()..];
    let uri = read_str(&mut input)?;
    let doc_id = read_varint(&mut input)?;
    let epoch = read_varint(&mut input)?;
    let seq = read_varint(&mut input)?;
    let chunk_capacity = read_varint(&mut input)?;
    let primes_handed_out = read_varint(&mut input)?;
    let tree = decode_tree(&mut input, path)?;

    // Label section.
    let ntags = read_varint(&mut input)?;
    let mut tag_names = Vec::new();
    for _ in 0..ntags {
        tag_names.push(read_str(&mut input)?);
    }
    let nrows = usize::try_from(read_varint(&mut input)?)
        .map_err(|_| corrupt("row count overflows"))?;
    let mut node_idx = Vec::with_capacity(nrows.min(1 << 20));
    for _ in 0..nrows {
        node_idx.push(read_varint(&mut input)?);
    }
    let mut tag_id = Vec::with_capacity(node_idx.len());
    for _ in 0..nrows {
        tag_id.push(read_varint(&mut input)?);
    }
    let mut level = Vec::with_capacity(node_idx.len());
    for _ in 0..nrows {
        level.push(read_varint(&mut input)?);
    }
    let mut lens = Vec::with_capacity(node_idx.len());
    let mut total = 0u64;
    for _ in 0..nrows {
        let len = read_varint(&mut input)?;
        total += len;
        lens.push(len);
    }
    let total = usize::try_from(total).map_err(|_| corrupt("label blob overflows"))?;
    if input.len() < total {
        return Err(StoreError::Codec(CodecError::UnexpectedEnd));
    }
    let (blob, rest) = input.split_at(total);
    input = rest;

    // Reassemble the labeled doc row by row, validating the redundant
    // columns against the tree as we go.
    let mut labels = LabeledDoc::new(&tree);
    let mut off = 0usize;
    for row in 0..nrows {
        let idx = usize::try_from(node_idx[row]).map_err(|_| corrupt("node index overflows"))?;
        let node = tree.node_at(idx).ok_or_else(|| corrupt("row names a node outside the arena"))?;
        let tag = tree
            .tag(node)
            .ok_or_else(|| corrupt("labeled row is not an element"))?;
        let claimed_tag = usize::try_from(tag_id[row]).ok().and_then(|t| tag_names.get(t));
        if claimed_tag.map(String::as_str) != Some(tag) {
            return Err(corrupt("tag column disagrees with the tree"));
        }
        if level[row] != tree.depth(node) as u64 {
            return Err(corrupt("level column disagrees with the tree"));
        }
        let len = usize::try_from(lens[row]).map_err(|_| corrupt("label length overflows"))?;
        let mut label_bytes = &blob[off..off + len];
        off += len;
        let label = PrimeLabel::decode(&mut label_bytes)?;
        if !label_bytes.is_empty() {
            return Err(corrupt("trailing bytes after a label"));
        }
        labels.set(node, label);
    }

    // SC section.
    let sc_bytes = read_bytes(&mut input)?;
    let sc = ScTable::decode(sc_bytes)?;
    if !input.is_empty() {
        return Err(corrupt("trailing segment bytes"));
    }

    Ok(Segment {
        uri,
        doc_id,
        epoch,
        seq,
        chunk_capacity,
        primes_handed_out,
        tree,
        labels,
        sc,
    })
}

/// Frames and writes a segment payload to `seg-{doc_id}-e{epoch}.dat`,
/// fsyncing the file and the directory. The old epoch's file is left in
/// place — it stays the live checkpoint until the manifest swap commits.
pub fn write_segment(
    dir: &Path,
    doc_id: u64,
    epoch: u64,
    payload: &[u8],
) -> Result<PathBuf, StoreError> {
    write_framed_file(dir, &segment_file(doc_id, epoch), payload)
}

/// Frames and durably writes any checkpoint-class payload to `dir/name`
/// (file fsync + directory fsync), passing through the
/// `store.checkpoint.write` fault site. Shared by whole-document segments
/// and the sharded store's skeleton / per-shard files.
pub(crate) fn write_framed_file(
    dir: &Path,
    name: &str,
    payload: &[u8],
) -> Result<PathBuf, StoreError> {
    let path = dir.join(name);
    crate::error::ensure_frameable(payload.len())?;
    let frame = encode_frame(payload);
    if let Err(inj) = xp_testkit::faultpoint!("store.checkpoint.write") {
        match inj.mode {
            FaultMode::Torn | FaultMode::Abort => {
                let half = frame.len() / 2;
                let _ = std::fs::write(&path, &frame[..half]);
                if inj.mode == FaultMode::Abort {
                    std::process::abort();
                }
            }
            FaultMode::Error | FaultMode::Short => {}
        }
        return Err(StoreError::Io { op: "write", path, msg: format!("{inj}") });
    }
    let mut f = std::fs::File::create(&path).map_err(|e| io_err("create", &path, e))?;
    f.write_all(&frame).map_err(|e| io_err("write", &path, e))?;
    f.sync_all().map_err(|e| io_err("fsync", &path, e))?;
    drop(f);
    crate::manifest::sync_dir(dir)?;
    Ok(path)
}

/// Reads and checksum-verifies any framed checkpoint-class file, returning
/// its raw payload.
pub(crate) fn read_framed_file(dir: &Path, name: &str) -> Result<Vec<u8>, StoreError> {
    let path = dir.join(name);
    let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, e))?;
    let payload = decode_single_frame(&bytes)
        .map_err(|what| StoreError::Corrupt { path, what: what.into() })?;
    Ok(payload.to_vec())
}

/// Reads, checksum-verifies, and decodes `seg-{doc_id}-e{epoch}.dat`.
pub fn load_segment(dir: &Path, doc_id: u64, epoch: u64) -> Result<Segment, StoreError> {
    let path = dir.join(segment_file(doc_id, epoch));
    let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, e))?;
    let payload = decode_single_frame(&bytes)
        .map_err(|what| StoreError::Corrupt { path: path.clone(), what: what.into() })?;
    let seg = decode_segment(payload, &path)?;
    if seg.doc_id != doc_id || seg.epoch != epoch {
        return Err(StoreError::Corrupt {
            path,
            what: "segment header disagrees with its file name".into(),
        });
    }
    Ok(seg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::dynamic::LabeledStore;
    use xp_prime::DynamicPrime;

    fn sample_store() -> LabeledStore<DynamicPrime> {
        let tree = xp_xmltree::parse(
            "<lib><shelf genre=\"old\"><book>alpha</book><book>beta</book></shelf><shelf/></lib>",
        )
        .unwrap();
        LabeledStore::build(DynamicPrime::new(8), tree).unwrap()
    }

    #[test]
    fn segment_file_names_round_trip() {
        assert_eq!(segment_file(7, 42), "seg-7-e42.dat");
        assert_eq!(parse_segment_file("seg-7-e42.dat"), Some((7, 42)));
        assert_eq!(parse_segment_file("seg-7.dat"), None);
        assert_eq!(parse_segment_file("wal.log"), None);
        assert_eq!(parse_segment_file("seg-x-e1.dat"), None);
    }

    #[test]
    fn encode_decode_round_trip_preserves_everything() {
        let store = sample_store();
        let payload = encode_segment(
            "doc.xml",
            3,
            2,
            11,
            8,
            store.state().primes_handed_out(),
            store.tree(),
            store.doc(),
            store.state().sc_table(),
        );
        let seg = decode_segment(&payload, Path::new("t")).unwrap();
        assert_eq!(seg.uri, "doc.xml");
        assert_eq!((seg.doc_id, seg.epoch, seg.seq), (3, 2, 11));
        assert_eq!(seg.chunk_capacity, 8);
        assert_eq!(seg.primes_handed_out, store.state().primes_handed_out());
        // Arena-identical tree.
        assert_eq!(seg.tree.snapshot(), store.tree().snapshot());
        // Labels in the identical labeling order, byte-identical values.
        let orig: Vec<_> = store.doc().iter().collect();
        let back: Vec<_> = seg.labels.iter().collect();
        assert_eq!(orig, back);
        // SC table byte-identical.
        assert_eq!(seg.sc.encode(), store.state().sc_table().encode());
    }

    #[test]
    fn tag_column_mismatch_is_rejected() {
        let store = sample_store();
        let payload = encode_segment(
            "d",
            1,
            1,
            0,
            8,
            store.state().primes_handed_out(),
            store.tree(),
            store.doc(),
            store.state().sc_table(),
        );
        // Corrupt a tag-dictionary byte: change "lib" so the redundant tag
        // column no longer matches the tree (checksum is not in play here —
        // decode_segment validates structure, the frame guards bits).
        let needle = b"shelf";
        let pos = payload.windows(needle.len()).position(|w| w == needle).unwrap();
        let mut bad = payload.clone();
        bad[pos] = b'X';
        let err = decode_segment(&bad, Path::new("t")).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("disagrees") || msg.contains("corrupt") || msg.contains("decode"),
            "{msg}"
        );
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("xp-store-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = sample_store();
        let payload = encode_segment(
            "w.xml",
            5,
            1,
            0,
            8,
            store.state().primes_handed_out(),
            store.tree(),
            store.doc(),
            store.state().sc_table(),
        );
        write_segment(&dir, 5, 1, &payload).unwrap();
        let seg = load_segment(&dir, 5, 1).unwrap();
        assert_eq!(seg.uri, "w.xml");
        assert_eq!(seg.tree.snapshot(), store.tree().snapshot());
        // Bit-flip anywhere in the file → checksum refuses it.
        let path = dir.join(segment_file(5, 1));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_segment(&dir, 5, 1), Err(StoreError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoint_write_is_detectable() {
        let dir = std::env::temp_dir().join(format!("xp-store-segt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        xp_testkit::fault::reset();
        let store = sample_store();
        let payload = encode_segment(
            "t.xml",
            9,
            2,
            0,
            8,
            store.state().primes_handed_out(),
            store.tree(),
            store.doc(),
            store.state().sc_table(),
        );
        xp_testkit::fault::arm("store.checkpoint.write:1:torn");
        assert!(write_segment(&dir, 9, 2, &payload).is_err());
        xp_testkit::fault::reset();
        // Half a frame on disk: the checksum rejects it.
        assert!(dir.join(segment_file(9, 2)).exists());
        assert!(matches!(load_segment(&dir, 9, 2), Err(StoreError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
