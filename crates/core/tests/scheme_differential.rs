//! Differential test: on 100 seeded random trees, the prime scheme must give
//! the same ancestor / descendant / sibling-order answers as the interval
//! and Dewey baselines. The baselines implement completely different label
//! algebras (containment arithmetic vs path components vs divisibility), so
//! agreement across all three on the same trees is strong evidence each one
//! matches the tree's ground truth — and any disagreement pinpoints which
//! axis (ancestry or order) broke.

use xp_baselines::dewey::DeweyScheme;
use xp_baselines::interval::IntervalScheme;
use xp_datagen::builders::{random_tree, RandomTreeParams};
use xp_labelkit::{LabelOps, OrderedLabel, Scheme};
use xp_prime::ordered::OrderedPrimeDoc;
use xp_prime::topdown::TopDownPrime;
use xp_xmltree::{NodeId, XmlTree};

const TREES: u64 = 100;

fn trees() -> impl Iterator<Item = (u64, XmlTree)> {
    (0..TREES).map(|seed| {
        let params = RandomTreeParams {
            nodes: 40,
            max_depth: 6,
            max_fanout: 8,
            tag_variety: 5,
        };
        (seed, random_tree(seed, &params))
    })
}

#[test]
fn ancestor_and_descendant_answers_agree_across_schemes() {
    for (seed, tree) in trees() {
        let prime = TopDownPrime::unoptimized().label(&tree);
        let prime_opt = TopDownPrime::optimized().label(&tree);
        let interval = IntervalScheme::dense().label(&tree);
        let dewey = DeweyScheme.label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                let by_interval = interval.label(x).is_ancestor_of(interval.label(y));
                let by_dewey = dewey.label(x).is_ancestor_of(dewey.label(y));
                let by_prime = prime.label(x).is_ancestor_of(prime.label(y));
                let by_prime_opt = prime_opt.label(x).is_ancestor_of(prime_opt.label(y));
                assert_eq!(by_prime, by_interval, "seed {seed}: ancestor({x}, {y})");
                assert_eq!(by_prime, by_dewey, "seed {seed}: ancestor({x}, {y})");
                assert_eq!(by_prime, by_prime_opt, "seed {seed}: ancestor({x}, {y})");
                // Descendant is the transpose; check it explicitly so a bug
                // that breaks the symmetry cannot hide.
                let desc_interval = interval.label(y).is_ancestor_of(interval.label(x));
                let desc_prime = prime.label(y).is_ancestor_of(prime.label(x));
                assert_eq!(desc_prime, desc_interval, "seed {seed}: descendant({x}, {y})");
            }
        }
    }
}

#[test]
fn sibling_order_answers_agree_across_schemes() {
    for (seed, tree) in trees() {
        // The prime scheme's document order comes from the SC table.
        let ordered = OrderedPrimeDoc::build(&tree, 5).unwrap();
        let interval = IntervalScheme::dense().label(&tree);
        let dewey = DeweyScheme.label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &parent in &nodes {
            let siblings: Vec<NodeId> = tree.element_children(parent).collect();
            for &a in &siblings {
                for &b in &siblings {
                    if a == b {
                        continue;
                    }
                    let by_prime = ordered.order_of(a).cmp(&ordered.order_of(b));
                    let by_interval = interval.label(a).doc_cmp(interval.label(b));
                    let by_dewey = dewey.label(a).doc_cmp(dewey.label(b));
                    assert_eq!(by_prime, by_interval, "seed {seed}: order({a}, {b})");
                    assert_eq!(by_prime, by_dewey, "seed {seed}: order({a}, {b})");
                }
            }
        }
    }
}

#[test]
fn document_order_agrees_across_schemes_beyond_siblings() {
    // Full preorder, not just siblings: sorting all elements by each
    // scheme's order must give the same permutation.
    for (seed, tree) in trees().take(25) {
        let ordered = OrderedPrimeDoc::build(&tree, 3).unwrap();
        let interval = IntervalScheme::dense().label(&tree);
        let dewey = DeweyScheme.label(&tree);
        let mut by_prime: Vec<NodeId> = tree.elements().collect();
        by_prime.sort_by_key(|&n| ordered.order_of(n));
        let mut by_interval: Vec<NodeId> = tree.elements().collect();
        by_interval.sort_by(|&a, &b| interval.label(a).doc_cmp(interval.label(b)));
        let mut by_dewey: Vec<NodeId> = tree.elements().collect();
        by_dewey.sort_by(|&a, &b| dewey.label(a).doc_cmp(dewey.label(b)));
        assert_eq!(by_prime, by_interval, "seed {seed}");
        assert_eq!(by_prime, by_dewey, "seed {seed}");
    }
}
