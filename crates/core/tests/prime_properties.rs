//! Property tests on the prime scheme's core invariants, across random
//! trees and random update sequences, plus codec robustness.

use xp_labelkit::codec::LabelCodec;
use xp_labelkit::{LabelOps, Scheme};
use xp_prime::topdown::TopDownPrime;
use xp_prime::PrimeLabel;
use xp_testkit::propcheck::{index, u8s, vec_of, Gen};
use xp_testkit::{prop_assert, prop_assert_eq, propcheck};
use xp_xmltree::{NodeId, XmlTree};

fn tree_strategy(max_nodes: usize) -> Gen<XmlTree> {
    vec_of(index(), 0..max_nodes).map(|attach| {
        let mut tree = XmlTree::new("r");
        let mut nodes = vec![tree.root()];
        for (i, idx) in attach.into_iter().enumerate() {
            let parent = nodes[idx.index(nodes.len())];
            nodes.push(tree.append_element(parent, format!("n{}", i % 3)));
        }
        tree
    })
}

propcheck! {
    #![config(cases = 256)]

    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in vec_of(u8s(0..=255), 0..96)) {
        let _ = PrimeLabel::decode(&mut bytes.as_slice());
    }

    #[test]
    fn every_label_round_trips_through_the_codec(tree in tree_strategy(40)) {
        for scheme in [TopDownPrime::unoptimized(), TopDownPrime::optimized()] {
            let doc = scheme.label(&tree);
            for (_, label) in doc.iter() {
                let mut buf = Vec::new();
                label.encode(&mut buf);
                prop_assert_eq!(&PrimeLabel::decode(&mut buf.as_slice()).unwrap(), label);
            }
        }
    }

    #[test]
    fn divisibility_transitivity_holds(tree in tree_strategy(25)) {
        // If x | y and y | z as labels, then x | z: the label algebra must
        // be transitively consistent like the ancestor relation it encodes.
        let doc = TopDownPrime::unoptimized().label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                if !doc.label(x).is_ancestor_of(doc.label(y)) {
                    continue;
                }
                for &z in &nodes {
                    if doc.label(y).is_ancestor_of(doc.label(z)) {
                        prop_assert!(doc.label(x).is_ancestor_of(doc.label(z)));
                    }
                }
            }
        }
    }

    #[test]
    fn label_bit_length_is_sum_of_path_self_lengths_within_rounding(tree in tree_strategy(40)) {
        // §3.1's additive size assumption: "the bit length of the product of
        // two numbers is the sum of the bit lengths of the two numbers" —
        // true within one bit per factor.
        let doc = TopDownPrime::unoptimized().label(&tree);
        for node in tree.elements() {
            let label_bits = doc.label(node).size_bits();
            let mut sum = 0u64;
            let mut at = Some(node);
            let mut factors = 0u64;
            while let Some(n) = at {
                sum += doc.label(n).self_label().bit_len();
                factors += 1;
                at = tree.parent(n);
            }
            prop_assert!(label_bits <= sum, "{label_bits} > {sum}");
            prop_assert!(label_bits + factors >= sum, "{label_bits} + {factors} < {sum}");
        }
    }

    #[test]
    fn insertion_sequences_keep_labels_unique(ops in vec_of(index(), 1..20)) {
        let mut tree = XmlTree::new("r");
        let mut doc = TopDownPrime::unoptimized().label_document(&tree);
        let root = tree.root();
        tree.append_element(root, "seed"); // ensure a non-root target exists
        let mut doc2 = TopDownPrime::unoptimized().label_document(&tree);
        for idx in ops {
            let nodes: Vec<NodeId> = tree.elements().collect();
            let target = nodes[idx.index(nodes.len())];
            doc2.insert_child(&mut tree, target, "x").unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        for node in tree.elements() {
            prop_assert!(seen.insert(doc2.labels.label(node).value().clone()));
        }
        let _ = &mut doc;
    }
}
