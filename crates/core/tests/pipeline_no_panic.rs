//! End-to-end robustness: arbitrary bytes fed through the parser and the
//! full prime-labeling pipeline (top-down labels, optimized labels, ordered
//! document with SC table) must never panic — every failure is a typed
//! error. Each case runs under `catch_unwind` so a panic anywhere in the
//! pipeline fails the property with the offending input shrunk and printed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use xp_labelkit::Scheme;
use xp_prime::ordered::OrderedPrimeDoc;
use xp_prime::topdown::TopDownPrime;
use xp_testkit::propcheck::{any_string, index, string_from, u8s, vec_of};
use xp_testkit::{prop_assert, propcheck};
use xp_xmltree::{parse_with, ParseOptions, XmlTree};

/// Tight limits so hostile inputs fail fast instead of chewing memory.
fn fuzz_options() -> ParseOptions {
    ParseOptions {
        max_depth: 64,
        max_input_bytes: 4096,
        max_attrs: 16,
        max_entity_expansions: 256,
        ..ParseOptions::default()
    }
}

/// Parses and, when the input happens to be well-formed, runs every
/// labeling configuration over the resulting tree. Returns whether any
/// stage panicked.
fn pipeline_panics(input: &str) -> bool {
    catch_unwind(AssertUnwindSafe(|| {
        let Ok(tree) = parse_with(input, &fuzz_options()) else {
            return;
        };
        exercise_labeling(&tree);
    }))
    .is_err()
}

fn exercise_labeling(tree: &XmlTree) {
    let _ = TopDownPrime::unoptimized().label(tree);
    let _ = TopDownPrime::optimized().label(tree);
    if let Ok(doc) = OrderedPrimeDoc::build(tree, 5) {
        for node in tree.elements() {
            let _ = doc.try_order_of(node);
        }
    }
}

propcheck! {
    #![config(cases = 512)]

    #[test]
    fn byte_soup_never_panics(bytes in vec_of(u8s(0..=255), 0..160)) {
        let input = String::from_utf8_lossy(&bytes).into_owned();
        prop_assert!(!pipeline_panics(&input), "panicked on {input:?}");
    }

    #[test]
    fn unicode_soup_never_panics(input in any_string(0..=160)) {
        prop_assert!(!pipeline_panics(&input), "panicked on {input:?}");
    }

    #[test]
    fn xmlish_soup_never_panics(
        input in string_from("<>/abc \"'=&;![]#x0123456789-", 0..=120)
    ) {
        prop_assert!(!pipeline_panics(&input), "panicked on {input:?}");
    }

    #[test]
    fn deep_and_truncated_documents_never_panic(
        depth in index(),
        cut in index(),
    ) {
        // Nest around (and past) the configured depth limit, then truncate
        // at an arbitrary byte so close tags go missing.
        let depth = 1 + depth.index(96);
        let mut doc = String::new();
        for _ in 0..depth {
            doc.push_str("<n a=\"1\">");
        }
        doc.push_str("x&amp;y");
        for _ in 0..depth {
            doc.push_str("</n>");
        }
        prop_assert!(!pipeline_panics(&doc), "panicked at depth {depth}");
        let cut_at = cut.index(doc.len() + 1);
        let truncated = &doc[..cut_at]; // ASCII, every index is a char boundary
        prop_assert!(!pipeline_panics(truncated), "panicked on {truncated:?}");
    }
}
