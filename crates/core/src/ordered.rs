//! [`OrderedPrimeDoc`]: prime labels + SC table, the complete §4 system.
//!
//! Combines a top-down prime labeling (every node a distinct prime
//! self-label — Opt2's shared `2^n` leaf labels would violate Theorem 1's
//! pairwise-coprimality requirement and are therefore rejected here) with an
//! [`ScTable`] capturing global document order, and implements the
//! order-sensitive update protocol of §4.2 with the relabel accounting that
//! Figure 18 reports.

use crate::error::Error;
use crate::sc::{ScError, ScTable};
use crate::topdown::{PrimeDoc, PrimeOptions, TopDownPrime};
use std::collections::HashMap;
use xp_bignum::UBig;
use xp_labelkit::LabeledDoc;
use xp_xmltree::{NodeId, XmlTree};

use crate::label::PrimeLabel;

/// An ordered, dynamically updatable prime-labeled document.
#[derive(Debug, Clone)]
pub struct OrderedPrimeDoc {
    doc: PrimeDoc,
    sc: ScTable,
    node_of_self: HashMap<u64, NodeId>,
}

/// Accounting for one order-sensitive insertion (Figure 18's metric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedInsertReport {
    /// The new node.
    pub node: NodeId,
    /// Existing node labels that changed. Normally 0 for sibling insertion;
    /// becomes positive only when an order number would have outgrown a
    /// small self-label (see [`ScError::OrderOverflow`]) and the node had to
    /// take a larger prime. Always `relabeled_nodes.len()`.
    pub relabeled_existing: usize,
    /// Exactly which pre-existing nodes were relabeled (overflow victims and
    /// their subtrees; the wrapped subtree for
    /// [`OrderedPrimeDoc::insert_parent`]) — what incremental consumers of
    /// the labels (the query layer's table patching) need to know.
    pub relabeled_nodes: Vec<NodeId>,
    /// SC records re-solved. The paper: "We consider a record update in the
    /// SC table as a node that requires re-labeling."
    pub sc_records_updated: usize,
}

impl OrderedInsertReport {
    /// Total cost under the paper's accounting: the new node's label, any
    /// forced relabelings, and one per touched SC record.
    pub fn total_relabeled(&self) -> usize {
        1 + self.relabeled_existing + self.sc_records_updated
    }
}

impl OrderedPrimeDoc {
    /// Labels `tree` with distinct primes assigned in document order and
    /// builds the SC table with `chunk_capacity` nodes per record.
    ///
    /// The ordered variant uses neither Opt1 nor Opt2: Opt2's shared `2^n`
    /// leaf labels violate Theorem 1's coprimality, and Opt1 would hand a
    /// *small* reserved prime to a top-level node that can sit arbitrarily
    /// late in document order, making its order number unrecoverable from
    /// `SC mod self`. Plain in-order assignment guarantees `order(v) <
    /// self(v)` (the n-th prime exceeds n).
    ///
    /// The root keeps order number 0 (§4.1) and is not entered into the
    /// table (its self-label 1 carries no congruence information).
    pub fn build(tree: &XmlTree, chunk_capacity: usize) -> Result<Self, Error> {
        let scheme = TopDownPrime::with_options(PrimeOptions {
            reserved_top_primes: 0,
            leaf_powers_of_two: false,
            ..Default::default()
        })?;
        let doc = scheme.label_document(tree);

        let mut items = Vec::new();
        let mut node_of_self = HashMap::new();
        let mut order = 0u64;
        for node in tree.elements() {
            if node == tree.root() {
                continue;
            }
            order += 1;
            let self_label = doc.labels.label(node).self_label_u64();
            items.push((self_label, order));
            node_of_self.insert(self_label, node);
        }
        let sc = ScTable::build(chunk_capacity, &items)?;
        Ok(OrderedPrimeDoc { doc, sc, node_of_self })
    }

    /// Reassembles an ordered document from persisted parts: the tree it
    /// labels, its per-node labels, a decoded SC table, and the prime-pool
    /// high-water mark ([`OrderedPrimeDoc::primes_handed_out`]).
    ///
    /// Validates that labels and table agree — every labeled non-root
    /// element's self-label must be covered by the table and vice versa —
    /// so a mismatched (labels, SC) pair from a corrupt checkpoint is
    /// rejected here instead of mis-answering order queries later.
    pub fn from_parts(
        tree: &XmlTree,
        labels: LabeledDoc<PrimeLabel>,
        sc: ScTable,
        primes_handed_out: u64,
    ) -> Result<Self, Error> {
        let mut node_of_self = HashMap::new();
        let mut covered = 0usize;
        for node in tree.elements() {
            if node == tree.root() {
                continue;
            }
            let label = labels.get(node).ok_or(Error::UnknownNode(node))?;
            let self_label = label.self_label_u64();
            if sc.order_of(self_label).is_none() {
                return Err(Error::Sc(ScError::UnknownSelfLabel(self_label)));
            }
            if node_of_self.insert(self_label, node).is_some() {
                return Err(Error::Sc(ScError::DuplicateSelfLabel(self_label)));
            }
            covered += 1;
        }
        if sc.len() != covered {
            // The table covers self-labels no reachable node carries.
            return Err(Error::Sc(ScError::NeedsRecovery));
        }
        let doc = PrimeDoc::from_persisted(labels, primes_handed_out);
        Ok(OrderedPrimeDoc { doc, sc, node_of_self })
    }

    /// The allocator high-water mark: how many general primes the document
    /// has drawn. Persisted alongside the labels so
    /// [`OrderedPrimeDoc::from_parts`] resumes the same sequence.
    pub fn primes_handed_out(&self) -> u64 {
        self.doc.primes_handed_out()
    }

    /// `true` iff the SC table's last mutation failed partway and its
    /// journal is still open (see [`ScTable::needs_recovery`]).
    pub fn needs_recovery(&self) -> bool {
        self.sc.needs_recovery()
    }

    /// Rolls back a half-applied SC mutation, if any. Returns `true` when
    /// something was rolled back.
    pub fn recover(&mut self) -> bool {
        self.sc.recover()
    }

    /// The labels.
    pub fn labels(&self) -> &LabeledDoc<PrimeLabel> {
        &self.doc.labels
    }

    /// The SC table.
    pub fn sc_table(&self) -> &ScTable {
        &self.sc
    }

    /// Global order number of a node (root = 0), derived as
    /// `SC mod self-label` (§4.1).
    ///
    /// Panics if the node is not covered — this is the indexing-style read
    /// accessor ([`crate::ordered::OrderedPrimeDoc::try_order_of`] is the
    /// fallible form every mutation path uses internally).
    pub fn order_of(&self, node: NodeId) -> u64 {
        match self.try_order_of(node) {
            Ok(o) => o,
            Err(e) => panic!("order_of({node}): {e}"),
        }
    }

    /// Global order number of a node (root = 0), or a typed error when the
    /// node carries no label, its self-label left the SC table, or the
    /// table has an open journal from a failed mutation
    /// ([`ScError::NeedsRecovery`] — run [`OrderedPrimeDoc::recover`]).
    pub fn try_order_of(&self, node: NodeId) -> Result<u64, Error> {
        let label = self.doc.labels.get(node).ok_or(Error::UnknownNode(node))?;
        let self_label = label.self_label_u64();
        if self_label == 1 {
            return Ok(0); // the root
        }
        self.sc
            .try_order_of(self_label)?
            .ok_or(Error::Sc(ScError::UnknownSelfLabel(self_label)))
    }

    /// The node carrying a given self-label.
    pub fn node_with_self_label(&self, self_label: u64) -> Option<NodeId> {
        self.node_of_self.get(&self_label).copied()
    }

    /// Inserts a new element immediately before `anchor` in document order.
    ///
    /// The new node takes the next unused prime — no existing label changes
    /// — and the SC table shifts the order numbers at and after the
    /// insertion point (§4.2's protocol, exactly as the Figure 11 example).
    pub fn insert_sibling_before(
        &mut self,
        tree: &mut XmlTree,
        anchor: NodeId,
        tag: &str,
    ) -> Result<OrderedInsertReport, Error> {
        // Preorder: the anchor is the first node of its subtree, so the new
        // node (inserted just before it) takes the anchor's order number.
        let order = self.try_order_of(anchor)?;
        let outcome = self.doc.insert_sibling_before(tree, anchor, tag)?;
        debug_assert_eq!(outcome.relabeled_existing, 0, "sibling insert never relabels");
        self.finish_ordered_insert(tree, outcome.node, order, Vec::new())
    }

    /// Inserts a new element immediately after `anchor`'s subtree in
    /// document order (i.e. as `anchor`'s next sibling).
    pub fn insert_sibling_after(
        &mut self,
        tree: &mut XmlTree,
        anchor: NodeId,
        tag: &str,
    ) -> Result<OrderedInsertReport, Error> {
        // Document order position: one past the anchor subtree's last node.
        let subtree_max = self.subtree_max_order(tree, anchor)?;
        let parent = tree.parent(anchor).ok_or(Error::RootAnchor(anchor))?;
        let parent_label = self.doc.labels.get(parent).ok_or(Error::UnknownNode(parent))?.clone();
        let node = tree.create_element(tag);
        tree.insert_after(anchor, node);
        let self_label = UBig::from(self.doc.next_prime());
        let label = PrimeLabel::child_of(&parent_label, self_label);
        self.doc.labels.set(node, label);
        self.finish_ordered_insert(tree, node, subtree_max + 1, Vec::new())
    }

    /// Largest order number inside `node`'s subtree (including `node`).
    fn subtree_max_order(&self, tree: &XmlTree, node: NodeId) -> Result<u64, Error> {
        let mut max = self.try_order_of(node)?;
        for n in tree.element_descendants(node) {
            max = max.max(self.try_order_of(n)?);
        }
        Ok(max)
    }

    /// Appends a new element as the last child of `parent`.
    pub fn append_child(
        &mut self,
        tree: &mut XmlTree,
        parent: NodeId,
        tag: &str,
    ) -> Result<OrderedInsertReport, Error> {
        let subtree_max = self.subtree_max_order(tree, parent)?;
        let outcome = self.doc.insert_child(tree, parent, tag)?;
        debug_assert_eq!(outcome.relabeled_existing, 0, "plain scheme never relabels on append");
        self.finish_ordered_insert(tree, outcome.node, subtree_max + 1, Vec::new())
    }

    /// Wraps `target` in a new parent element (§5.3's non-leaf update,
    /// Figure 17, on the *ordered* document). The wrapper takes `target`'s
    /// old order number — preorder puts a parent immediately before its
    /// subtree — so the SC shift moves the wrapped subtree (and everything
    /// after it) one position down. The subtree's labels are recomputed with
    /// the wrapper's fresh prime as a new factor; self-labels stay put, so
    /// no SC record beyond the shift is touched for them.
    pub fn insert_parent(
        &mut self,
        tree: &mut XmlTree,
        target: NodeId,
        tag: &str,
    ) -> Result<OrderedInsertReport, Error> {
        let order = self.try_order_of(target)?;
        let subtree: Vec<NodeId> = tree.element_descendants(target).collect();
        let outcome = self.doc.insert_parent(tree, target, tag)?;
        debug_assert_eq!(outcome.relabeled_existing, subtree.len());
        self.finish_ordered_insert(tree, outcome.node, order, subtree)
    }

    /// Deletes a leaf-or-subtree node: labels are dropped and each covered
    /// self-label leaves its SC record (orders of other nodes are untouched,
    /// §4.2). Returns the number of SC records re-solved.
    pub fn delete(&mut self, tree: &mut XmlTree, target: NodeId) -> Result<usize, Error> {
        let mut items = Vec::new();
        for n in tree.element_descendants(target) {
            let label = self.doc.labels.get(n).ok_or(Error::UnknownNode(n))?;
            items.push((n, label.self_label_u64()));
        }
        self.doc.delete(tree, target)?;
        let mut touched = 0usize;
        for (n, s) in items {
            match self.sc.remove(s) {
                Ok(true) => touched += 1,
                Ok(false) => {}
                Err(e) => {
                    // Roll the half-applied record change back so the
                    // remaining covered nodes stay queryable.
                    self.sc.recover();
                    self.node_of_self.remove(&s);
                    self.doc.labels.remove(n);
                    return Err(e.into());
                }
            }
            self.node_of_self.remove(&s);
            self.doc.labels.remove(n);
        }
        Ok(touched)
    }

    /// Crate-internal recovery hook for the dynamic-store layer: drops every
    /// trace of `node` (label, self-label mapping, SC entry). Best-effort on
    /// the SC side — the entry may legitimately be absent for a node whose
    /// insertion aborted before reaching the table.
    pub(crate) fn forget_node(&mut self, node: NodeId) {
        if let Some(label) = self.doc.labels.remove(node) {
            let s = label.self_label_u64();
            self.node_of_self.remove(&s);
            if self.sc.remove(s).is_err() {
                self.sc.recover();
            }
        }
    }

    /// Crate-internal recovery hook: recomputes the label products of
    /// `target`'s subtree from its *current* parent, keeping every
    /// self-label (so the SC table needs no changes). Used to unwind a
    /// half-applied `insert_parent` after the wrapper is detached again.
    pub(crate) fn recompute_subtree_products(
        &mut self,
        tree: &XmlTree,
        target: NodeId,
    ) -> Result<(), Error> {
        let parent = tree.parent(target).ok_or(Error::RootAnchor(target))?;
        let parent_label = self.doc.labels.get(parent).ok_or(Error::UnknownNode(parent))?.clone();
        let mut stack = vec![(target, parent_label)];
        while let Some((n, parent_label)) = stack.pop() {
            let self_label =
                self.doc.labels.get(n).ok_or(Error::UnknownNode(n))?.self_label().clone();
            let updated = PrimeLabel::child_of(&parent_label, self_label);
            self.doc.labels.set(n, updated.clone());
            for c in tree.element_children(n) {
                stack.push((c, updated.clone()));
            }
        }
        Ok(())
    }

    fn finish_ordered_insert(
        &mut self,
        tree: &XmlTree,
        node: NodeId,
        order: u64,
        relabeled: Vec<NodeId>,
    ) -> Result<OrderedInsertReport, Error> {
        let result = self.finish_ordered_insert_inner(tree, node, order, relabeled);
        if result.is_err() {
            // A mid-mutation failure (injected fault, budget overrun) can
            // leave the SC table's journal open: roll it back so every
            // pre-existing node stays queryable. The new tree node keeps its
            // label but has no order yet; retrying the insert through the SC
            // table is the caller's move.
            self.sc.recover();
        }
        result
    }

    fn finish_ordered_insert_inner(
        &mut self,
        tree: &XmlTree,
        node: NodeId,
        order: u64,
        mut relabeled: Vec<NodeId>,
    ) -> Result<OrderedInsertReport, Error> {
        let self_label =
            self.doc.labels.get(node).ok_or(Error::UnknownNode(node))?.self_label_u64();
        let report = loop {
            match self.sc.insert(self_label, order) {
                Ok(r) => break r,
                Err(ScError::OrderOverflow { self_label: victim, .. }) if victim != self_label => {
                    // A small-prime node's order number outgrew its modulus:
                    // give it (and, through the inherited product, its
                    // subtree) a fresh larger prime and retry. A victim's
                    // subtree can overlap nodes already relabeled by this
                    // mutation (e.g. the wrapped subtree of insert_parent):
                    // each node counts once.
                    for n in self.relabel_with_fresh_prime(tree, victim)? {
                        if !relabeled.contains(&n) {
                            relabeled.push(n);
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        };
        self.node_of_self.insert(self_label, node);
        Ok(OrderedInsertReport {
            node,
            relabeled_existing: relabeled.len(),
            relabeled_nodes: relabeled,
            sc_records_updated: report.records_updated,
        })
    }

    /// Swaps the self-label of the node currently carrying `old_self` for a
    /// fresh prime and recomputes the label products of its subtree.
    /// Returns the existing nodes whose labels changed (the victim first,
    /// then its subtree).
    fn relabel_with_fresh_prime(
        &mut self,
        tree: &XmlTree,
        old_self: u64,
    ) -> Result<Vec<NodeId>, Error> {
        let node = *self
            .node_of_self
            .get(&old_self)
            .ok_or(Error::Sc(ScError::UnknownSelfLabel(old_self)))?;
        let fresh = self.doc.next_prime();
        self.sc.replace_self_label(old_self, fresh)?;
        self.node_of_self.remove(&old_self);
        self.node_of_self.insert(fresh, node);

        let parent_value = match tree.parent(node) {
            Some(p) => self.doc.labels.label(p).value().clone(),
            None => UBig::one(),
        };
        let odd_mode = self.doc.odd_internal_mode();
        let new_label =
            PrimeLabel::from_parts(&parent_value * &UBig::from(fresh), UBig::from(fresh), odd_mode);
        self.doc.labels.set(node, new_label.clone());
        let mut relabeled = vec![node];
        // Descendants inherit the new factor; self-labels stay put, so the
        // SC table needs no further changes.
        let mut stack: Vec<(NodeId, PrimeLabel)> = tree
            .element_children(node)
            .map(|c| (c, new_label.clone()))
            .collect();
        while let Some((n, parent_label)) = stack.pop() {
            let self_label = self.doc.labels.label(n).self_label().clone();
            let updated = PrimeLabel::child_of(&parent_label, self_label);
            self.doc.labels.set(n, updated.clone());
            relabeled.push(n);
            for c in tree.element_children(n) {
                stack.push((c, updated.clone()));
            }
        }
        Ok(relabeled)
    }

    /// Test/diagnostic helper: asserts that SC-derived order numbers rank
    /// the elements exactly in preorder document order.
    pub fn verify_order_consistency(&self, tree: &XmlTree) {
        let mut prev = None;
        for node in tree.elements() {
            let o = self.order_of(node);
            if let Some(p) = prev {
                assert!(o > p, "order {o} of {node} not after {p}");
            }
            prev = Some(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::parse;

    fn build(src: &str) -> (XmlTree, OrderedPrimeDoc) {
        let tree = parse(src).unwrap();
        let doc = OrderedPrimeDoc::build(&tree, 5).unwrap();
        (tree, doc)
    }

    #[test]
    fn orders_match_preorder_positions() {
        let (tree, doc) = build("<a><b><c/><d/></b><e><f/></e></a>");
        let nodes: Vec<NodeId> = tree.elements().collect();
        for (i, &n) in nodes.iter().enumerate() {
            assert_eq!(doc.order_of(n), i as u64, "node {n}");
        }
        doc.verify_order_consistency(&tree);
    }

    #[test]
    fn figure8_second_author_insertion() {
        // §4's motivating update: insert a new author as the SECOND author —
        // Tom and John shift to 3rd and 4th position. (Tom carries
        // self-label 3 and shifts to order 3, tripping the residue-range
        // corner the paper leaves implicit, so exactly one node takes a
        // fresh prime; everything else stays put.)
        let (mut tree, mut doc) = build("<book><author/><author/><author/></book>");
        let tom = tree.element_children(tree.root()).nth(1).unwrap();
        let report = doc.insert_sibling_before(&mut tree, tom, "author").unwrap();
        assert_eq!(report.relabeled_existing, 1, "only the overflow victim");
        assert!(report.sc_records_updated >= 1);
        // Orders: root 0, Mary 1, new 2, Tom 3, John 4.
        let kids: Vec<NodeId> = tree.element_children(tree.root()).collect();
        let orders: Vec<u64> = kids.iter().map(|&k| doc.order_of(k)).collect();
        assert_eq!(orders, [1, 2, 3, 4]);
        doc.verify_order_consistency(&tree);
    }

    #[test]
    fn insertion_away_from_small_primes_relabels_nothing() {
        // Inserting past the small-prime region leaves every label intact.
        let (mut tree, mut doc) = build("<l><a/><b/><c/><d/><e/><f/><g/><h/></l>");
        let before_labels = doc.labels().clone();
        let last = tree.last_child(tree.root()).unwrap();
        let report = doc.insert_sibling_before(&mut tree, last, "x").unwrap();
        assert_eq!(report.relabeled_existing, 0);
        assert_eq!(before_labels.diff_count(doc.labels()).changed, 0);
        doc.verify_order_consistency(&tree);
    }

    #[test]
    fn insert_after_lands_past_the_subtree() {
        let (mut tree, mut doc) = build("<a><b><c/><d/></b><e/></a>");
        let b = tree.first_child(tree.root()).unwrap();
        let report = doc.insert_sibling_after(&mut tree, b, "x").unwrap();
        // Preorder: a(0) b(1) c(2) d(3) x(4) e(5).
        assert_eq!(doc.order_of(report.node), 4);
        let e = tree.last_child(tree.root()).unwrap();
        assert_eq!(doc.order_of(e), 5);
        doc.verify_order_consistency(&tree);
    }

    #[test]
    fn append_child_goes_to_the_end_of_the_subtree() {
        let (mut tree, mut doc) = build("<a><b><c/></b><e/></a>");
        let b = tree.first_child(tree.root()).unwrap();
        let report = doc.append_child(&mut tree, b, "z").unwrap();
        // Preorder: a(0) b(1) c(2) z(3) e(4).
        assert_eq!(doc.order_of(report.node), 3);
        doc.verify_order_consistency(&tree);
    }

    #[test]
    fn repeated_ordered_insertions_stay_consistent() {
        let (mut tree, mut doc) = build("<list><i/><i/><i/><i/><i/></list>");
        for _ in 0..10 {
            let second = tree.element_children(tree.root()).nth(1).unwrap();
            doc.insert_sibling_before(&mut tree, second, "i").unwrap();
            doc.verify_order_consistency(&tree);
        }
        assert_eq!(tree.element_children(tree.root()).count(), 15);
    }

    #[test]
    fn sc_update_cost_is_bounded_by_touched_records() {
        // 20 items, capacity 5 → 4 records. Inserting before the last item
        // touches the record holding it plus the receiving record.
        let mut src = String::from("<l>");
        for _ in 0..20 {
            src.push_str("<i/>");
        }
        src.push_str("</l>");
        let (mut tree, mut doc) = build(&src);
        let last = tree.last_child(tree.root()).unwrap();
        let report = doc.insert_sibling_before(&mut tree, last, "i").unwrap();
        assert!(report.sc_records_updated <= 2, "touched {}", report.sc_records_updated);
        // Inserting at the very front touches every record.
        let first = tree.first_child(tree.root()).unwrap();
        let report = doc.insert_sibling_before(&mut tree, first, "i").unwrap();
        assert!(report.sc_records_updated >= 4, "touched {}", report.sc_records_updated);
        doc.verify_order_consistency(&tree);
    }

    #[test]
    fn delete_keeps_remaining_orders() {
        let (mut tree, mut doc) = build("<a><b/><c/><d/></a>");
        let kids: Vec<NodeId> = tree.element_children(tree.root()).collect();
        let before: Vec<u64> = kids.iter().map(|&k| doc.order_of(k)).collect();
        doc.delete(&mut tree, kids[1]).unwrap();
        assert_eq!(doc.order_of(kids[0]), before[0]);
        assert_eq!(doc.order_of(kids[2]), before[2], "gap left, order preserved");
        doc.verify_order_consistency(&tree);
    }

    #[test]
    fn opt2_documents_cannot_be_ordered() {
        // Build with Opt2 by hand and check the SC build rejects shared
        // power-of-two self-labels (not coprime).
        let tree = parse("<a><b/><c/></a>").unwrap();
        let scheme = TopDownPrime::optimized();
        let doc = scheme.label_document(&tree);
        let items: Vec<(u64, u64)> = tree
            .elements()
            .skip(1)
            .enumerate()
            .map(|(i, n)| (doc.labels.label(n).self_label_u64(), i as u64 + 1))
            .collect();
        // Both leaves are 2^1 and 2^2 under the same parent: gcd = 2.
        assert!(ScTable::build(5, &items).is_err());
    }

    #[test]
    fn front_insertions_stay_consistent_despite_overflows() {
        // Hammer the small-prime region: every front insertion shifts the
        // earliest nodes, repeatedly tripping OrderOverflow relabels. The
        // derived order must stay a perfect preorder ranking throughout.
        let (mut tree, mut doc) = build("<l><a/><b/><c/></l>");
        for _ in 0..8 {
            let first = tree.first_child(tree.root()).unwrap();
            doc.insert_sibling_before(&mut tree, first, "n").unwrap();
            doc.verify_order_consistency(&tree);
        }
        assert_eq!(tree.element_children(tree.root()).count(), 11);
    }
}
