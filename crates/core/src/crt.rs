//! Chinese-Remainder solvers (Theorem 1 of the paper).
//!
//! Given pairwise-coprime moduli `M = [m₁…m_k]` (the nodes' self-labels) and
//! residues `N = [n₁…n_k]` (their order numbers), the simultaneous
//! congruence `SC(M, N)` is the unique `x ∈ [0, Πmᵢ)` with `x ≡ nᵢ (mod mᵢ)`
//! for every i.
//!
//! Two solvers are provided:
//!
//! * [`solve`] — incremental folding with extended-Euclid modular inverses,
//!   the standard O(k) construction (also what the paper's worked update
//!   example in §4.2 does pair by pair).
//! * [`solve_euler`] — the paper's formulation via Euler's totient:
//!   `x = Σᵢ (C/mᵢ)^φ(mᵢ) · nᵢ mod C`. Since `gcd(C/mᵢ, mᵢ) = 1`,
//!   Euler's theorem gives `(C/mᵢ)^φ(mᵢ) ≡ 1 (mod mᵢ)`, while every other
//!   `mⱼ` divides `C/mᵢ`; so each term contributes `nᵢ` at position i and 0
//!   elsewhere. (The paper prints the formula with the totient as a factor
//!   rather than an exponent — a typo; as printed it is not a CRT solution.)
//!
//! The ablation bench `ablation_crt` compares the two.

use xp_bignum::{modular, UBig};

/// Why a CRT system could not be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrtError {
    /// Moduli and residue lists have different lengths.
    LengthMismatch,
    /// Two moduli share a factor; Theorem 1 requires pairwise coprimality.
    NotCoprime {
        /// First offending modulus.
        a: u64,
        /// Second offending modulus.
        b: u64,
    },
    /// A modulus was 0 (1 is allowed but useless).
    ZeroModulus,
    /// A congruence could not be folded into an already-accumulated system:
    /// the caller's cached product shares a factor with `modulus`, so the two
    /// fell out of sync (the pairwise check, which would name the offending
    /// pair, was bypassed or its inputs drifted).
    Inconsistent {
        /// The modulus that failed to fold into the accumulated product.
        modulus: u64,
    },
}

impl std::fmt::Display for CrtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrtError::LengthMismatch => write!(f, "moduli and residues differ in length"),
            CrtError::NotCoprime { a, b } => write!(f, "moduli {a} and {b} are not coprime"),
            CrtError::ZeroModulus => write!(f, "zero modulus"),
            CrtError::Inconsistent { modulus } => {
                write!(f, "modulus {modulus} conflicts with the accumulated congruence system")
            }
        }
    }
}

impl std::error::Error for CrtError {}

fn validate(moduli: &[u64], residues: &[u64]) -> Result<(), CrtError> {
    if moduli.len() != residues.len() {
        return Err(CrtError::LengthMismatch);
    }
    if moduli.contains(&0) {
        return Err(CrtError::ZeroModulus);
    }
    for (i, &a) in moduli.iter().enumerate() {
        for &b in &moduli[i + 1..] {
            if !modular::coprime(&UBig::from(a), &UBig::from(b)) {
                return Err(CrtError::NotCoprime { a, b });
            }
        }
    }
    Ok(())
}

/// Solves the system by incrementally folding one congruence at a time with
/// extended-Euclid inverses. Returns `SC ∈ [0, Πmᵢ)`.
pub fn solve(moduli: &[u64], residues: &[u64]) -> Result<UBig, CrtError> {
    validate(moduli, residues)?;
    let mut x = UBig::zero();
    let mut m_acc = UBig::one();
    for (i, (&m, &r)) in moduli.iter().zip(residues).enumerate() {
        // `validate` proved pairwise coprimality, so `crt_pair` cannot fail
        // here — but surface it as an error rather than aborting if the two
        // ever fall out of sync, naming the earlier modulus that actually
        // conflicts so the diagnostic points at the real pair.
        x = modular::crt_pair(&x, &m_acc, &UBig::from(r), &UBig::from(m))
            .ok_or_else(|| conflict_with_earlier(&moduli[..i], m))?;
        m_acc = &m_acc * &UBig::from(m);
    }
    Ok(x)
}

/// Names the error for a modulus `m` that failed to fold into the product of
/// `earlier`: the first earlier modulus sharing a factor with `m` if one
/// exists, otherwise the system is inconsistent in a way no pair explains.
fn conflict_with_earlier(earlier: &[u64], m: u64) -> CrtError {
    match earlier.iter().find(|&&a| !modular::coprime(&UBig::from(a), &UBig::from(m))) {
        Some(&a) => CrtError::NotCoprime { a, b: m },
        None => CrtError::Inconsistent { modulus: m },
    }
}

/// Solves the system with the paper's Euler-totient construction:
/// `x = Σ (C/mᵢ)^φ(mᵢ) · nᵢ mod C`.
pub fn solve_euler(moduli: &[u64], residues: &[u64]) -> Result<UBig, CrtError> {
    validate(moduli, residues)?;
    let mut c = UBig::one();
    for &m in moduli {
        c *= UBig::from(m);
    }
    let mut x = UBig::zero();
    for (&m, &r) in moduli.iter().zip(residues) {
        let cofactor = &c / &UBig::from(m);
        let phi = modular::euler_phi_u64(m);
        // (C/mᵢ)^φ(mᵢ) mod C, then × nᵢ.
        let term = modular::mod_pow(&cofactor, &UBig::from(phi), &c);
        x = (x + term * UBig::from(r)) % &c;
    }
    Ok(x)
}

/// Extends an existing solution: given `x ≡ old (mod old_product)`, adds the
/// congruence `x ≡ r (mod m)` — the paper's §4.2 update step
/// (`x mod 13 = 7, x mod 17 = 3`).
pub fn extend(old: &UBig, old_product: &UBig, m: u64, r: u64) -> Result<UBig, CrtError> {
    // The caller holds only the accumulated product, not the member list, so
    // no conflicting *pair* can be named here: report the one modulus that
    // failed to fold instead of inventing a placeholder pair.
    modular::crt_pair(old, old_product, &UBig::from(r), &UBig::from(m))
        .ok_or(CrtError::Inconsistent { modulus: m })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section41_example() {
        // §4.1: P = [3, 4, 5], I = [1, 2, 3] → x = 58.
        let x = solve(&[3, 4, 5], &[1, 2, 3]).unwrap();
        assert_eq!(x, UBig::from(58u64));
        assert_eq!(solve_euler(&[3, 4, 5], &[1, 2, 3]).unwrap(), UBig::from(58u64));
    }

    #[test]
    fn paper_figure9_sc_value() {
        // Figure 9: self-labels [2,3,5,7,11,13] with orders [1,2,3,4,5,6]
        // give SC = 29243; e.g. 29243 mod 5 = 3.
        let x = solve(&[2, 3, 5, 7, 11, 13], &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(x, UBig::from(29243u64));
        assert_eq!(x.rem_u64(5), 3);
        assert_eq!(x.rem_u64(13), 6);
    }

    #[test]
    fn paper_figure10_split_sc_table() {
        // Figure 10: first 5 nodes → SC 1523; the 6th alone → SC 6.
        let first = solve(&[2, 3, 5, 7, 11], &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(first, UBig::from(1523u64));
        let second = solve(&[13], &[6]).unwrap();
        assert_eq!(second, UBig::from(6u64));
    }

    #[test]
    fn paper_figure12_updated_table() {
        // §4.2: after inserting the node with self-label 17 at order 3, the
        // second record solves x ≡ 7 (mod 13), x ≡ 3 (mod 17), and the first
        // record re-solves with shifted orders [1,2,4,5,6].
        let second = solve(&[13, 17], &[7, 3]).unwrap();
        assert_eq!(second.rem_u64(13), 7);
        assert_eq!(second.rem_u64(17), 3);
        let first = solve(&[2, 3, 5, 7, 11], &[1, 2, 4, 5, 6]).unwrap();
        assert_eq!(first.rem_u64(5), 4);
        assert_eq!(first.rem_u64(11), 6);
    }

    #[test]
    fn both_solvers_agree() {
        let moduli = [3u64, 5, 7, 11, 13, 17, 19, 23];
        let residues = [2u64, 4, 0, 10, 12, 7, 18, 1];
        assert_eq!(solve(&moduli, &residues).unwrap(), solve_euler(&moduli, &residues).unwrap());
    }

    #[test]
    fn solution_is_canonical() {
        let moduli = [5u64, 7];
        let x = solve(&moduli, &[3, 3]).unwrap();
        assert!(x < UBig::from(35u64));
        assert_eq!(x, UBig::from(3u64)); // x ≡ 3 mod both → 3
    }

    #[test]
    fn residues_larger_than_moduli_are_reduced() {
        let x = solve(&[5, 7], &[8, 9]).unwrap(); // ≡ 3 mod 5, ≡ 2 mod 7
        assert_eq!(x.rem_u64(5), 3);
        assert_eq!(x.rem_u64(7), 2);
    }

    #[test]
    fn errors_are_detected() {
        assert_eq!(solve(&[4, 6], &[1, 2]).unwrap_err(), CrtError::NotCoprime { a: 4, b: 6 });
        assert_eq!(solve(&[3], &[1, 2]).unwrap_err(), CrtError::LengthMismatch);
        assert_eq!(solve(&[0], &[1]).unwrap_err(), CrtError::ZeroModulus);
        assert_eq!(solve_euler(&[9, 6], &[1, 2]).unwrap_err(), CrtError::NotCoprime { a: 9, b: 6 });
    }

    #[test]
    fn fold_failures_name_the_real_pair() {
        // Bypassing `validate`, a fold failure must still name the earlier
        // modulus that genuinely conflicts — never a placeholder.
        assert_eq!(conflict_with_earlier(&[5, 6, 7], 9), CrtError::NotCoprime { a: 6, b: 9 });
        // No earlier modulus explains the failure: the system is inconsistent.
        assert_eq!(conflict_with_earlier(&[5, 7], 9), CrtError::Inconsistent { modulus: 9 });
    }

    #[test]
    fn extend_with_conflicting_modulus_is_inconsistent() {
        // old_product = 6 shares a factor with m = 9: no pair is nameable
        // from here, so the error carries the modulus that failed to fold.
        let err = extend(&UBig::from(1u64), &UBig::from(6u64), 9, 2).unwrap_err();
        assert_eq!(err, CrtError::Inconsistent { modulus: 9 });
        assert_eq!(err.to_string(), "modulus 9 conflicts with the accumulated congruence system");
    }

    #[test]
    fn empty_system_solves_to_zero() {
        assert_eq!(solve(&[], &[]).unwrap(), UBig::zero());
    }

    #[test]
    fn extend_matches_full_resolve() {
        let moduli = [3u64, 5, 7];
        let residues = [1u64, 2, 3];
        let partial = solve(&moduli[..2], &residues[..2]).unwrap();
        let extended = extend(&partial, &UBig::from(15u64), 7, 3).unwrap();
        assert_eq!(extended, solve(&moduli, &residues).unwrap());
    }

    #[test]
    fn large_chunk_of_primes() {
        // A realistic SC chunk: consecutive primes with arbitrary orders.
        let moduli: Vec<u64> = xp_primes::first_primes(25);
        let residues: Vec<u64> = (0..25).map(|i| (i * 37 + 5) % 100).collect();
        let x = solve(&moduli, &residues).unwrap();
        for (&m, &r) in moduli.iter().zip(&residues) {
            assert_eq!(x.rem_u64(m), r % m, "mod {m}");
        }
        assert_eq!(x, solve_euler(&moduli, &residues).unwrap());
    }
}
