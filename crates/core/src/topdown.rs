//! The top-down prime labeling scheme (§3, Figure 2, algorithm `PrimeLabel`
//! of Figure 7) with optimizations Opt1–Opt3 (§3.2), plus the incremental
//! update rules the paper's dynamicity claims rest on.

use crate::error::Error;
use crate::label::PrimeLabel;
use std::collections::HashMap;
use xp_bignum::UBig;
use xp_labelkit::{LabeledDoc, Scheme};
use xp_primes::PrimePool;
use xp_xmltree::{NodeId, XmlTree};

/// Configuration of the top-down scheme's optimizations.
#[derive(Debug, Clone)]
pub struct PrimeOptions {
    /// **Opt1**: how many of the smallest primes to reserve for the nodes
    /// one level below the root ("top level nodes"). 0 disables.
    pub reserved_top_primes: usize,
    /// **Opt2**: label the n-th leaf child of a parent `2^n` and restrict
    /// internal nodes to odd primes (Property 3 ancestor test).
    pub leaf_powers_of_two: bool,
    /// Opt2's fallback threshold (§3.2): once a parent has this many
    /// power-of-two leaf children, further leaves draw primes instead
    /// ("when the size of a label in a leaf node reaches some pre-determined
    /// threshold, we can use other prime numbers"). Without it, a
    /// huge-fan-out parent (the actor dataset's 1000+-movie filmography)
    /// would mint `2^1000`-scale leaf labels. Default 12 — `2^12` is the
    /// size of the primes a 10k-node document consumes anyway. Maximum 63
    /// so self-labels stay within `u64`.
    pub leaf_power_threshold: u32,
    /// **Opt3**: collapse repeated sibling subtrees (Figure 6): structurally
    /// identical consecutive siblings share one set of labels, with their
    /// occurrence positions kept out-of-band.
    pub combine_repeated_paths: bool,
}

impl Default for PrimeOptions {
    fn default() -> Self {
        PrimeOptions {
            reserved_top_primes: 0,
            leaf_powers_of_two: false,
            leaf_power_threshold: 12,
            combine_repeated_paths: false,
        }
    }
}

/// The top-down prime labeling scheme.
#[derive(Debug, Clone, Default)]
pub struct TopDownPrime {
    opts: PrimeOptions,
}

impl TopDownPrime {
    /// The original scheme: every node gets the next prime, no optimizations.
    pub fn unoptimized() -> Self {
        TopDownPrime { opts: PrimeOptions::default() }
    }

    /// Opt1 only: reserve `n` small primes for the top level.
    pub fn with_reserved(n: usize) -> Self {
        TopDownPrime { opts: PrimeOptions { reserved_top_primes: n, ..Default::default() } }
    }

    /// The paper's experimental configuration (§5): Opt1 + Opt2.
    pub fn optimized() -> Self {
        TopDownPrime {
            opts: PrimeOptions {
                reserved_top_primes: 16,
                leaf_powers_of_two: true,
                ..Default::default()
            },
        }
    }

    /// All three optimizations (Opt3 is measured separately in Figure 13).
    pub fn fully_optimized() -> Self {
        TopDownPrime {
            opts: PrimeOptions {
                reserved_top_primes: 16,
                leaf_powers_of_two: true,
                combine_repeated_paths: true,
                ..Default::default()
            },
        }
    }

    /// A scheme with explicit options. Fails with
    /// [`Error::LeafPowerThresholdTooLarge`] when `leaf_power_threshold`
    /// exceeds 63 (Opt2's `2^n` self-labels must fit a `u64`), so a bad
    /// configuration is rejected up front instead of aborting a batch job
    /// mid-labeling.
    pub fn with_options(opts: PrimeOptions) -> Result<Self, Error> {
        if opts.leaf_power_threshold > 63 {
            return Err(Error::LeafPowerThresholdTooLarge { threshold: opts.leaf_power_threshold });
        }
        Ok(TopDownPrime { opts })
    }

    /// The active options.
    pub fn options(&self) -> &PrimeOptions {
        &self.opts
    }

    /// Labels the tree and returns the full dynamic document (labels + the
    /// allocator state needed for incremental updates).
    ///
    /// Runs the two-phase parallel pipeline (classify prime draws
    /// sequentially, materialize label products on the `xp_par` pool) for
    /// every configuration except Opt3, whose label sharing is inherently
    /// cross-subtree and stays on the recursive path. Both paths produce
    /// bit-identical labels and allocator state.
    pub fn label_document(&self, tree: &XmlTree) -> PrimeDoc {
        if self.opts.combine_repeated_paths {
            return self.label_document_sequential(tree);
        }
        self.label_document_parallel(tree)
    }

    /// The original recursive labeling walk: one node at a time, drawing
    /// from the pool at the moment each node is visited.
    fn label_document_sequential(&self, tree: &XmlTree) -> PrimeDoc {
        let odd_mode = self.opts.leaf_powers_of_two;
        // Opt1: reserving more primes than the root has children would only
        // take small primes away from the rest of the tree, so clamp the
        // reservation to the actual top level.
        let reserve = self.opts.reserved_top_primes.min(tree.element_children(tree.root()).count());
        let mut pool = PrimePool::new(reserve, odd_mode);
        let mut labels = LabeledDoc::new(tree);
        let mut leaf_counters: HashMap<NodeId, u32> = HashMap::new();

        let signatures = if self.opts.combine_repeated_paths {
            Some(subtree_signatures(tree))
        } else {
            None
        };

        let root_label = PrimeLabel::root(odd_mode);
        labels.set(tree.root(), root_label.clone());
        self.label_children(
            tree,
            tree.root(),
            &root_label,
            1,
            &mut pool,
            &mut labels,
            &mut leaf_counters,
            signatures.as_ref(),
        );
        PrimeDoc { labels, pool, opts: self.opts.clone(), leaf_counters, odd_mode }
    }

    /// Parallel labeling in two phases, bit-identical to
    /// [`label_document_sequential`](Self::label_document_sequential):
    ///
    /// 1. **Classify + pre-allocate** (sequential, no bignum work): walk the
    ///    tree in the exact DFS preorder of the recursive path and record
    ///    *which kind* of self-label each node gets — `2^n` (Opt2), the
    ///    i-th reserved prime (Opt1, modeling the fallback to the general
    ///    pool when the reservation runs dry), or the g-th general prime.
    ///    Then draw all general primes in one [`PrimePool::take_general`]
    ///    batch (itself parallel sieving). Because the classification order
    ///    equals the recursive draw order, node→prime assignment — and the
    ///    pool's final state, which incremental updates resume from — is
    ///    identical at any thread count.
    /// 2. **Materialize** (parallel): each label is `parent_label × self`,
    ///    so labels compute level by level, every node of a wave in a
    ///    `par_map` — the bignum multiplications dominate the runtime.
    ///    The result per node is a pure function of its path, independent
    ///    of scheduling.
    ///
    /// Finally labels commit into the [`LabeledDoc`] in preorder, matching
    /// the recursive path's insertion order record for record.
    fn label_document_parallel(&self, tree: &XmlTree) -> PrimeDoc {
        let odd_mode = self.opts.leaf_powers_of_two;
        let root = tree.root();
        let reserve = self.opts.reserved_top_primes.min(tree.element_children(root).count());
        let mut leaf_counters: HashMap<NodeId, u32> = HashMap::new();

        // Phase 1a: classify every non-root element in DFS preorder.
        enum Kind {
            Power2(u32),
            Reserved(usize),
            General(usize),
        }
        let mut kinds: Vec<(NodeId, Kind)> = Vec::new();
        let mut reserved_left = reserve;
        let mut reserved_next = 0usize;
        let mut general_next = 0usize;
        // Stack of (node, parent, node's depth); children are pushed in
        // reverse so each node pops — and draws its prime index — at the
        // moment the recursive walk would visit it: c₁, c₁'s whole subtree,
        // then c₂. Draw order IS the prime assignment, so this order must
        // match the recursion exactly.
        let mut stack: Vec<(NodeId, NodeId, usize)> = Vec::new();
        for child in tree.element_children(root).collect::<Vec<_>>().into_iter().rev() {
            stack.push((child, root, 1));
        }
        while let Some((node, parent, depth)) = stack.pop() {
            let kind = if self.opts.leaf_powers_of_two && tree.is_leaf_element(node) {
                let counter = leaf_counters.entry(parent).or_insert(0);
                if *counter < self.opts.leaf_power_threshold {
                    *counter += 1;
                    Kind::Power2(*counter)
                } else {
                    general_next += 1;
                    Kind::General(general_next - 1)
                }
            } else if depth == 1 && self.opts.reserved_top_primes > 0 {
                if reserved_left > 0 {
                    reserved_left -= 1;
                    reserved_next += 1;
                    Kind::Reserved(reserved_next - 1)
                } else {
                    // The pool's reserved() falls back to the general
                    // stream once the reservation is spent.
                    general_next += 1;
                    Kind::General(general_next - 1)
                }
            } else {
                general_next += 1;
                Kind::General(general_next - 1)
            };
            kinds.push((node, kind));
            for child in tree.element_children(node).collect::<Vec<_>>().into_iter().rev() {
                stack.push((child, node, depth + 1));
            }
        }

        // Phase 1b: draw the pre-allocated prime ranges.
        let mut pool = PrimePool::new(reserve, odd_mode);
        let reserved_drawn: Vec<u64> = (0..reserved_next).map(|_| pool.reserved()).collect();
        let generals = pool.take_general(general_next);
        assert_eq!(generals.len(), general_next, "prime stream is unbounded");

        let cap = tree
            .elements()
            .map(|n| n.index())
            .max()
            .unwrap_or(0)
            + 1;
        let mut self_vals: Vec<Option<UBig>> = vec![None; cap];
        for (node, kind) in kinds {
            let value = match kind {
                Kind::Power2(n) => UBig::power_of_two(u64::from(n)),
                Kind::Reserved(i) => UBig::from(reserved_drawn[i]),
                Kind::General(g) => UBig::from(generals[g]),
            };
            self_vals[node.index()] = Some(value);
        }

        // Phase 2: materialize label products wave by wave.
        let root_label = PrimeLabel::root(odd_mode);
        let mut label_of: Vec<Option<PrimeLabel>> = vec![None; cap];
        label_of[root.index()] = Some(root_label);
        let mut frontier: Vec<NodeId> = vec![root];
        while !frontier.is_empty() {
            let wave: Vec<(NodeId, NodeId)> = frontier
                .iter()
                .flat_map(|&n| tree.element_children(n).map(move |c| (c, n)))
                .collect();
            if wave.is_empty() {
                break;
            }
            let computed: Vec<PrimeLabel> = xp_par::par_map(&wave, |&(child, parent)| {
                let parent_label = match &label_of[parent.index()] {
                    Some(l) => l,
                    None => unreachable!("parent labeled in an earlier wave"),
                };
                let self_label = match &self_vals[child.index()] {
                    Some(s) => s.clone(),
                    None => unreachable!("every non-root element was classified"),
                };
                PrimeLabel::child_of(parent_label, self_label)
            });
            for (&(child, _), label) in wave.iter().zip(computed) {
                label_of[child.index()] = Some(label);
            }
            frontier = wave.into_iter().map(|(c, _)| c).collect();
        }

        // Commit in document order — LabeledDoc records insertion order, and
        // downstream consumers (CSV writers, the SC table) iterate it.
        let mut labels = LabeledDoc::new(tree);
        for node in tree.elements() {
            match label_of[node.index()].take() {
                Some(l) => labels.set(node, l),
                None => unreachable!("every element was labeled"),
            }
        }
        PrimeDoc { labels, pool, opts: self.opts.clone(), leaf_counters, odd_mode }
    }

    #[allow(clippy::too_many_arguments)]
    fn label_children(
        &self,
        tree: &XmlTree,
        node: NodeId,
        node_label: &PrimeLabel,
        depth: usize,
        pool: &mut PrimePool,
        labels: &mut LabeledDoc<PrimeLabel>,
        leaf_counters: &mut HashMap<NodeId, u32>,
        signatures: Option<&HashMap<NodeId, String>>,
    ) {
        // Opt3: map subtree signature -> representative sibling.
        let mut reps: HashMap<&str, NodeId> = HashMap::new();
        for child in tree.element_children(node).collect::<Vec<_>>() {
            if let Some(sigs) = signatures {
                let sig = sigs[&child].as_str();
                if let Some(&rep) = reps.get(sig) {
                    copy_subtree_labels(tree, rep, child, labels);
                    continue;
                }
                reps.insert(sig, child);
            }
            let self_label = self.pick_self_label(tree, node, child, depth, pool, leaf_counters);
            let child_label = PrimeLabel::child_of(node_label, self_label);
            labels.set(child, child_label.clone());
            self.label_children(
                tree,
                child,
                &child_label,
                depth + 1,
                pool,
                labels,
                leaf_counters,
                signatures,
            );
        }
    }

    /// Figure 7's decision: reserved prime for top-level nodes (Opt1),
    /// `getPower2(childNum)` for leaf nodes (Opt2), next prime otherwise.
    fn pick_self_label(
        &self,
        tree: &XmlTree,
        parent: NodeId,
        child: NodeId,
        child_depth: usize,
        pool: &mut PrimePool,
        leaf_counters: &mut HashMap<NodeId, u32>,
    ) -> UBig {
        if self.opts.leaf_powers_of_two && tree.is_leaf_element(child) {
            let counter = leaf_counters.entry(parent).or_insert(0);
            if *counter < self.opts.leaf_power_threshold {
                *counter += 1;
                return UBig::power_of_two(u64::from(*counter));
            }
            // §3.2: beyond the threshold, "use other prime numbers instead".
            return UBig::from(pool.general_prime());
        }
        if child_depth == 1 && self.opts.reserved_top_primes > 0 {
            return UBig::from(pool.reserved());
        }
        UBig::from(pool.general_prime())
    }
}

impl Scheme for TopDownPrime {
    type Label = PrimeLabel;

    fn name(&self) -> &'static str {
        "Prime"
    }

    fn label(&self, tree: &XmlTree) -> LabeledDoc<PrimeLabel> {
        self.label_document(tree).labels
    }
}

/// Canonical structural signatures (tag structure, recursively) for Opt3.
fn subtree_signatures(tree: &XmlTree) -> HashMap<NodeId, String> {
    let mut sigs = HashMap::new();
    fill_signature(tree, tree.root(), &mut sigs);
    sigs
}

fn fill_signature(tree: &XmlTree, node: NodeId, sigs: &mut HashMap<NodeId, String>) -> String {
    let mut sig = String::new();
    sig.push_str(tree.tag(node).unwrap_or(""));
    sig.push('(');
    for child in tree.element_children(node) {
        let child_sig = fill_signature(tree, child, sigs);
        sig.push_str(&child_sig);
        sig.push(',');
    }
    sig.push(')');
    sigs.insert(node, sig.clone());
    sig
}

/// Copies the representative subtree's labels onto a structurally identical
/// duplicate (Opt3): node k of the duplicate (in preorder) gets the label of
/// node k of the representative.
fn copy_subtree_labels(
    tree: &XmlTree,
    rep: NodeId,
    dup: NodeId,
    labels: &mut LabeledDoc<PrimeLabel>,
) {
    let rep_nodes: Vec<NodeId> = tree.element_descendants(rep).collect();
    let dup_nodes: Vec<NodeId> = tree.element_descendants(dup).collect();
    debug_assert_eq!(rep_nodes.len(), dup_nodes.len(), "identical signatures imply equal size");
    for (r, d) in rep_nodes.into_iter().zip(dup_nodes) {
        let label = labels.label(r).clone();
        labels.set(d, label);
    }
}

/// A labeled document that supports the paper's *dynamic updates*: new nodes
/// are labeled with previously unused primes and existing labels are touched
/// only when the update itself forces it.
#[derive(Debug, Clone)]
pub struct PrimeDoc {
    /// The per-node labels.
    pub labels: LabeledDoc<PrimeLabel>,
    pool: PrimePool,
    opts: PrimeOptions,
    leaf_counters: HashMap<NodeId, u32>,
    odd_mode: bool,
}

/// What an incremental insertion did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The newly created node.
    pub node: NodeId,
    /// Pre-existing nodes whose labels had to change. The paper's Figures
    /// 16–17 report `relabeled_existing + 1` (the new node counts as one).
    pub relabeled_existing: usize,
}

impl InsertOutcome {
    /// Total relabelings under the paper's accounting.
    pub fn total_relabeled(&self) -> usize {
        self.relabeled_existing + 1
    }
}

impl PrimeDoc {
    /// `true` iff this document was labeled with Opt2 (odd-internal mode).
    pub fn odd_internal_mode(&self) -> bool {
        self.odd_mode
    }

    fn ensure_updatable(&self) -> Result<(), Error> {
        if self.opts.combine_repeated_paths {
            return Err(Error::NotUpdatable);
        }
        Ok(())
    }

    /// Inserts a new element as the **last child** of `parent` (§5.3's leaf
    /// update, interpreted as the paper's own accounting requires: the
    /// parent of the new node was previously a leaf, so under Opt2 it must
    /// trade its `2^n` self-label for a prime — 2 relabelings; the
    /// unoptimized scheme relabels only the new node).
    ///
    /// Fails — mutating nothing — on Opt3 documents ([`Error::NotUpdatable`])
    /// and on a `parent` this document does not label
    /// ([`Error::UnknownNode`]).
    pub fn insert_child(
        &mut self,
        tree: &mut XmlTree,
        parent: NodeId,
        tag: &str,
    ) -> Result<InsertOutcome, Error> {
        self.ensure_updatable()?;
        if self.labels.get(parent).is_none() {
            return Err(Error::UnknownNode(parent));
        }
        let mut relabeled = 0usize;

        // If Opt2 gave the parent a power-of-two self-label while it was a
        // leaf, it is about to become internal: relabel it with a prime.
        if self.opts.leaf_powers_of_two
            && tree.is_leaf_element(parent)
            && self.labels.label(parent).self_label().is_power_of_two()
        {
            let parent_part = self.labels.label(parent).parent_part();
            let new_self = UBig::from(self.pool.general_prime());
            let new_label =
                PrimeLabel::from_parts(&parent_part * &new_self, new_self, self.odd_mode);
            self.labels.set(parent, new_label);
            relabeled += 1;
        }

        let node = tree.append_element(parent, tag);
        let self_label = self.fresh_self_label_for(tree, parent, node);
        let label = PrimeLabel::child_of(self.labels.label(parent), self_label);
        self.labels.set(node, label);
        Ok(InsertOutcome { node, relabeled_existing: relabeled })
    }

    /// Inserts a new element immediately **before** `anchor` among its
    /// siblings. No existing label changes (this is the paper's headline
    /// dynamicity claim); the global *order* maintenance lives in the SC
    /// table ([`crate::ordered::OrderedPrimeDoc`] wires the two together).
    ///
    /// Fails — mutating nothing — on Opt3 documents, on an unlabeled
    /// `anchor`, and on the root ([`Error::RootAnchor`]: it has no siblings).
    pub fn insert_sibling_before(
        &mut self,
        tree: &mut XmlTree,
        anchor: NodeId,
        tag: &str,
    ) -> Result<InsertOutcome, Error> {
        self.ensure_updatable()?;
        if self.labels.get(anchor).is_none() {
            return Err(Error::UnknownNode(anchor));
        }
        let parent = tree.parent(anchor).ok_or(Error::RootAnchor(anchor))?;
        let node = tree.create_element(tag);
        tree.insert_before(anchor, node);
        let self_label = self.fresh_self_label_for(tree, parent, node);
        let label = PrimeLabel::child_of(self.labels.label(parent), self_label);
        self.labels.set(node, label);
        Ok(InsertOutcome { node, relabeled_existing: 0 })
    }

    /// Wraps `target` in a new parent element (§5.3's non-leaf update,
    /// Figure 17). The wrapper takes a fresh prime; every element in the
    /// wrapped subtree inherits the new factor, so the whole subtree is
    /// relabeled — and nothing else.
    ///
    /// Fails — mutating nothing — on Opt3 documents, on an unlabeled
    /// `target`, and on the root ([`Error::RootAnchor`]: it has no parent to
    /// hang the wrapper from).
    pub fn insert_parent(
        &mut self,
        tree: &mut XmlTree,
        target: NodeId,
        tag: &str,
    ) -> Result<InsertOutcome, Error> {
        self.ensure_updatable()?;
        if self.labels.get(target).is_none() {
            return Err(Error::UnknownNode(target));
        }
        let old_parent = tree.parent(target).ok_or(Error::RootAnchor(target))?;
        let wrapper = tree.wrap_with_parent(target, tag);
        let wrapper_self = UBig::from(self.pool.general_prime());
        let wrapper_label = PrimeLabel::child_of(self.labels.label(old_parent), wrapper_self);
        self.labels.set(wrapper, wrapper_label.clone());

        // Recompute the wrapped subtree's products, keeping self-labels.
        let mut relabeled = 0usize;
        let mut stack = vec![(target, wrapper_label)];
        while let Some((node, parent_label)) = stack.pop() {
            let self_label = self.labels.label(node).self_label().clone();
            let new_label = PrimeLabel::child_of(&parent_label, self_label);
            self.labels.set(node, new_label.clone());
            relabeled += 1;
            for child in tree.element_children(node) {
                stack.push((child, new_label.clone()));
            }
        }
        Ok(InsertOutcome { node: wrapper, relabeled_existing: relabeled })
    }

    /// Deletes a node (with its subtree). Deletion never relabels anything
    /// (§4.2: "the deletion of nodes from an XML tree does not affect any
    /// node ordering"), so this returns the number of labels *dropped*.
    ///
    /// Fails — mutating nothing — on Opt3 documents and on an unlabeled
    /// `target`.
    pub fn delete(&mut self, tree: &mut XmlTree, target: NodeId) -> Result<usize, Error> {
        self.ensure_updatable()?;
        if self.labels.get(target).is_none() {
            return Err(Error::UnknownNode(target));
        }
        let dropped = tree.element_descendants(target).count();
        tree.detach(target);
        Ok(dropped)
    }

    /// Draws the next unused prime from the document's pool (used by the
    /// ordered layer when it constructs labels itself).
    pub(crate) fn next_prime(&mut self) -> u64 {
        self.pool.general_prime()
    }

    /// Number of general-pool primes this document has handed out — the
    /// allocator high-water mark a persistent store records so a reloaded
    /// document continues the exact same prime sequence.
    pub fn primes_handed_out(&self) -> u64 {
        self.pool.handed_out()
    }

    /// Reassembles a dynamic document from persisted parts: a label table
    /// and the pool high-water mark. Only valid for the configuration the
    /// ordered layer builds (no reserved primes, no Opt2/Opt3): those are
    /// the only documents a [`crate::OrderedPrimeDoc`] ever persists.
    pub(crate) fn from_persisted(labels: LabeledDoc<PrimeLabel>, primes_handed_out: u64) -> Self {
        let mut pool = PrimePool::new(0, false);
        // Fast-forward the allocator past every prime the document consumed.
        let n = usize::try_from(primes_handed_out).unwrap_or(usize::MAX);
        let _ = pool.take_general(n);
        PrimeDoc {
            labels,
            pool,
            opts: PrimeOptions {
                reserved_top_primes: 0,
                leaf_powers_of_two: false,
                ..Default::default()
            },
            leaf_counters: HashMap::new(),
            odd_mode: false,
        }
    }

    fn fresh_self_label_for(&mut self, tree: &XmlTree, parent: NodeId, node: NodeId) -> UBig {
        if self.opts.leaf_powers_of_two && tree.is_leaf_element(node) {
            let counter = self.leaf_counters.entry(parent).or_insert(0);
            if *counter < self.opts.leaf_power_threshold {
                *counter += 1;
                return UBig::power_of_two(u64::from(*counter));
            }
            return UBig::from(self.pool.general_prime());
        }
        UBig::from(self.pool.general_prime())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::LabelOps;
    use xp_xmltree::parse;

    fn exhaustive_ancestor_check(tree: &XmlTree, labels: &LabeledDoc<PrimeLabel>) {
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                assert_eq!(
                    labels.label(x).is_ancestor_of(labels.label(y)),
                    tree.is_ancestor(x, y),
                    "ancestor({x},{y})"
                );
                assert_eq!(
                    labels.label(x).is_parent_of(labels.label(y)),
                    tree.parent(y) == Some(x),
                    "parent({x},{y})"
                );
            }
        }
    }

    #[test]
    fn unoptimized_labels_satisfy_property2_exhaustively() {
        let tree = parse("<a><b><c/><d/></b><e><f><g/></f></e><h/></a>").unwrap();
        let doc = TopDownPrime::unoptimized().label(&tree);
        exhaustive_ancestor_check(&tree, &doc);
    }

    #[test]
    fn optimized_labels_satisfy_property3_exhaustively() {
        let tree = parse("<a><b><c/><d/><x/></b><e><f><g/><g2/></f></e><h/></a>").unwrap();
        let doc = TopDownPrime::optimized().label(&tree);
        exhaustive_ancestor_check(&tree, &doc);
    }

    #[test]
    fn root_label_is_one() {
        let tree = parse("<a><b/></a>").unwrap();
        let doc = TopDownPrime::unoptimized().label(&tree);
        assert!(doc.label(tree.root()).value().is_one());
    }

    #[test]
    fn opt2_leaves_get_powers_of_two_in_sibling_order() {
        let tree = parse("<a><l1/><l2/><l3/></a>").unwrap();
        let doc = TopDownPrime::optimized().label(&tree);
        let leaves: Vec<NodeId> = tree.element_children(tree.root()).collect();
        let selfs: Vec<u64> = leaves
            .iter()
            .map(|&l| doc.label(l).self_label().to_u64().unwrap())
            .collect();
        assert_eq!(selfs, [2, 4, 8]);
    }

    #[test]
    fn opt2_threshold_falls_back_to_primes() {
        let mut src = String::from("<a>");
        for i in 0..6 {
            src.push_str(&format!("<l{i}/>"));
        }
        src.push_str("</a>");
        let tree = parse(&src).unwrap();
        let scheme = TopDownPrime::with_options(PrimeOptions {
            leaf_powers_of_two: true,
            leaf_power_threshold: 4,
            ..Default::default()
        })
        .unwrap();
        let doc = scheme.label(&tree);
        let selfs: Vec<u64> = tree
            .element_children(tree.root())
            .map(|l| doc.label(l).self_label().to_u64().unwrap())
            .collect();
        assert_eq!(&selfs[..4], &[2, 4, 8, 16]);
        assert!(xp_primes::is_prime(selfs[4]), "beyond threshold: prime");
        assert!(xp_primes::is_prime(selfs[5]));
        exhaustive_ancestor_check(&tree, &doc);
    }

    #[test]
    fn opt1_top_level_gets_smallest_primes() {
        let tree = parse("<a><b><c/></b><d><e/></d></a>").unwrap();
        let doc = TopDownPrime::with_reserved(8).label(&tree);
        let tops: Vec<u64> = tree
            .element_children(tree.root())
            .map(|n| doc.label(n).self_label().to_u64().unwrap())
            .collect();
        assert_eq!(tops, [2, 3]);
        // The reservation clamps to the actual top level (2 nodes), so the
        // deeper nodes draw the very next primes — nothing is wasted.
        let b = tree.first_child(tree.root()).unwrap();
        let c = tree.first_child(b).unwrap();
        assert_eq!(doc.label(c).self_label().to_u64(), Some(5));
    }

    #[test]
    fn opt1_reduces_max_label_size_on_wide_trees() {
        // Many top-level internal nodes: without Opt1 the *last* top-level
        // node gets a large prime that its subtree inherits.
        let mut src = String::from("<r>");
        for i in 0..60 {
            src.push_str(&format!("<s{i}><t/></s{i}>"));
        }
        src.push_str("</r>");
        let tree = parse(&src).unwrap();
        let plain = TopDownPrime::unoptimized().label(&tree).size_stats().max_bits;
        let opt1 = TopDownPrime::with_reserved(64).label(&tree).size_stats().max_bits;
        assert!(opt1 <= plain, "opt1 {opt1} vs plain {plain}");
    }

    #[test]
    fn opt2_shrinks_labels_on_leafy_trees() {
        // A flat record structure: most nodes are leaves.
        let tree = parse("<r><a><x/><y/><z/></a><b><x/><y/><z/></b></r>").unwrap();
        let plain = TopDownPrime::unoptimized().label(&tree).size_stats().max_bits;
        let opt2 = TopDownPrime::optimized().label(&tree).size_stats().max_bits;
        assert!(opt2 < plain, "opt2 {opt2} vs plain {plain}");
    }

    #[test]
    fn opt3_duplicate_siblings_share_labels() {
        // Figure 6: book with 3 identical author paths.
        let tree = parse("<book><author/><author/><author/><title/></book>").unwrap();
        let doc = TopDownPrime::with_options(PrimeOptions {
            combine_repeated_paths: true,
            ..Default::default()
        })
        .unwrap()
        .label(&tree);
        let authors: Vec<NodeId> = tree
            .element_children(tree.root())
            .filter(|&n| tree.tag(n) == Some("author"))
            .collect();
        assert_eq!(doc.label(authors[0]), doc.label(authors[1]));
        assert_eq!(doc.label(authors[0]), doc.label(authors[2]));
        // The non-duplicate sibling keeps its own label.
        let title = tree.element_children(tree.root()).find(|&n| tree.tag(n) == Some("title")).unwrap();
        assert_ne!(doc.label(title), doc.label(authors[0]));
        // Ancestor tests against the shared label still work.
        assert!(doc.label(tree.root()).is_ancestor_of(doc.label(authors[2])));
    }

    #[test]
    fn opt3_distinguishes_structurally_different_siblings() {
        let tree = parse("<r><a><x/></a><a><y/></a></r>").unwrap();
        let doc = TopDownPrime::with_options(PrimeOptions {
            combine_repeated_paths: true,
            ..Default::default()
        })
        .unwrap()
        .label(&tree);
        let kids: Vec<NodeId> = tree.element_children(tree.root()).collect();
        assert_ne!(doc.label(kids[0]), doc.label(kids[1]), "different shapes, different labels");
    }

    #[test]
    fn opt3_reduces_size_on_repetitive_documents() {
        let mut src = String::from("<lib>");
        for _ in 0..50 {
            src.push_str("<book><author/><title/><year/></book>");
        }
        src.push_str("</lib>");
        let tree = parse(&src).unwrap();
        let plain = TopDownPrime::unoptimized().label(&tree).size_stats().max_bits;
        let opt3 = TopDownPrime::with_options(PrimeOptions {
            combine_repeated_paths: true,
            ..Default::default()
        })
        .unwrap()
        .label(&tree)
        .size_stats()
        .max_bits;
        assert!(opt3 < plain / 2, "opt3 {opt3} vs plain {plain}");
    }

    #[test]
    fn parallel_labeling_is_bit_identical_to_recursive() {
        // Mixed shape: wide fan-out, a deep chain, leafy clusters, and more
        // top-level nodes than the Opt1 reservation covers (exercising the
        // reserved→general fallback the classifier models).
        let mut src = String::from("<r>");
        for i in 0..20 {
            src.push_str(&format!("<s{i}><m><x/><y/><z/></m><n/></s{i}>"));
        }
        src.push_str("<deep><d1><d2><d3><d4><d5/></d4></d3></d2></d1></deep></r>");
        let tree = parse(&src).unwrap();
        let schemes = [
            TopDownPrime::unoptimized(),
            TopDownPrime::with_reserved(4), // fewer than the 21 top nodes
            TopDownPrime::optimized(),
            TopDownPrime::with_options(PrimeOptions {
                leaf_powers_of_two: true,
                leaf_power_threshold: 2, // forces the Opt2 prime fallback
                reserved_top_primes: 8,
                ..Default::default()
            })
            .unwrap(),
        ];
        for (i, scheme) in schemes.iter().enumerate() {
            let seq = scheme.label_document_sequential(&tree);
            for threads in [1, 2, 8] {
                let par =
                    xp_par::with_threads(threads, || scheme.label_document_parallel(&tree));
                assert_eq!(
                    par.labels.nodes(),
                    seq.labels.nodes(),
                    "scheme {i} threads {threads}: insertion order"
                );
                for node in tree.elements() {
                    assert_eq!(
                        par.labels.label(node),
                        seq.labels.label(node),
                        "scheme {i} threads {threads} node {node}"
                    );
                }
                assert_eq!(par.leaf_counters, seq.leaf_counters, "scheme {i}");
                // The allocator must resume incremental updates from the
                // same position: the next primes drawn must agree.
                let (mut par, mut seq2) = (par, seq.clone());
                for _ in 0..4 {
                    assert_eq!(par.next_prime(), seq2.next_prime(), "scheme {i}");
                }
                assert_eq!(par.pool.handed_out(), seq2.pool.handed_out());
                assert_eq!(par.pool.reserved_remaining(), seq2.pool.reserved_remaining());
            }
        }
    }

    #[test]
    fn insert_child_unoptimized_relabels_only_new_node() {
        let mut tree = parse("<a><b><c/></b></a>").unwrap();
        let mut doc = TopDownPrime::unoptimized().label_document(&tree);
        let before = doc.labels.clone();
        let b = tree.first_child(tree.root()).unwrap();
        let c = tree.first_child(b).unwrap();
        let out = doc.insert_child(&mut tree, c, "new").unwrap();
        assert_eq!(out.relabeled_existing, 0);
        assert_eq!(out.total_relabeled(), 1);
        let diff = before.diff_count(&doc.labels);
        assert_eq!(diff.changed, 0);
        assert_eq!(diff.new_count, 1);
        // The new label is consistent with the whole document.
        exhaustive_ancestor_check(&tree, &doc.labels);
    }

    #[test]
    fn insert_child_optimized_relabels_former_leaf_parent() {
        let mut tree = parse("<a><b><c/></b></a>").unwrap();
        let mut doc = TopDownPrime::optimized().label_document(&tree);
        let before = doc.labels.clone();
        let b = tree.first_child(tree.root()).unwrap();
        let c = tree.first_child(b).unwrap();
        assert!(doc.labels.label(c).self_label().is_power_of_two());
        let out = doc.insert_child(&mut tree, c, "new").unwrap();
        // Paper: "the optimized prime number labeling scheme needs to
        // re-label 2 nodes ... the newly inserted node and its parent".
        assert_eq!(out.total_relabeled(), 2);
        let diff = before.diff_count(&doc.labels);
        assert_eq!(diff.changed, 1, "the parent traded 2^n for a prime");
        assert_eq!(diff.new_count, 1);
        assert!(doc.labels.label(c).self_label().is_odd());
        exhaustive_ancestor_check(&tree, &doc.labels);
    }

    #[test]
    fn insert_sibling_changes_no_existing_labels() {
        let mut tree = parse("<book><author/><author/><author/></book>").unwrap();
        let mut doc = TopDownPrime::unoptimized().label_document(&tree);
        let before = doc.labels.clone();
        let second = tree.element_children(tree.root()).nth(1).unwrap();
        let out = doc.insert_sibling_before(&mut tree, second, "author").unwrap();
        assert_eq!(out.relabeled_existing, 0);
        assert_eq!(before.diff_count(&doc.labels).changed, 0);
        exhaustive_ancestor_check(&tree, &doc.labels);
    }

    #[test]
    fn insert_parent_relabels_exactly_the_subtree() {
        let mut tree = parse("<a><b><c/><d/></b><e/></a>").unwrap();
        let mut doc = TopDownPrime::unoptimized().label_document(&tree);
        let before = doc.labels.clone();
        let b = tree.first_child(tree.root()).unwrap();
        let out = doc.insert_parent(&mut tree, b, "wrap").unwrap();
        // b, c, d relabeled; e and the root untouched.
        assert_eq!(out.relabeled_existing, 3);
        let diff = before.diff_count(&doc.labels);
        assert_eq!(diff.changed, 3);
        assert_eq!(diff.new_count, 1);
        exhaustive_ancestor_check(&tree, &doc.labels);
    }

    #[test]
    fn delete_relabels_nothing() {
        let mut tree = parse("<a><b><c/><d/></b><e/></a>").unwrap();
        let mut doc = TopDownPrime::unoptimized().label_document(&tree);
        let before = doc.labels.clone();
        let b = tree.first_child(tree.root()).unwrap();
        let dropped = doc.delete(&mut tree, b).unwrap();
        assert_eq!(dropped, 3);
        // Remaining nodes keep their labels bit for bit.
        for node in tree.elements() {
            assert_eq!(before.label(node), doc.labels.label(node));
        }
    }

    #[test]
    fn repeated_insertions_never_reuse_primes() {
        let mut tree = parse("<a><b/></a>").unwrap();
        let mut doc = TopDownPrime::unoptimized().label_document(&tree);
        let b = tree.first_child(tree.root()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for node in tree.elements() {
            seen.insert(doc.labels.label(node).self_label().clone());
        }
        for _ in 0..50 {
            let out = doc.insert_child(&mut tree, b, "x").unwrap();
            let s = doc.labels.label(out.node).self_label().clone();
            assert!(seen.insert(s), "self-label reused");
        }
        exhaustive_ancestor_check(&tree, &doc.labels);
    }

    #[test]
    fn opt3_documents_reject_incremental_updates() {
        let mut tree = parse("<a><b/><b/></a>").unwrap();
        let mut doc = TopDownPrime::fully_optimized().label_document(&tree);
        let b = tree.first_child(tree.root()).unwrap();
        assert_eq!(doc.insert_child(&mut tree, b, "x").unwrap_err(), Error::NotUpdatable);
        assert_eq!(doc.delete(&mut tree, b).unwrap_err(), Error::NotUpdatable);
    }

    #[test]
    fn with_options_rejects_oversized_leaf_threshold() {
        let err = TopDownPrime::with_options(PrimeOptions {
            leaf_power_threshold: 64,
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err, Error::LeafPowerThresholdTooLarge { threshold: 64 });
        assert!(TopDownPrime::with_options(PrimeOptions {
            leaf_power_threshold: 63,
            ..Default::default()
        })
        .is_ok());
    }

    #[test]
    fn mutations_reject_the_root_and_unknown_nodes() {
        let mut tree = parse("<a><b/></a>").unwrap();
        let mut doc = TopDownPrime::unoptimized().label_document(&tree);
        let root = tree.root();
        assert_eq!(
            doc.insert_sibling_before(&mut tree, root, "x").unwrap_err(),
            Error::RootAnchor(root)
        );
        assert_eq!(doc.insert_parent(&mut tree, root, "x").unwrap_err(), Error::RootAnchor(root));
        // A node from a different tree is not covered by this document.
        let other = parse("<z><y/><w/><v/></z>").unwrap();
        let stranger = other.last_child(other.root()).unwrap();
        assert_eq!(
            doc.insert_child(&mut tree, stranger, "x").unwrap_err(),
            Error::UnknownNode(stranger)
        );
    }
}
