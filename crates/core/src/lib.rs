//! # xp-prime — the prime-number labeling scheme (the paper's contribution)
//!
//! Implements Wu, Lee & Hsu, *A Prime Number Labeling Scheme for Dynamic
//! Ordered XML Trees* (ICDE 2004), in full:
//!
//! * [`topdown::TopDownPrime`] — the paper's default scheme (§3, Figure 2):
//!   every non-leaf node gets a unique prime **self-label**; a node's label
//!   is the product of its parent's label and its self-label; ancestorship
//!   is divisibility (Property 2/3). Optimizations are configurable via
//!   [`topdown::PrimeOptions`]:
//!   **Opt1** reserves the smallest primes for the top tree levels,
//!   **Opt2** labels the n-th leaf child `2^n` (with the odd-label ancestor
//!   test of Property 3 and the threshold fallback of §3.2), and
//!   **Opt3** collapses repeated sibling subtrees (Figure 6).
//! * [`bottomup::BottomUpPrime`] — the bottom-up variant (Figure 1): leaves
//!   get primes, parents the product of their children (Property 2).
//! * [`size_model`] — the analytic maximum-label-size formulas (1)–(3) of
//!   §3.1 behind Figures 4 and 5.
//! * [`crt`] — Chinese-Remainder solvers (Theorem 1): the extended-Euclid
//!   solver and the paper's Euler-totient formulation.
//! * [`sc`] — the **SC table** (§4): simultaneous-congruence values that fold
//!   document order into one number per chunk of nodes, plus the low-cost
//!   order-sensitive update protocol of §4.2.
//! * [`ordered::OrderedPrimeDoc`] — the full ordered document: top-down
//!   labels + SC table + insertion/deletion with relabel accounting, the
//!   object the query engine (`xp-query`) and Figure 18 run on.
//! * [`decompose::DecomposedPrimeDoc`] — the tree-decomposition
//!   optimization §3.2 adopts from \[10\] for trees "with great depths":
//!   per-subtree labeling plus a labeled global tree, with a label-only
//!   cross-subtree ancestor test.
//!
//! ```
//! use xp_prime::topdown::TopDownPrime;
//! use xp_labelkit::{Scheme, LabelOps};
//! use xp_xmltree::parse;
//!
//! let tree = parse("<book><author/><author/></book>").unwrap();
//! let doc = TopDownPrime::unoptimized().label(&tree);
//! let book = tree.root();
//! let author = tree.first_child(book).unwrap();
//! assert!(doc.label(book).is_ancestor_of(doc.label(author)));
//! assert!(!doc.label(author).is_ancestor_of(doc.label(book)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Failures reachable from untrusted input or runtime mutation surface as
// typed errors (see `error`); the panicking accessors that remain are
// documented indexing-style invariants, individually allow-listed.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod bottomup;
pub mod crt;
pub mod decompose;
pub mod dynamic;
pub mod error;
pub mod label;
pub mod ordered;
pub mod path;
pub mod sc;
pub mod size_model;
pub mod stream;
pub mod topdown;

pub use dynamic::DynamicPrime;
pub use error::Error;

/// The dynamic prime scheme promoted to the shard facade (§3.2 subtree
/// decomposition as the unit of scale): each shard labels its subtree with
/// an independent `DynamicPrime` instance, so the small primes are reused
/// per shard and mutations relabel at most one shard.
pub type ShardedPrime = xp_labelkit::ShardedScheme<DynamicPrime>;
pub use label::PrimeLabel;
pub use ordered::OrderedPrimeDoc;
pub use sc::ScTable;
pub use topdown::{PrimeOptions, TopDownPrime};
