//! The SC table (§4): simultaneous-congruence values that capture global
//! document order, one value per chunk of nodes.
//!
//! Each record holds the CRT solution `SC` for the congruences
//! `SC ≡ order(v) (mod self(v))` over its chunk's nodes, plus the chunk's
//! maximum self-label (Figure 10's layout). A node's order number is
//! recovered as `SC mod self(v)`; an order-sensitive insertion shifts the
//! order numbers after the insertion point and re-solves exactly the records
//! that cover shifted nodes — that is the paper's low-cost update claim
//! (Figure 18 counts one "relabeling" per touched record).
//!
//! Maintenance is **incremental** (DESIGN.md §7). Each record caches its
//! order column (so scans over clean records are pure `u64` passes — no
//! bignum residue recomputation) and a precomputed CRT basis of idempotents
//! `eᵢ ≡ 1 (mod mᵢ)`, `eᵢ ≡ 0 (mod mⱼ≠ᵢ)`. An order shift then updates the
//! SC value by delta arithmetic — `SC += Σ Δrᵢ·eᵢ (mod C)` — instead of
//! re-solving the whole system, and appending a member folds one congruence
//! in via [`crt::extend`] against the cached product.

use crate::crt::{self, CrtError};
use std::collections::HashMap;
use xp_bignum::checked::{mul_within, BudgetError};
use xp_bignum::reduce::Reducer64;
use xp_bignum::{modular, prodtree, UBig};
use xp_testkit::fault::Injected;
use xp_testkit::faultpoint;

/// One SC record: a chunk of nodes folded into a single congruence value.
#[derive(Debug, Clone)]
pub struct ScRecord {
    /// Self-labels (CRT moduli) of the chunk's members, in insertion order.
    members: Vec<u64>,
    /// Cached order column: `orders[i] == sc mod members[i]`, maintained
    /// incrementally so reads and the insert pre-scan never divide.
    orders: Vec<u64>,
    /// Product of the members (the CRT modulus `C`).
    product: UBig,
    /// The simultaneous-congruence value.
    sc: UBig,
    /// Largest self-label in the chunk — the paper's per-record index key.
    max_self: u64,
    /// CRT basis: `basis[i] = Mᵢ·(Mᵢ⁻¹ mod mᵢ) mod C` with `Mᵢ = C/mᵢ` —
    /// the idempotent that is 1 modulo `members[i]` and 0 modulo every other
    /// member. Built once per member and journaled with the record.
    basis: Vec<UBig>,
}

/// Builds the CRT basis for a member set with the given product: for each
/// `mᵢ`, the cofactor `Mᵢ = C/mᵢ` times its inverse modulo `mᵢ`. A
/// non-invertible cofactor means `mᵢ` shares a factor with another member;
/// the error names the real conflicting pair.
fn build_basis(members: &[u64], product: &UBig) -> Result<Vec<UBig>, CrtError> {
    members
        .iter()
        .map(|&m| {
            if m == 0 {
                return Err(CrtError::ZeroModulus);
            }
            if m == 1 {
                // Everything is ≡ 0 (mod 1): the zero element satisfies both
                // basis congruences vacuously (1 is in-contract for CRT,
                // though useless as a self-label).
                return Ok(UBig::zero());
            }
            // One Möller–Granlund context per member covers both the
            // cofactor division and its residue — the basis build is all
            // divisions by the same small m.
            let red = Reducer64::new(m);
            let (cofactor, _) = red.divrem(product);
            let inv = modular::mod_inverse_u64(red.rem(&cofactor), m)
                .ok_or_else(|| basis_conflict(members, m))?;
            Ok(cofactor.mul_u64(inv) % product)
        })
        .collect()
}

/// Names the pair that keeps `m`'s cofactor from being invertible: the first
/// other member sharing a factor with `m` (a duplicate of `m` counts), or —
/// if no pair explains it — an inconsistent system.
fn basis_conflict(members: &[u64], m: u64) -> CrtError {
    let mut skipped_self = false;
    for &a in members {
        if a == m && !skipped_self {
            skipped_self = true;
            continue;
        }
        if !modular::coprime(&UBig::from(a), &UBig::from(m)) {
            return CrtError::NotCoprime { a, b: m };
        }
    }
    CrtError::Inconsistent { modulus: m }
}

/// The canonical CRT solution as a basis combination: `Σ eᵢ·rᵢ mod C`.
fn sc_from_basis(basis: &[UBig], orders: &[u64], product: &UBig) -> UBig {
    let mut sc = UBig::zero();
    for (e, &r) in basis.iter().zip(orders) {
        sc += e.mul_u64(r);
    }
    sc % product
}

impl ScRecord {
    /// The record's SC value.
    pub fn sc(&self) -> &UBig {
        &self.sc
    }

    /// The record's maximum self-label (Figure 10's "max prime" column).
    pub fn max_self_label(&self) -> u64 {
        self.max_self
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the record covers nothing (never persists).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The chunk's member self-labels (CRT moduli), in insertion order.
    pub fn members(&self) -> &[u64] {
        &self.members
    }

    /// The cached order column (`sc mod memberᵢ`, maintained incrementally).
    pub fn cached_orders(&self) -> &[u64] {
        &self.orders
    }

    /// The chunk's modulus product `C = Π members`.
    pub fn product(&self) -> &UBig {
        &self.product
    }

    /// The precomputed CRT basis (see [`ScRecord`] field docs).
    pub fn basis(&self) -> &[UBig] {
        &self.basis
    }

    /// Rebuilds every derived column — product (via the balanced product
    /// tree), SC, basis, max key — from `members` and the given order
    /// column: the slow path for member-set changes (relabel, removal).
    /// Pure order shifts use [`ScRecord::shift_from`] instead.
    fn rebuild(&mut self, orders: Vec<u64>, budget: u64) -> Result<(), ScError> {
        if orders.len() != self.members.len() {
            return Err(CrtError::LengthMismatch.into());
        }
        self.product = prodtree::product_within(&self.members, budget)?;
        self.basis = build_basis(&self.members, &self.product)?;
        self.sc = sc_from_basis(&self.basis, &orders, &self.product);
        self.orders = orders;
        self.max_self = self.members.iter().copied().max().unwrap_or(0);
        Ok(())
    }

    /// Shifts every cached order `>= threshold` up by one, updating SC by
    /// delta arithmetic over the precomputed basis: `SC += Σ eᵢ (mod C)` for
    /// the shifted members. No division, no re-solve.
    fn shift_from(&mut self, threshold: u64) {
        let mut delta = UBig::zero();
        for (o, e) in self.orders.iter_mut().zip(&self.basis) {
            if *o >= threshold {
                *o += 1;
                delta += e;
            }
        }
        if !delta.is_zero() {
            self.sc = (&self.sc + &delta) % &self.product;
        }
    }

    /// Appends a member by folding one congruence into the cached solution
    /// ([`crt::extend`] against the cached product) and re-targeting the
    /// basis to the widened modulus: each existing element picks up the
    /// factor `m·(m⁻¹ mod mᵢ)`, which preserves `≡1 (mod mᵢ)` and zeroes it
    /// modulo the newcomer; the newcomer's own element is
    /// `C·(C⁻¹ mod m)`, already canonical below `C·m`.
    fn append_member(&mut self, m: u64, order: u64, budget: u64) -> Result<(), ScError> {
        let new_product = mul_within(&self.product, &UBig::from(m), budget)?;
        for (e, &mi) in self.basis.iter_mut().zip(&self.members) {
            // mi == 1 keeps its zero element; any factor works, so skip the
            // (undefined) inverse.
            let inv = if mi == 1 {
                1
            } else {
                modular::mod_inverse_u64(m % mi, mi)
                    .ok_or(CrtError::NotCoprime { a: mi, b: m })?
            };
            let mut widened = e.mul_u64(m);
            widened.mul_u64_assign(inv);
            *e = widened % &new_product;
        }
        if m == 1 {
            // ≡ 0 (mod 1) holds for any SC: zero element, solution unchanged.
            self.basis.push(UBig::zero());
        } else {
            let inv = modular::mod_inverse_u64(Reducer64::new(m).rem(&self.product), m)
                .ok_or_else(|| basis_conflict(&self.members, m))?;
            self.basis.push(self.product.mul_u64(inv));
            self.sc = crt::extend(&self.sc, &self.product, m, order)?;
        }
        self.product = new_product;
        self.members.push(m);
        self.orders.push(order);
        self.max_self = self.max_self.max(m);
        Ok(())
    }

    fn order_of(&self, self_label: u64) -> Option<u64> {
        let i = self.members.iter().position(|&m| m == self_label)?;
        Some(self.orders[i])
    }
}

/// Report of one order-sensitive insertion into the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScInsertReport {
    /// SC records whose value changed (re-solved CRT systems). The paper
    /// counts each as one relabeling in Figure 18.
    pub records_updated: usize,
}

/// Errors from SC-table maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScError {
    /// The underlying congruence system was unsolvable.
    Crt(CrtError),
    /// A node's order number would reach its self-label, after which
    /// `SC mod self` can no longer recover it (the residue is only defined
    /// below the modulus — a constraint the paper leaves implicit). The
    /// caller must relabel this node with a larger prime
    /// ([`crate::OrderedPrimeDoc`] does so automatically).
    OrderOverflow {
        /// The too-small self-label.
        self_label: u64,
        /// The order number that no longer fits.
        order: u64,
    },
    /// The self-label is already covered by the table (self-labels are CRT
    /// moduli and must be unique).
    DuplicateSelfLabel(u64),
    /// The self-label is not covered by the table.
    UnknownSelfLabel(u64),
    /// `chunk_capacity` was 0: a record must hold at least one node.
    InvalidChunkCapacity,
    /// A record's modulus product exceeded the table's bit-length budget
    /// (see [`ScTable::set_product_bit_budget`]).
    Budget(BudgetError),
    /// An armed [`xp_testkit::fault`] point fired. If it fired mid-mutation,
    /// [`ScTable::needs_recovery`] is `true` and [`ScTable::recover`] rolls
    /// the table back.
    FaultInjected(&'static str),
    /// A previous mutation failed partway and its journal is still open:
    /// reads through checked paths ([`ScTable::try_order_of`]) refuse to
    /// answer until [`ScTable::recover`] rolls the table back.
    NeedsRecovery,
}

impl From<CrtError> for ScError {
    fn from(e: CrtError) -> Self {
        ScError::Crt(e)
    }
}

impl From<BudgetError> for ScError {
    fn from(e: BudgetError) -> Self {
        match e {
            BudgetError::FaultInjected(site) => ScError::FaultInjected(site),
            e => ScError::Budget(e),
        }
    }
}

impl From<Injected> for ScError {
    fn from(e: Injected) -> Self {
        ScError::FaultInjected(e.site)
    }
}

impl std::fmt::Display for ScError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScError::Crt(e) => write!(f, "{e}"),
            ScError::OrderOverflow { self_label, order } => {
                write!(f, "order {order} no longer fits under self-label {self_label}")
            }
            ScError::DuplicateSelfLabel(m) => write!(f, "self-label {m} already covered"),
            ScError::UnknownSelfLabel(m) => write!(f, "self-label {m} not covered"),
            ScError::InvalidChunkCapacity => write!(f, "chunks must hold at least one node"),
            ScError::Budget(e) => write!(f, "{e}"),
            ScError::FaultInjected(site) => write!(f, "injected fault at {site}"),
            ScError::NeedsRecovery => {
                write!(f, "table has an open journal; call recover() before reading")
            }
        }
    }
}

impl std::error::Error for ScError {}

/// The SC table: global document order for a set of coprime self-labels.
///
/// ```
/// use xp_prime::ScTable;
///
/// // Figure 9: self-labels 2,3,5,7,11,13 at orders 1..=6 fold into 29243.
/// let items = [(2, 1), (3, 2), (5, 3), (7, 4), (11, 5), (13, 6)];
/// let table = ScTable::build(10, &items).unwrap();
/// assert_eq!(table.records()[0].sc().to_string(), "29243");
/// assert_eq!(table.order_of(5), Some(3)); // 29243 mod 5
/// ```
#[derive(Debug, Clone)]
pub struct ScTable {
    chunk_capacity: usize,
    records: Vec<ScRecord>,
    /// self-label → record index (the paper navigates by max-prime ranges;
    /// an exact map is equivalent and stays correct after insertions).
    locator: HashMap<u64, usize>,
    /// Upper bound on any covered order number (exact after build/insert,
    /// conservative after removals, which never shift orders). Lets an
    /// insertion past every covered order skip the shift scan entirely.
    max_order: u64,
    /// Ceiling on any record's modulus product, in bits.
    product_bit_budget: u64,
    /// In-memory write-ahead journal for the in-flight mutation.
    journal: Journal,
}

/// Default ceiling on a record's modulus product: 1 Mibit. A chunk of k
/// self-labels costs ≈ Σ log₂(mᵢ) bits, so this allows tens of thousands of
/// 64-bit members per record — far past any sane chunk capacity — while
/// stopping runaway growth long before it exhausts memory.
pub const DEFAULT_PRODUCT_BIT_BUDGET: u64 = 1 << 20;

/// Pre-images of everything an in-flight mutation touches, captured before
/// the first write. A mutation that fails partway (an injected fault, an
/// unsolvable system) leaves the journal open; [`ScTable::recover`] replays
/// it backwards to restore the pre-mutation table.
#[derive(Debug, Clone, Default)]
struct Journal {
    /// `true` while a mutation is in flight (set by `begin`, cleared by
    /// `commit` — or left standing by a failure).
    active: bool,
    /// Number of records before the mutation; appended records are dropped
    /// on recovery by truncating to this length.
    record_count: usize,
    /// `(index, pre-image)` of each pre-existing record touched.
    records: Vec<(usize, ScRecord)>,
    /// Indices already captured in `records` — membership is checked once
    /// per touched record, and a linear scan of `records` would make a
    /// document-order shift (which touches every following record)
    /// quadratic in the table size.
    journaled: std::collections::HashSet<usize>,
    /// `(self-label, pre-image)` of each locator entry touched; `None`
    /// means the key was absent.
    locator: Vec<(u64, Option<usize>)>,
}

impl ScTable {
    /// Builds a table from `(self_label, order)` pairs, chunking every
    /// `chunk_capacity` consecutive pairs into one SC record (the paper's
    /// §5.4 experiment uses capacity 5).
    ///
    /// Self-labels must be pairwise coprime (Theorem 1), > 1, and each
    /// strictly greater than its order number (so `SC mod self` recovers the
    /// order — automatically true when primes are assigned in document
    /// order, since the n-th prime exceeds n).
    pub fn build(chunk_capacity: usize, items: &[(u64, u64)]) -> Result<Self, ScError> {
        if chunk_capacity == 0 {
            return Err(ScError::InvalidChunkCapacity);
        }
        for &(m, o) in items {
            if o >= m {
                return Err(ScError::OrderOverflow { self_label: m, order: o });
            }
        }
        let mut table = ScTable {
            chunk_capacity,
            records: Vec::with_capacity(items.len().div_ceil(chunk_capacity)),
            locator: HashMap::with_capacity(items.len()),
            max_order: items.iter().map(|&(_, o)| o).max().unwrap_or(0),
            product_bit_budget: DEFAULT_PRODUCT_BIT_BUDGET,
            journal: Journal::default(),
        };
        // Each chunk's record — the product tree, CRT basis, and SC fold —
        // depends only on that chunk, so records solve concurrently on the
        // xp_par pool. Merging in chunk order afterwards reproduces the
        // sequential error precedence exactly: chunk i's solve error
        // surfaces before chunk i's duplicate-label check, which surfaces
        // before anything about chunk i+1. Fault-injection state (hit
        // counters, PRNG) is per-thread, so when any site is armed the
        // chunks solve sequentially on this thread instead — an Nth trigger
        // must count `bignum.mul` hits in document order.
        let budget = table.product_bit_budget;
        let solve = |chunk: &[(u64, u64)]| -> Result<ScRecord, ScError> {
            let members: Vec<u64> = chunk.iter().map(|&(m, _)| m).collect();
            let orders: Vec<u64> = chunk.iter().map(|&(_, o)| o).collect();
            let product = prodtree::product_within(&members, budget)?;
            let basis = build_basis(&members, &product)?;
            let sc = sc_from_basis(&basis, &orders, &product);
            Ok(ScRecord {
                max_self: members.iter().copied().max().unwrap_or(0),
                members,
                orders,
                product,
                sc,
                basis,
            })
        };
        let chunks: Vec<&[(u64, u64)]> = items.chunks(chunk_capacity).collect();
        let solved: Vec<Result<ScRecord, ScError>> = if xp_testkit::fault::active() {
            chunks.iter().map(|chunk| solve(chunk)).collect()
        } else {
            xp_par::par_map(&chunks, |chunk| solve(chunk))
        };
        for record in solved {
            let record = record?;
            let idx = table.records.len();
            for &m in &record.members {
                if table.locator.insert(m, idx).is_some() {
                    return Err(ScError::DuplicateSelfLabel(m));
                }
            }
            table.records.push(record);
        }
        Ok(table)
    }

    /// Replaces the ceiling (in bits) on any record's modulus product;
    /// mutations that would exceed it fail with [`ScError::Budget`] instead
    /// of allocating without bound. Default:
    /// [`DEFAULT_PRODUCT_BIT_BUDGET`].
    pub fn set_product_bit_budget(&mut self, bits: u64) {
        self.product_bit_budget = bits;
    }

    /// `true` iff a mutation failed partway and its journal is still open;
    /// unchecked reads ([`ScTable::order_of`]) are undefined until
    /// [`ScTable::recover`] runs (the next mutation also recovers
    /// automatically). Checked read paths ([`ScTable::try_order_of`]) refuse
    /// with [`ScError::NeedsRecovery`] instead of answering from the
    /// half-mutated table.
    pub fn needs_recovery(&self) -> bool {
        self.journal.active
    }

    /// Rolls back the in-flight mutation recorded in the journal, restoring
    /// the table to its pre-mutation state. Returns `true` if there was
    /// anything to roll back.
    pub fn recover(&mut self) -> bool {
        if !self.journal.active {
            return false;
        }
        let journal = std::mem::take(&mut self.journal);
        self.records.truncate(journal.record_count);
        for (idx, pre) in journal.records {
            // `journal_record` only captures pre-existing records, so the
            // index survives the truncation above.
            self.records[idx] = pre;
        }
        for (key, pre) in journal.locator {
            match pre {
                Some(idx) => self.locator.insert(key, idx),
                None => self.locator.remove(&key),
            };
        }
        true
    }

    fn begin_journal(&mut self) {
        self.journal.active = true;
        self.journal.record_count = self.records.len();
        self.journal.records.clear();
        self.journal.journaled.clear();
        self.journal.locator.clear();
    }

    fn commit_journal(&mut self) {
        self.journal = Journal::default();
    }

    /// Captures the pre-image of record `idx` (first touch only; appended
    /// records are handled by truncation).
    fn journal_record(&mut self, idx: usize) {
        if idx < self.journal.record_count && self.journal.journaled.insert(idx) {
            self.journal.records.push((idx, self.records[idx].clone()));
        }
    }

    /// Captures the pre-image of the locator entry for `key` (first touch
    /// only).
    fn journal_locator(&mut self, key: u64) {
        if !self.journal.locator.iter().any(|&(k, _)| k == key) {
            self.journal.locator.push((key, self.locator.get(&key).copied()));
        }
    }

    /// Number of covered nodes.
    pub fn len(&self) -> usize {
        self.locator.len()
    }

    /// `true` iff no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.locator.is_empty()
    }

    /// Number of SC records.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// The records, for display (Figures 10 and 12 print `(SC, max prime)`).
    pub fn records(&self) -> &[ScRecord] {
        &self.records
    }

    /// The order number of the node with this self-label, or `None` if the
    /// label is not covered. A pure `u64` read off the cached order column.
    ///
    /// Answers are undefined while [`ScTable::needs_recovery`] is `true`;
    /// use [`ScTable::try_order_of`] on paths that may read a table whose
    /// last mutation failed.
    pub fn order_of(&self, self_label: u64) -> Option<u64> {
        let &idx = self.locator.get(&self_label)?;
        self.records[idx].order_of(self_label)
    }

    /// Checked variant of [`ScTable::order_of`]: refuses with
    /// [`ScError::NeedsRecovery`] while the journal of a failed mutation is
    /// still open, instead of reading the half-mutated table.
    pub fn try_order_of(&self, self_label: u64) -> Result<Option<u64>, ScError> {
        if self.needs_recovery() {
            return Err(ScError::NeedsRecovery);
        }
        Ok(self.order_of(self_label))
    }

    /// The index of the record covering this self-label, if any.
    pub fn locate(&self, self_label: u64) -> Option<usize> {
        self.locator.get(&self_label).copied()
    }

    /// All `(self_label, order)` pairs, unordered.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.records
            .iter()
            .flat_map(|r| r.members.iter().copied().zip(r.orders.iter().copied()))
    }

    /// Verifies every record's cached columns against their definitions —
    /// `orders[i] == SC mod mᵢ`, `product == Π mᵢ`, `basis[i] ≡ 1 (mod mᵢ)`
    /// and `≡ 0` modulo every other member, `SC < product` — plus the
    /// locator and the `max_order` bound. The incremental maintenance paths
    /// must preserve these exactly; the differential tests call this after
    /// every mutation and recovery. Costs O(n) bignum divisions.
    pub fn check_cached_columns(&self) -> Result<(), String> {
        for (idx, r) in self.records.iter().enumerate() {
            if r.orders.len() != r.members.len() || r.basis.len() != r.members.len() {
                return Err(format!("record {idx}: ragged cached columns"));
            }
            if prodtree::product(&r.members) != r.product {
                return Err(format!("record {idx}: cached product is not Π members"));
            }
            if !r.members.is_empty() && r.sc >= r.product {
                return Err(format!("record {idx}: SC outside its modulus"));
            }
            if r.max_self != r.members.iter().copied().max().unwrap_or(0) {
                return Err(format!("record {idx}: stale max_self key"));
            }
            // One reducer per member, reused across the SC check and the
            // i×j basis sweep below — the check is O(k²) residues by the
            // same k divisors.
            let reducers: Vec<Reducer64> = r.members.iter().map(|&m| Reducer64::new(m)).collect();
            for (i, (&m, &o)) in r.members.iter().zip(&r.orders).enumerate() {
                if reducers[i].rem(&r.sc) != o {
                    return Err(format!("record {idx}: cached order of member {m} is {o}, SC says {}", reducers[i].rem(&r.sc)));
                }
                if o > self.max_order {
                    return Err(format!("member {m}: order {o} above the max_order bound {}", self.max_order));
                }
                if self.locator.get(&m) != Some(&idx) {
                    return Err(format!("locator does not map member {m} to record {idx}"));
                }
                for (j, &mj) in r.members.iter().enumerate() {
                    let want = u64::from(i == j);
                    if reducers[j].rem(&r.basis[i]) != want % mj {
                        return Err(format!("record {idx}: basis[{i}] mod {mj} != {want}"));
                    }
                }
                if r.basis[i] >= r.product {
                    return Err(format!("record {idx}: basis[{i}] outside the modulus"));
                }
            }
        }
        let covered: usize = self.records.iter().map(|r| r.members.len()).sum();
        if covered != self.locator.len() {
            return Err(format!("locator holds {} labels, records cover {covered}", self.locator.len()));
        }
        Ok(())
    }

    /// Inserts a node with a fresh (unused, coprime) self-label at order
    /// position `order`: every covered node whose order is `>= order` shifts
    /// up by one, and exactly the records covering shifted nodes (plus the
    /// record receiving the new member) are re-solved.
    ///
    /// Fails with [`ScError::OrderOverflow`] — before mutating anything — if
    /// a shifted node's new order would reach its self-label; relabel that
    /// node with a larger prime and retry. A failure *during* the mutation
    /// (an injected fault, a budget overrun) leaves the journal open:
    /// [`ScTable::needs_recovery`] turns `true` and [`ScTable::recover`]
    /// restores the pre-insert table.
    pub fn insert(&mut self, self_label: u64, order: u64) -> Result<ScInsertReport, ScError> {
        self.recover();
        faultpoint!("sc.insert")?;
        if self.locator.contains_key(&self_label) {
            return Err(ScError::DuplicateSelfLabel(self_label));
        }
        if order >= self_label {
            return Err(ScError::OrderOverflow { self_label, order });
        }
        // Existing orders shift only when the new one lands at or below the
        // current maximum; a tail append skips this scan outright. When it
        // does run, it is a pure u64 pass over the cached order columns — no
        // bignum residue is recomputed for clean records.
        let shifts_orders = order <= self.max_order && !self.is_empty();
        if shifts_orders {
            for record in &self.records {
                for (&m, &o) in record.members.iter().zip(&record.orders) {
                    if o >= order && o + 1 >= m {
                        return Err(ScError::OrderOverflow { self_label: m, order: o + 1 });
                    }
                }
            }
        }

        // Pre-validate against the receiving record so a coprimality error
        // cannot leave the table half-mutated.
        if let Some(last) = self.records.last() {
            if last.len() < self.chunk_capacity {
                for &m in &last.members {
                    if !xp_bignum::modular::coprime(&UBig::from(self_label), &UBig::from(m)) {
                        return Err(CrtError::NotCoprime { a: self_label, b: m }.into());
                    }
                }
            }
        }

        self.begin_journal();

        // Choose the receiving record: the paper appends to the record with
        // the largest max prime (the newest), starting a fresh record when
        // it is full.
        let target = match self.records.last() {
            Some(last) if last.len() < self.chunk_capacity => self.records.len() - 1,
            _ => {
                self.records.push(ScRecord {
                    members: Vec::new(),
                    orders: Vec::new(),
                    product: UBig::one(),
                    sc: UBig::zero(),
                    max_self: 0,
                    basis: Vec::new(),
                });
                self.records.len() - 1
            }
        };

        let mut updated = 0usize;
        let budget = self.product_bit_budget;
        for idx in 0..self.records.len() {
            let receiving = idx == target;
            let shifts_here =
                shifts_orders && self.records[idx].orders.iter().any(|&o| o >= order);
            if !receiving && !shifts_here {
                continue;
            }
            self.journal_record(idx);
            faultpoint!("sc.insert.record")?;
            let record = &mut self.records[idx];
            if shifts_here {
                record.shift_from(order);
            }
            if receiving {
                record.append_member(self_label, order, budget)?;
            }
            updated += 1;
        }
        self.journal_locator(self_label);
        self.locator.insert(self_label, target);
        // A shift pushes the previous maximum up by one; a tail append sets
        // it. Updated only here, after the last fallible step, so rollback
        // never needs to restore it.
        self.max_order =
            if shifts_orders { self.max_order + 1 } else { self.max_order.max(order) };
        self.commit_journal();
        Ok(ScInsertReport { records_updated: updated })
    }

    /// Swaps a member's self-label for a new one (same order number): the
    /// escape hatch for [`ScError::OrderOverflow`]. Exactly one record is
    /// re-solved. The new label must be coprime with the record's other
    /// members and larger than the member's order.
    pub fn replace_self_label(&mut self, old: u64, new: u64) -> Result<(), ScError> {
        self.recover();
        if self.locator.contains_key(&new) {
            return Err(ScError::DuplicateSelfLabel(new));
        }
        let idx = *self.locator.get(&old).ok_or(ScError::UnknownSelfLabel(old))?;
        let order = self.records[idx].order_of(old).ok_or(ScError::UnknownSelfLabel(old))?;
        if order >= new {
            return Err(ScError::OrderOverflow { self_label: new, order });
        }
        for &m in &self.records[idx].members {
            if m != old && !modular::coprime(&UBig::from(new), &UBig::from(m)) {
                return Err(CrtError::NotCoprime { a: new, b: m }.into());
            }
        }

        self.begin_journal();
        self.journal_record(idx);
        let budget = self.product_bit_budget;
        let record = &mut self.records[idx];
        let orders = record.orders.clone();
        for m in &mut record.members {
            if *m == old {
                *m = new;
            }
        }
        faultpoint!("sc.relabel")?;
        let record = &mut self.records[idx];
        record.rebuild(orders, budget)?;
        self.journal_locator(old);
        self.journal_locator(new);
        self.locator.remove(&old);
        self.locator.insert(new, idx);
        self.commit_journal();
        Ok(())
    }

    /// Storage footprint of the table in bits: for each record, the SC
    /// value plus the max-prime index key (Figure 10's two columns).
    ///
    /// The paper never charges this cost against the scheme; exposing it
    /// lets the `ablation_sc_storage` experiment do the honest accounting:
    /// a record over k self-labels stores ≈ Σ log(mᵢ) bits, so the whole
    /// table costs about as much as one extra label per node, independent
    /// of chunk size.
    pub fn storage_bits(&self) -> u64 {
        self.records
            .iter()
            .map(|r| {
                let sc_bits = r.sc.bit_len().max(1);
                let key_bits = u64::from(64 - r.max_self.max(1).leading_zeros());
                sc_bits + key_bits
            })
            .sum()
    }

    /// Serializes the table: chunk capacity, then per record the member
    /// list and the SC value — the persistent form of Figure 10's table.
    pub fn encode(&self) -> Vec<u8> {
        use xp_labelkit::codec::{write_bytes, write_varint};
        let mut out = Vec::new();
        write_varint(&mut out, self.chunk_capacity as u64);
        write_varint(&mut out, self.records.len() as u64);
        for record in &self.records {
            write_varint(&mut out, record.members.len() as u64);
            for &m in &record.members {
                write_varint(&mut out, m);
            }
            write_bytes(&mut out, &record.sc.to_le_bytes());
        }
        out
    }

    /// Deserializes a table produced by [`ScTable::encode`]. The product
    /// and index columns are recomputed; each record's SC value is checked
    /// against its modulus.
    pub fn decode(mut input: &[u8]) -> Result<Self, xp_labelkit::CodecError> {
        use xp_labelkit::codec::{read_bytes, read_varint, CodecError};
        let input = &mut input;
        let chunk_capacity = read_varint(input)? as usize;
        if chunk_capacity == 0 {
            return Err(CodecError::Corrupt("zero chunk capacity"));
        }
        let record_count = read_varint(input)? as usize;
        let mut records = Vec::with_capacity(record_count.min(1 << 16));
        let mut locator = HashMap::new();
        for idx in 0..record_count {
            let len = read_varint(input)? as usize;
            let mut members = Vec::with_capacity(len.min(1 << 12));
            for _ in 0..len {
                let m = read_varint(input)?;
                if m < 2 {
                    return Err(CodecError::Corrupt("self-label below 2"));
                }
                if locator.insert(m, idx).is_some() {
                    return Err(CodecError::Corrupt("duplicate self-label"));
                }
                members.push(m);
            }
            let product = prodtree::product(&members);
            let sc = UBig::from_le_bytes(read_bytes(input)?);
            if !members.is_empty() && sc >= product {
                return Err(CodecError::Corrupt("SC value outside its modulus"));
            }
            let orders: Vec<u64> = members.iter().map(|&m| Reducer64::new(m).rem(&sc)).collect();
            let basis = build_basis(&members, &product)
                .map_err(|_| CodecError::Corrupt("members are not pairwise coprime"))?;
            records.push(ScRecord {
                max_self: members.iter().copied().max().unwrap_or(0),
                members,
                orders,
                product,
                sc,
                basis,
            });
        }
        if !input.is_empty() {
            return Err(CodecError::Corrupt("trailing bytes"));
        }
        let max_order =
            records.iter().flat_map(|r| r.orders.iter().copied()).max().unwrap_or(0);
        Ok(ScTable {
            chunk_capacity,
            records,
            locator,
            max_order,
            product_bit_budget: DEFAULT_PRODUCT_BIT_BUDGET,
            journal: Journal::default(),
        })
    }

    /// Removes a node. Deletion shifts no order numbers (§4.2), so only the
    /// record that held the member is re-solved. Returns `false` if the
    /// label was not covered.
    pub fn remove(&mut self, self_label: u64) -> Result<bool, ScError> {
        self.recover();
        let Some(&idx) = self.locator.get(&self_label) else {
            return Ok(false);
        };
        self.begin_journal();
        self.journal_record(idx);
        self.journal_locator(self_label);
        self.locator.remove(&self_label);
        let budget = self.product_bit_budget;
        let record = &mut self.records[idx];
        let mut orders = Vec::with_capacity(record.members.len().saturating_sub(1));
        let mut members = Vec::with_capacity(record.members.len().saturating_sub(1));
        for (&m, &o) in record.members.iter().zip(&record.orders) {
            if m != self_label {
                members.push(m);
                orders.push(o);
            }
        }
        record.members = members;
        faultpoint!("sc.remove")?;
        let record = &mut self.records[idx];
        record.rebuild(orders, budget)?;
        self.commit_journal();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 9 tree's six nodes: self-labels 2..13, orders 1..6.
    fn figure9_items() -> Vec<(u64, u64)> {
        vec![(2, 1), (3, 2), (5, 3), (7, 4), (11, 5), (13, 6)]
    }

    #[test]
    fn single_record_reproduces_figure9() {
        let t = ScTable::build(10, &figure9_items()).unwrap();
        assert_eq!(t.record_count(), 1);
        assert_eq!(t.records()[0].sc(), &UBig::from(29243u64));
        for (m, o) in figure9_items() {
            assert_eq!(t.order_of(m), Some(o));
        }
        assert_eq!(t.order_of(17), None);
    }

    #[test]
    fn chunked_table_reproduces_figure10() {
        let t = ScTable::build(5, &figure9_items()).unwrap();
        assert_eq!(t.record_count(), 2);
        assert_eq!(t.records()[0].sc(), &UBig::from(1523u64));
        assert_eq!(t.records()[0].max_self_label(), 11);
        assert_eq!(t.records()[1].sc(), &UBig::from(6u64));
        assert_eq!(t.records()[1].max_self_label(), 13);
        for (m, o) in figure9_items() {
            assert_eq!(t.order_of(m), Some(o), "self-label {m}");
        }
    }

    #[test]
    fn insertion_reproduces_figure11_and_12() {
        // §4.2: insert self-label 17 at order 3; afterwards the second
        // record satisfies x≡7 (13), x≡3 (17) and the first shifts orders
        // [1,2,3,4,5] → [1,2,4,5,6].
        let mut t = ScTable::build(5, &figure9_items()).unwrap();
        let report = t.insert(17, 3).unwrap();
        assert_eq!(report.records_updated, 2, "both records touched");
        assert_eq!(t.order_of(17), Some(3));
        assert_eq!(t.order_of(2), Some(1));
        assert_eq!(t.order_of(3), Some(2));
        assert_eq!(t.order_of(5), Some(4));
        assert_eq!(t.order_of(7), Some(5));
        assert_eq!(t.order_of(11), Some(6));
        assert_eq!(t.order_of(13), Some(7));
        let second = &t.records()[1];
        assert_eq!(second.sc().rem_u64(13), 7);
        assert_eq!(second.sc().rem_u64(17), 3);
        assert_eq!(second.max_self_label(), 17);
    }

    #[test]
    fn append_at_end_touches_one_record() {
        let mut t = ScTable::build(5, &figure9_items()).unwrap();
        // Order 7 is past every existing node: nothing shifts; only the
        // receiving record re-solves.
        let report = t.insert(17, 7).unwrap();
        assert_eq!(report.records_updated, 1);
        assert_eq!(t.order_of(17), Some(7));
        assert_eq!(t.order_of(13), Some(6), "untouched");
    }

    #[test]
    fn insert_into_full_last_record_opens_a_new_one() {
        let items: Vec<(u64, u64)> = vec![(2, 1), (3, 2), (5, 3), (7, 4), (11, 5)];
        let mut t = ScTable::build(5, &items).unwrap();
        assert_eq!(t.record_count(), 1);
        t.insert(13, 6).unwrap();
        assert_eq!(t.record_count(), 2);
        assert_eq!(t.order_of(13), Some(6));
    }

    /// Items with enough modulus headroom that front-insertions never hit
    /// [`ScError::OrderOverflow`].
    fn roomy_items() -> Vec<(u64, u64)> {
        vec![(7, 1), (11, 2), (13, 3), (17, 4), (19, 5), (23, 6)]
    }

    #[test]
    fn insert_at_front_touches_every_record() {
        let mut t = ScTable::build(2, &roomy_items()).unwrap(); // 3 records
        let before = t.record_count();
        let report = t.insert(29, 1).unwrap();
        // All 3 old records shift, plus the new one created for the member.
        assert_eq!(report.records_updated, before + 1);
        assert_eq!(t.order_of(29), Some(1));
        assert_eq!(t.order_of(7), Some(2));
        assert_eq!(t.order_of(23), Some(7));
    }

    #[test]
    fn repeated_insertions_keep_a_consistent_permutation() {
        let mut t = ScTable::build(3, &roomy_items()).unwrap();
        for (label, order) in [(29u64, 2u64), (31, 2), (37, 9), (41, 1)] {
            t.insert(label, order).unwrap();
        }
        let mut orders: Vec<u64> = t.entries().map(|(_, o)| o).collect();
        orders.sort_unstable();
        assert_eq!(orders, (1..=10).collect::<Vec<u64>>(), "orders form 1..=n");
    }

    #[test]
    fn order_overflow_is_detected_before_any_mutation() {
        // Figure 9's items: shifting the node with self-label 3 from order 2
        // to 3 would make its order unrecoverable (3 mod 3 = 0).
        let mut t = ScTable::build(5, &figure9_items()).unwrap();
        let err = t.insert(17, 2).unwrap_err();
        assert_eq!(err, ScError::OrderOverflow { self_label: 3, order: 3 });
        // Nothing changed.
        for (m, o) in figure9_items() {
            assert_eq!(t.order_of(m), Some(o));
        }
        assert_eq!(t.order_of(17), None);
    }

    #[test]
    fn overflow_of_the_new_member_itself_is_detected() {
        let mut t = ScTable::build(5, &roomy_items()).unwrap();
        let err = t.insert(5, 7).unwrap_err();
        assert_eq!(err, ScError::OrderOverflow { self_label: 5, order: 7 });
    }

    #[test]
    fn build_rejects_order_at_or_above_self_label() {
        let err = ScTable::build(5, &[(3, 3)]).unwrap_err();
        assert_eq!(err, ScError::OrderOverflow { self_label: 3, order: 3 });
    }

    #[test]
    fn replace_self_label_unblocks_an_overflowing_insert() {
        let mut t = ScTable::build(5, &figure9_items()).unwrap();
        assert!(t.insert(17, 2).is_err());
        // Relabel the offending node (self 3, order 2) with a roomier prime.
        t.replace_self_label(3, 19).unwrap();
        assert_eq!(t.order_of(19), Some(2));
        assert_eq!(t.order_of(3), None);
        let report = t.insert(17, 2).unwrap();
        assert!(report.records_updated >= 1);
        assert_eq!(t.order_of(17), Some(2));
        assert_eq!(t.order_of(19), Some(3));
        assert_eq!(t.order_of(2), Some(1), "unshifted");
    }

    #[test]
    fn replace_self_label_touches_one_record() {
        let mut t = ScTable::build(2, &roomy_items()).unwrap();
        let before: Vec<UBig> = t.records().iter().map(|r| r.sc().clone()).collect();
        t.replace_self_label(11, 43).unwrap();
        let after: Vec<UBig> = t.records().iter().map(|r| r.sc().clone()).collect();
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 1);
        assert_eq!(t.order_of(43), Some(2));
    }

    #[test]
    fn removal_touches_only_its_record_and_keeps_others() {
        let mut t = ScTable::build(5, &figure9_items()).unwrap();
        assert!(t.remove(3).unwrap());
        assert_eq!(t.order_of(3), None);
        // Gap remains: others keep their order numbers (§4.2).
        assert_eq!(t.order_of(2), Some(1));
        assert_eq!(t.order_of(5), Some(3));
        assert_eq!(t.order_of(13), Some(6));
        assert!(!t.remove(3).unwrap(), "double removal is a no-op");
    }

    #[test]
    fn rejects_noncoprime_members() {
        assert!(ScTable::build(5, &[(4, 1), (6, 2)]).is_err());
        let mut t = ScTable::build(5, &[(4, 1), (9, 2)]).unwrap(); // 4 and 9 are coprime
        assert!(t.insert(6, 3).is_err(), "6 shares factors with both");
    }

    #[test]
    fn duplicate_self_label_is_a_typed_error() {
        let mut t = ScTable::build(5, &figure9_items()).unwrap();
        assert_eq!(t.insert(13, 1).unwrap_err(), ScError::DuplicateSelfLabel(13));
        // Nothing changed and no recovery is pending.
        assert!(!t.needs_recovery());
        for (m, o) in figure9_items() {
            assert_eq!(t.order_of(m), Some(o));
        }
    }

    #[test]
    fn replace_errors_are_typed() {
        let mut t = ScTable::build(5, &figure9_items()).unwrap();
        assert_eq!(t.replace_self_label(99, 101).unwrap_err(), ScError::UnknownSelfLabel(99));
        assert_eq!(t.replace_self_label(3, 13).unwrap_err(), ScError::DuplicateSelfLabel(13));
        for (m, o) in figure9_items() {
            assert_eq!(t.order_of(m), Some(o), "failed replace mutated nothing");
        }
    }

    #[test]
    fn zero_chunk_capacity_is_a_typed_error() {
        assert_eq!(ScTable::build(0, &[]).unwrap_err(), ScError::InvalidChunkCapacity);
    }

    #[test]
    fn duplicate_items_in_build_are_rejected() {
        // Across chunks, duplicates evade the per-chunk coprimality check;
        // the locator catches them.
        let items = [(7u64, 1u64), (11, 2), (7, 3)];
        assert_eq!(ScTable::build(2, &items).unwrap_err(), ScError::DuplicateSelfLabel(7));
    }

    #[test]
    fn product_budget_refuses_runaway_growth() {
        let mut t = ScTable::build(10, &figure9_items()).unwrap();
        t.set_product_bit_budget(16); // current product 30030 ≈ 15 bits
        let err = t.insert(17, 7).unwrap_err();
        assert!(matches!(err, ScError::Budget(_)), "{err:?}");
        // The budget refusal struck mid-mutation: recover and verify.
        t.recover();
        assert!(!t.needs_recovery());
        for (m, o) in figure9_items() {
            assert_eq!(t.order_of(m), Some(o));
        }
        assert_eq!(t.order_of(17), None);
    }

    #[test]
    fn mid_relabel_fault_rolls_back_via_recover() {
        use xp_testkit::fault;
        let mut t = ScTable::build(2, &roomy_items()).unwrap(); // 3 records
        let pristine = t.clone();
        // Fire on the second record re-solve of a front insertion, which
        // dirties every record — a genuinely half-applied mutation.
        fault::arm("sc.insert.record:2");
        let err = t.insert(29, 1).unwrap_err();
        fault::reset();
        assert_eq!(err, ScError::FaultInjected("sc.insert.record"));
        assert!(t.needs_recovery());
        assert!(t.recover());
        assert!(!t.needs_recovery());
        for (m, o) in pristine.entries() {
            assert_eq!(t.order_of(m), Some(o), "rolled-back order of {m}");
        }
        assert_eq!(t.order_of(29), None);
        // And the recovered table accepts the same insert cleanly.
        t.insert(29, 1).unwrap();
        assert_eq!(t.order_of(29), Some(1));
        assert_eq!(t.order_of(7), Some(2));
    }

    #[test]
    fn next_mutation_auto_recovers_a_faulted_table() {
        use xp_testkit::fault;
        let mut t = ScTable::build(2, &roomy_items()).unwrap();
        fault::arm("sc.insert.record:2");
        assert!(t.insert(29, 1).is_err());
        fault::reset();
        assert!(t.needs_recovery());
        // No explicit recover(): the next insert rolls back first.
        t.insert(29, 1).unwrap();
        assert!(!t.needs_recovery());
        assert_eq!(t.order_of(29), Some(1));
        assert_eq!(t.order_of(23), Some(7));
    }

    #[test]
    fn faulted_remove_and_relabel_recover() {
        use xp_testkit::fault;
        let mut t = ScTable::build(3, &roomy_items()).unwrap();
        fault::arm("sc.remove:1");
        assert_eq!(t.remove(11).unwrap_err(), ScError::FaultInjected("sc.remove"));
        fault::reset();
        assert!(t.recover());
        assert_eq!(t.order_of(11), Some(2), "remove rolled back");

        fault::arm("sc.relabel:1");
        let err = t.replace_self_label(11, 43).unwrap_err();
        fault::reset();
        assert_eq!(err, ScError::FaultInjected("sc.relabel"));
        assert!(t.recover());
        assert_eq!(t.order_of(11), Some(2), "relabel rolled back");
        assert_eq!(t.order_of(43), None);
        // Both mutations succeed after recovery.
        t.replace_self_label(11, 43).unwrap();
        assert!(t.remove(43).unwrap());
    }

    #[test]
    fn empty_table() {
        let t = ScTable::build(5, &[]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.record_count(), 0);
        assert_eq!(t.order_of(2), None);
    }

    #[test]
    fn storage_bits_track_the_congruence_products() {
        let t = ScTable::build(6, &figure9_items()).unwrap();
        // One record: SC = 29243 (15 bits) + key 13 (4 bits).
        assert_eq!(t.storage_bits(), 15 + 4);
        // Splitting into more records adds keys but shrinks SC values; the
        // total stays within a small factor.
        let t5 = ScTable::build(5, &figure9_items()).unwrap();
        assert!(t5.storage_bits() >= 15, "{}", t5.storage_bits());
        let t1 = ScTable::build(1, &figure9_items()).unwrap();
        assert!(t1.storage_bits() < 64, "{}", t1.storage_bits());
    }

    #[test]
    fn encode_decode_round_trips() {
        for capacity in [1usize, 3, 5, 10] {
            let t = ScTable::build(capacity, &figure9_items()).unwrap();
            let decoded = ScTable::decode(&t.encode()).unwrap();
            assert_eq!(decoded.record_count(), t.record_count());
            for (m, o) in figure9_items() {
                assert_eq!(decoded.order_of(m), Some(o), "capacity {capacity}, label {m}");
            }
            // And the decoded table stays updatable.
            let mut decoded = decoded;
            decoded.insert(17, 7).unwrap();
            assert_eq!(decoded.order_of(17), Some(7));
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let t = ScTable::build(5, &figure9_items()).unwrap();
        let bytes = t.encode();
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(9);
        assert!(ScTable::decode(&long).is_err());
        // Truncation at every prefix either errors or yields fewer nodes.
        for cut in 0..bytes.len() {
            if let Ok(table) = ScTable::decode(&bytes[..cut]) {
                assert!(table.len() < 6, "cut {cut} silently kept everything");
            }
        }
    }

    #[test]
    fn capacity_one_degenerates_to_per_node_records() {
        let t = ScTable::build(1, &figure9_items()).unwrap();
        assert_eq!(t.record_count(), 6);
        for (m, o) in figure9_items() {
            assert_eq!(t.order_of(m), Some(o));
        }
    }

    #[test]
    fn basis_solution_matches_crt_solver() {
        // The basis combination Σ eᵢrᵢ mod C must reproduce the canonical
        // CRT solution for every prefix of a realistic chunk.
        let moduli = xp_primes::first_primes(12);
        let residues: Vec<u64> = moduli.iter().enumerate().map(|(i, _)| i as u64 + 1).collect();
        for k in 0..=moduli.len() {
            let product = prodtree::product(&moduli[..k]);
            let basis = build_basis(&moduli[..k], &product).unwrap();
            let via_basis = sc_from_basis(&basis, &residues[..k], &product);
            let via_solve = crt::solve(&moduli[..k], &residues[..k]).unwrap();
            assert_eq!(via_basis, via_solve, "k={k}");
        }
    }

    #[test]
    fn delta_shift_matches_full_resolve() {
        // shift_from must land on exactly the SC value a fresh solve of the
        // shifted system produces, for every threshold.
        let items = roomy_items();
        for threshold in 0..=7u64 {
            let mut shifted = ScTable::build(6, &items).unwrap();
            shifted.records[0].shift_from(threshold);
            let resolved: Vec<(u64, u64)> = items
                .iter()
                .map(|&(m, o)| (m, if o >= threshold { o + 1 } else { o }))
                .collect();
            let want = ScTable::build(6, &resolved).unwrap();
            assert_eq!(shifted.records[0].sc, want.records[0].sc, "threshold {threshold}");
            assert_eq!(shifted.records[0].orders, want.records[0].orders);
        }
    }

    #[test]
    fn append_member_matches_build() {
        // Folding one congruence in (basis re-target + crt::extend) must be
        // indistinguishable from building the widened chunk from scratch.
        let mut t = ScTable::build(10, &figure9_items()).unwrap();
        t.insert(17, 7).unwrap();
        t.insert(19, 8).unwrap();
        let mut items = figure9_items();
        items.push((17, 7));
        items.push((19, 8));
        let built = ScTable::build(10, &items).unwrap();
        assert_eq!(t.records[0].sc, built.records[0].sc);
        assert_eq!(t.records[0].orders, built.records[0].orders);
        assert_eq!(t.records[0].product, built.records[0].product);
        assert_eq!(t.records[0].basis, built.records[0].basis);
    }

    #[test]
    fn cached_columns_stay_consistent_through_mutations() {
        let mut t = ScTable::build(3, &roomy_items()).unwrap();
        t.check_cached_columns().unwrap();
        t.insert(71, 1).unwrap(); // front insert: shifts every record
        t.check_cached_columns().unwrap();
        t.insert(73, 9).unwrap(); // tail append: touches one record
        t.check_cached_columns().unwrap();
        t.replace_self_label(23, 79).unwrap();
        t.check_cached_columns().unwrap();
        assert!(t.remove(13).unwrap());
        t.check_cached_columns().unwrap();
        t.insert(83, 2).unwrap(); // shift again after the removal
        t.check_cached_columns().unwrap();
        let decoded = ScTable::decode(&t.encode()).unwrap();
        decoded.check_cached_columns().unwrap();
    }

    #[test]
    fn tail_append_skips_the_shift_scan() {
        // Appending past every covered order must touch only the receiving
        // record, even when many records exist.
        let items: Vec<(u64, u64)> =
            xp_primes::first_primes(40).into_iter().zip(1..).map(|(m, o)| (m, o)).collect();
        let mut t = ScTable::build(5, &items).unwrap();
        let report = t.insert(409, 41).unwrap();
        assert_eq!(report.records_updated, 1);
        t.check_cached_columns().unwrap();
    }
}
