//! The bottom-up prime labeling scheme (§3, Figure 1, Property 2).
//!
//! Leaf nodes get primes; each parent's label is the **product of its
//! children's labels**, so `x` is an ancestor of `y` iff
//! `label(x) mod label(y) = 0` (note the direction is reversed relative to
//! the top-down scheme). The paper keeps this variant as motivation — labels
//! explode toward the root and single-child nodes "require special handling"
//! — and we implement it faithfully, including that special handling: a
//! single-child parent multiplies in one fresh prime of its own, since
//! otherwise its label would equal its child's.

use std::collections::HashMap;
use xp_bignum::UBig;
use xp_labelkit::{LabelOps, LabeledDoc, Scheme};
use xp_primes::PrimePool;
use xp_xmltree::{NodeId, XmlTree};

/// A bottom-up prime label: the product of the labels of all leaves in the
/// node's subtree (times disambiguators for single-child chains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BottomUpLabel(UBig);

impl BottomUpLabel {
    /// The label value.
    pub fn value(&self) -> &UBig {
        &self.0
    }
}

impl LabelOps for BottomUpLabel {
    /// Property 2 \[BottomUpMod\]: `x` is an ancestor of `y` iff
    /// `label(x) mod label(y) = 0`.
    fn is_ancestor_of(&self, other: &Self) -> bool {
        self.0 != other.0 && self.0.is_multiple_of(&other.0)
    }

    fn size_bits(&self) -> u64 {
        self.0.bit_len()
    }
}

/// The bottom-up labeling scheme.
#[derive(Debug, Clone, Default)]
pub struct BottomUpPrime;

impl Scheme for BottomUpPrime {
    type Label = BottomUpLabel;

    fn name(&self) -> &'static str {
        "Prime (bottom-up)"
    }

    fn label(&self, tree: &XmlTree) -> LabeledDoc<BottomUpLabel> {
        let mut pool = PrimePool::unreserved();
        let mut values: HashMap<NodeId, UBig> = HashMap::new();

        // Post-order accumulation (children before parents).
        let order: Vec<NodeId> = tree.elements().collect();
        for &node in order.iter().rev() {
            let kids: Vec<NodeId> = tree.element_children(node).collect();
            let value = if kids.is_empty() {
                UBig::from(pool.general_prime())
            } else {
                let mut product = UBig::one();
                for k in &kids {
                    product *= &values[k];
                }
                if kids.len() == 1 {
                    // Special handling: distinguish the chain parent from its
                    // only child.
                    product *= &UBig::from(pool.general_prime());
                }
                product
            };
            values.insert(node, value);
        }

        let mut doc = LabeledDoc::new(tree);
        for node in tree.elements() {
            // Invariant: the pass above labeled every element.
            #[allow(clippy::expect_used)]
            doc.set(node, BottomUpLabel(values.remove(&node).expect("labeled above")));
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::parse;

    fn check_exhaustively(src: &str) {
        let tree = parse(src).unwrap();
        let doc = BottomUpPrime.label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                assert_eq!(
                    doc.label(x).is_ancestor_of(doc.label(y)),
                    tree.is_ancestor(x, y),
                    "ancestor({x},{y}) in {src}"
                );
            }
        }
    }

    #[test]
    fn figure1_shape() {
        // Root label is the product of all leaf labels.
        let tree = parse("<a><b><c/><d/></b><e/></a>").unwrap();
        let doc = BottomUpPrime.label(&tree);
        let leaves: Vec<NodeId> = tree.elements().filter(|&n| tree.is_leaf_element(n)).collect();
        let mut product = UBig::one();
        for l in &leaves {
            product *= doc.label(*l).value();
        }
        assert_eq!(doc.label(tree.root()).value(), &product);
    }

    #[test]
    fn ancestor_test_is_exact_on_varied_shapes() {
        check_exhaustively("<a><b><c/><d/></b><e/></a>");
        check_exhaustively("<a><b/><c/><d/><e/></a>");
        check_exhaustively("<a><b><c><d/></c></b></a>"); // chain: single children
        check_exhaustively("<a/>");
    }

    #[test]
    fn single_child_parents_differ_from_their_child() {
        let tree = parse("<a><b><c/></b></a>").unwrap();
        let doc = BottomUpPrime.label(&tree);
        let b = tree.first_child(tree.root()).unwrap();
        let c = tree.first_child(b).unwrap();
        assert_ne!(doc.label(b), doc.label(c));
        assert!(doc.label(b).is_ancestor_of(doc.label(c)));
        assert!(!doc.label(c).is_ancestor_of(doc.label(b)));
    }

    #[test]
    fn root_labels_grow_with_tree_size() {
        // The paper's criticism: "the bottom-up approach can quickly result
        // in relatively large numbers being assigned to nodes at the top".
        let small = parse("<a><b/><c/></a>").unwrap();
        let mut big_src = String::from("<a>");
        for i in 0..40 {
            big_src.push_str(&format!("<n{i}/>"));
        }
        big_src.push_str("</a>");
        let big = parse(&big_src).unwrap();
        let small_bits = BottomUpPrime.label(&small).label(small.root()).size_bits();
        let big_bits = BottomUpPrime.label(&big).label(big.root()).size_bits();
        assert!(big_bits > small_bits * 10, "{small_bits} vs {big_bits}");
    }

    #[test]
    fn top_down_is_smaller_than_bottom_up_at_the_root() {
        use crate::topdown::TopDownPrime;
        let mut src = String::from("<a>");
        for i in 0..30 {
            src.push_str(&format!("<m{i}><x/><y/></m{i}>"));
        }
        src.push_str("</a>");
        let tree = parse(&src).unwrap();
        let bu = BottomUpPrime.label(&tree).size_stats().max_bits;
        let td = TopDownPrime::unoptimized().label(&tree).size_stats().max_bits;
        assert!(td < bu, "top-down {td} bits vs bottom-up {bu} bits");
    }
}
