//! The crate-wide error taxonomy.
//!
//! Every labeling or mutation entry point that can fail on untrusted input
//! or at runtime returns a typed error instead of panicking; [`Error`] is
//! the union the facade (and the `xmlprime` CLI's exit-code mapping) works
//! with. The narrower enums ([`ScError`], [`CrtError`], [`DecodeError`])
//! stay on the APIs where only that failure class is possible, and convert
//! into [`Error`] via `From`.

use crate::crt::CrtError;
use crate::path::DecodeError;
use crate::sc::ScError;
use std::fmt;
use xp_bignum::checked::BudgetError;
use xp_testkit::fault::Injected;
use xp_xmltree::NodeId;

/// Any failure of the prime-labeling pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// SC-table maintenance failed (order overflow, duplicate or unknown
    /// self-label, unsolvable congruences, …).
    Sc(ScError),
    /// A congruence system was unsolvable on its own.
    Crt(CrtError),
    /// A label would not decode back into a root path.
    Decode(DecodeError),
    /// `PrimeOptions::leaf_power_threshold` exceeds 63: Opt2 leaf labels are
    /// `2^n` and must fit a `u64` self-label.
    LeafPowerThresholdTooLarge {
        /// The rejected threshold.
        threshold: u32,
    },
    /// Incremental updates are not defined for Opt3-combined documents
    /// (shared labels cannot be relabeled independently); relabel instead.
    NotUpdatable,
    /// The mutation's anchor was the document root, which has no parent or
    /// siblings.
    RootAnchor(NodeId),
    /// A node id that this document does not cover.
    UnknownNode(NodeId),
    /// A bignum product exceeded its bit-length budget.
    Budget(BudgetError),
    /// An armed [`xp_testkit::fault`] point fired.
    FaultInjected(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sc(e) => write!(f, "SC table: {e}"),
            Error::Crt(e) => write!(f, "CRT: {e}"),
            Error::Decode(e) => write!(f, "label decode: {e}"),
            Error::LeafPowerThresholdTooLarge { threshold } => {
                write!(f, "leaf power threshold {threshold} exceeds 63 (2^n must fit u64)")
            }
            Error::NotUpdatable => write!(
                f,
                "incremental updates are not defined for Opt3-combined documents; \
                 relabel the document instead"
            ),
            Error::RootAnchor(node) => {
                write!(f, "node {node} is the document root, which cannot anchor this mutation")
            }
            Error::UnknownNode(node) => write!(f, "node {node} is not covered by this document"),
            Error::Budget(e) => write!(f, "{e}"),
            Error::FaultInjected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sc(e) => Some(e),
            Error::Crt(e) => Some(e),
            Error::Decode(e) => Some(e),
            Error::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScError> for Error {
    fn from(e: ScError) -> Self {
        Error::Sc(e)
    }
}

impl From<CrtError> for Error {
    fn from(e: CrtError) -> Self {
        Error::Crt(e)
    }
}

impl From<DecodeError> for Error {
    fn from(e: DecodeError) -> Self {
        Error::Decode(e)
    }
}

impl From<BudgetError> for Error {
    fn from(e: BudgetError) -> Self {
        Error::Budget(e)
    }
}

impl From<Injected> for Error {
    fn from(e: Injected) -> Self {
        Error::FaultInjected(e.site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = ScError::OrderOverflow { self_label: 3, order: 3 }.into();
        assert!(e.to_string().contains("order 3"));
        let e: Error = CrtError::ZeroModulus.into();
        assert_eq!(e, Error::Crt(CrtError::ZeroModulus));
        let e: Error = Injected { site: "x", mode: xp_testkit::FaultMode::Error }.into();
        assert_eq!(e, Error::FaultInjected("x"));
        assert!(Error::NotUpdatable.to_string().contains("Opt3"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error as _;
        let e: Error = CrtError::ZeroModulus.into();
        assert!(e.source().is_some());
        assert!(Error::NotUpdatable.source().is_none());
    }
}
