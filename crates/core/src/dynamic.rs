//! [`DynamicPrime`]: the prime scheme behind the unified
//! [`DynamicScheme`] mutation protocol.
//!
//! The scheme-side state is a full [`OrderedPrimeDoc`] — labels, SC table,
//! and prime allocator — and the store's [`xp_labelkit::LabeledDoc`] mirrors
//! its label table. Mutations delegate to the §4.2 ordered protocol and then
//! copy exactly the labels it touched into the mirror, so the
//! [`RelabelReport`] is the ordered layer's own accounting: sibling inserts
//! cost one label plus SC record updates, overflow victims and wrapped
//! subtrees show up in `relabeled`, and deletions shift nothing.

use crate::error::Error;
use crate::label::PrimeLabel;
use crate::ordered::OrderedPrimeDoc;
use crate::topdown::TopDownPrime;
use std::cmp::Ordering;
use xp_labelkit::{
    DynamicError, DynamicScheme, InsertPos, LabeledDoc, RelabelReport, Scheme,
};
use xp_xmltree::{NodeId, XmlTree};

impl From<Error> for DynamicError {
    fn from(e: Error) -> Self {
        DynamicError::Scheme(Box::new(e))
    }
}

/// Default SC chunk capacity — matches the sweet spot of the Figure 18
/// chunk-size ablation (small enough that one insertion touches few
/// records, large enough that the table stays compact).
pub const DEFAULT_CHUNK_CAPACITY: usize = 16;

/// The prime scheme as a [`DynamicScheme`]: top-down labeling + the SC
/// delta path of §4.2.
#[derive(Debug, Clone)]
pub struct DynamicPrime {
    chunk_capacity: usize,
}

impl DynamicPrime {
    /// A dynamic prime scheme whose SC table holds `chunk_capacity` nodes
    /// per record.
    pub fn new(chunk_capacity: usize) -> Self {
        DynamicPrime { chunk_capacity }
    }

    /// The SC chunk capacity.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }
}

impl Default for DynamicPrime {
    fn default() -> Self {
        DynamicPrime::new(DEFAULT_CHUNK_CAPACITY)
    }
}

impl Scheme for DynamicPrime {
    type Label = PrimeLabel;

    fn name(&self) -> &'static str {
        "Prime"
    }

    fn label(&self, tree: &XmlTree) -> LabeledDoc<PrimeLabel> {
        // The ordered protocol forbids Opt1/Opt2 (see OrderedPrimeDoc::build),
        // so the static labeling is the plain in-order prime assignment.
        let doc = TopDownPrime::unoptimized().label_document(tree);
        doc.labels
    }
}

/// Copies the labels a mutation touched from the ordered document into the
/// store's mirror table.
fn mirror_labels(
    state: &OrderedPrimeDoc,
    doc: &mut LabeledDoc<PrimeLabel>,
    nodes: impl IntoIterator<Item = NodeId>,
) {
    for n in nodes {
        if let Some(label) = state.labels().get(n) {
            doc.set(n, label.clone());
        }
    }
}

/// Post-error repair: detach any node the failed mutation created (arena
/// indices at or past `mark` — slots are never reused, so everything there
/// is this mutation's), drop every trace of it, then re-mirror any label the
/// mutation committed before failing (overflow-victim relabels commit
/// independently of the insertion that triggered them).
fn repair_after_error(
    tree: &mut XmlTree,
    doc: &mut LabeledDoc<PrimeLabel>,
    state: &mut OrderedPrimeDoc,
    mark: usize,
) {
    let strays: Vec<NodeId> = tree.elements().filter(|n| n.index() >= mark).collect();
    for &n in &strays {
        tree.detach(n);
    }
    for n in strays {
        state.forget_node(n);
        doc.remove(n);
    }
    let changed: Vec<NodeId> = doc
        .nodes()
        .iter()
        .copied()
        .filter(|&n| {
            matches!(
                (doc.get(n), state.labels().get(n)),
                (Some(old), Some(new)) if old != new
            )
        })
        .collect();
    mirror_labels(state, doc, changed);
}

impl DynamicScheme for DynamicPrime {
    type State = OrderedPrimeDoc;

    fn init(&self, tree: &XmlTree) -> Result<(LabeledDoc<PrimeLabel>, Self::State), DynamicError> {
        let state = OrderedPrimeDoc::build(tree, self.chunk_capacity)?;
        let doc = state.labels().clone();
        Ok((doc, state))
    }

    fn insert_before(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<PrimeLabel>,
        state: &mut Self::State,
        anchor: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError> {
        let mark = tree.arena_len();
        match state.insert_sibling_before(tree, anchor, tag) {
            Ok(rep) => {
                mirror_labels(state, doc, std::iter::once(rep.node));
                mirror_labels(state, doc, rep.relabeled_nodes.iter().copied());
                Ok(RelabelReport {
                    inserted: vec![rep.node],
                    relabeled: rep.relabeled_nodes,
                    removed: Vec::new(),
                    side_updates: rep.sc_records_updated,
                })
            }
            Err(e) => {
                repair_after_error(tree, doc, state, mark);
                Err(e.into())
            }
        }
    }

    fn insert_subtree(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<PrimeLabel>,
        state: &mut Self::State,
        pos: InsertPos,
        fragment: &XmlTree,
    ) -> Result<RelabelReport, DynamicError> {
        let mark = tree.arena_len();
        match insert_subtree_inner(tree, state, pos, fragment) {
            Ok(report) => {
                mirror_labels(state, doc, report.inserted.iter().copied());
                mirror_labels(state, doc, report.relabeled.iter().copied());
                Ok(report)
            }
            Err(e) => {
                repair_after_error(tree, doc, state, mark);
                Err(e.into())
            }
        }
    }

    fn insert_parent(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<PrimeLabel>,
        state: &mut Self::State,
        target: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError> {
        match state.insert_parent(tree, target, tag) {
            Ok(rep) => {
                mirror_labels(state, doc, std::iter::once(rep.node));
                mirror_labels(state, doc, rep.relabeled_nodes.iter().copied());
                Ok(RelabelReport {
                    inserted: vec![rep.node],
                    relabeled: rep.relabeled_nodes,
                    removed: Vec::new(),
                    side_updates: rep.sc_records_updated,
                })
            }
            Err(e) => {
                // The wrap itself is infallible, so a failure means the SC
                // step died with the wrapper already in the tree and the
                // subtree's products already rewritten. Unwind the wrap,
                // restore the subtree's products from its original parent,
                // and drop the wrapper — labels committed by overflow
                // victims stay (they are valid either way) and get
                // re-mirrored.
                if let Some(wrapper) = tree.parent(target) {
                    if state.labels().get(wrapper).is_some()
                        && state.sc_table().order_of(order_self(state, wrapper)).is_none()
                    {
                        tree.detach(target);
                        tree.insert_before(wrapper, target);
                        tree.detach(wrapper);
                        state.forget_node(wrapper);
                        let _ = state.recompute_subtree_products(tree, target);
                    }
                }
                let mark = tree.arena_len();
                repair_after_error(tree, doc, state, mark);
                Err(e.into())
            }
        }
    }

    fn delete(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<PrimeLabel>,
        state: &mut Self::State,
        target: NodeId,
    ) -> Result<RelabelReport, DynamicError> {
        let subtree: Vec<NodeId> = tree.element_descendants(target).collect();
        let result = state.delete(tree, target);
        // Deletion detaches before touching the SC table, so even on error
        // the subtree is out of the tree: drop its labels either way. A
        // leftover SC entry for a detached node is inert (primes are never
        // reused), but the mirror must not keep labels for detached nodes.
        let mut side_updates = 0usize;
        match result {
            Ok(touched) => side_updates = touched,
            Err(e) => {
                if tree.parent(target).is_some() {
                    // Failed before the detach: nothing structural changed.
                    return Err(e.into());
                }
                for &n in &subtree {
                    state.forget_node(n);
                }
            }
        }
        for &n in &subtree {
            doc.remove(n);
        }
        Ok(RelabelReport {
            inserted: Vec::new(),
            relabeled: Vec::new(),
            removed: subtree,
            side_updates,
        })
    }

    fn doc_cmp(
        &self,
        _doc: &LabeledDoc<PrimeLabel>,
        state: &Self::State,
        a: NodeId,
        b: NodeId,
    ) -> Ordering {
        // A node that lost its order (mid-recovery) sorts last; the store
        // never exposes such nodes through its mirror table.
        let oa = state.try_order_of(a).unwrap_or(u64::MAX);
        let ob = state.try_order_of(b).unwrap_or(u64::MAX);
        oa.cmp(&ob)
    }

    fn needs_recovery(&self, state: &Self::State) -> bool {
        state.needs_recovery()
    }
}

/// Self-label of `node` (for probing the SC table during recovery).
fn order_self(state: &OrderedPrimeDoc, node: NodeId) -> u64 {
    state.labels().get(node).map(|l| l.self_label_u64()).unwrap_or(0)
}

/// Grafts `fragment` node by node through the ordered insert protocol: the
/// fragment root lands at `pos`, every descendant is appended under its
/// (new) parent in preorder, and the costs merge into one report.
fn insert_subtree_inner(
    tree: &mut XmlTree,
    state: &mut OrderedPrimeDoc,
    pos: InsertPos,
    fragment: &XmlTree,
) -> Result<RelabelReport, Error> {
    let frag_root = fragment.root();
    let root_tag = fragment.tag(frag_root).unwrap_or("node");
    let first = match pos {
        InsertPos::Before(anchor) => state.insert_sibling_before(tree, anchor, root_tag)?,
        InsertPos::LastChildOf(parent) => state.append_child(tree, parent, root_tag)?,
    };
    let mut report = RelabelReport {
        inserted: vec![first.node],
        relabeled: first.relabeled_nodes.clone(),
        removed: Vec::new(),
        side_updates: first.sc_records_updated,
    };
    // Walk the fragment in strict preorder, allocating each node at pop
    // time under its already-created parent. Children are pushed reversed
    // so siblings pop — and therefore append — in document order; the old
    // variant appended inside the reversed loop, which flipped sibling
    // order at every level.
    let mut stack: Vec<(NodeId, NodeId)> = {
        let kids: Vec<NodeId> = fragment.children(frag_root).collect();
        kids.into_iter().rev().map(|c| (c, first.node)).collect()
    };
    while let Some((src, dst)) = stack.pop() {
        if let Some(tag) = fragment.tag(src) {
            let rep = state.append_child(tree, dst, tag)?;
            report.merge(RelabelReport {
                inserted: vec![rep.node],
                relabeled: rep.relabeled_nodes,
                removed: Vec::new(),
                side_updates: rep.sc_records_updated,
            });
            let kids: Vec<NodeId> = fragment.children(src).collect();
            for child in kids.into_iter().rev() {
                stack.push((child, rep.node));
            }
        } else if let Some(text) = fragment.text(src) {
            tree.append_text(dst, text);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::{LabelOps, LabeledStore};
    use xp_xmltree::parse;

    fn store(src: &str) -> LabeledStore<DynamicPrime> {
        let tree = parse(src).unwrap();
        LabeledStore::build(DynamicPrime::default(), tree).unwrap()
    }

    fn check_invariants(s: &LabeledStore<DynamicPrime>) {
        // Every attached element labeled, ancestor test = divisibility =
        // tree structure, SC order = preorder rank.
        let tree = s.tree();
        let nodes: Vec<NodeId> = tree.elements().collect();
        let mut prev_order = None;
        for &n in &nodes {
            let ln = s.doc().label(n);
            assert_eq!(
                ln,
                s.state().labels().label(n),
                "mirror diverged from ordered doc at {n}"
            );
            for &m in &nodes {
                let is_anc = tree.is_ancestor(n, m);
                assert_eq!(ln.is_ancestor_of(s.doc().label(m)), is_anc, "{n} anc {m}");
            }
            // Order numbers can have gaps (deletions shift nothing), but
            // they must rank the elements exactly in preorder.
            let o = s.state().order_of(n);
            if let Some(p) = prev_order {
                assert!(o > p, "order {o} of {n} not after {p}");
            }
            prev_order = Some(o);
        }
        assert_eq!(s.doc().len(), nodes.len(), "mirror holds exactly the attached elements");
    }

    #[test]
    fn sharded_prime_facade_matches_unsharded_oracle() {
        // Smoke check that `ShardedPrime` satisfies the facade bounds and
        // stays lockstep with an unsharded DynamicPrime store; the heavy
        // differential lives in xp-query's shard_differential test.
        let tree = parse("<r><a><x/><y/></a><b><x><z/></x></b><c/></r>").unwrap();
        let scheme =
            crate::ShardedPrime::new(DynamicPrime::default(), xp_labelkit::ShardPolicy::at_depth(1));
        let mut s = LabeledStore::build(scheme, tree.clone()).unwrap();
        let mut o = LabeledStore::build(DynamicPrime::default(), tree).unwrap();
        assert!(s.state().live_count() > 1, "cut 1 must shard");
        let first = s.tree().element_children(s.tree().root()).next().unwrap();
        let rs = s.insert_before(first, "n").unwrap();
        let ro = o.insert_before(first, "n").unwrap();
        assert_eq!(rs.inserted, ro.inserted);
        let victim = s.tree().elements().nth(4).unwrap();
        assert_eq!(s.delete(victim).unwrap().removed, o.delete(victim).unwrap().removed);
        assert_eq!(s.ordered_nodes(), o.ordered_nodes(), "document order lockstep");
        let nodes: Vec<NodeId> = s.tree().elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                assert_eq!(
                    s.doc().label(x).is_ancestor_of(s.doc().label(y)),
                    s.tree().is_ancestor(x, y),
                    "{x} anc {y}"
                );
            }
        }
    }

    #[test]
    fn insert_before_costs_one_label_plus_sc_records() {
        let mut s = store("<l><a/><b/><c/><d/><e/><f/><g/><h/></l>");
        let last = s.tree().last_child(s.tree().root()).unwrap();
        let rep = s.insert_before(last, "x").unwrap();
        assert_eq!(rep.inserted.len(), 1);
        assert!(rep.relabeled.is_empty(), "tail insert relabels nothing");
        assert!(rep.side_updates >= 1);
        check_invariants(&s);
    }

    #[test]
    fn front_insert_relabels_only_overflow_victims() {
        let mut s = store("<book><author/><author/><author/></book>");
        let tom = s.tree().element_children(s.tree().root()).nth(1).unwrap();
        let rep = s.insert_before(tom, "author").unwrap();
        assert_eq!(rep.inserted.len(), 1);
        assert_eq!(rep.relabeled.len(), 1, "exactly the Figure 8 overflow victim");
        check_invariants(&s);
    }

    #[test]
    fn insert_parent_relabels_the_wrapped_subtree() {
        let mut s = store("<a><b><c/><d/></b><e/></a>");
        let b = s.tree().first_child(s.tree().root()).unwrap();
        let rep = s.insert_parent(b, "wrap").unwrap();
        assert_eq!(rep.inserted.len(), 1);
        assert_eq!(rep.relabeled.len(), 3, "b, c, d inherit the wrapper's factor");
        check_invariants(&s);
    }

    #[test]
    fn insert_subtree_labels_every_fragment_node() {
        let mut s = store("<a><b/><c/></a>");
        let c = s.tree().last_child(s.tree().root()).unwrap();
        let frag = parse("<x><y/><z><w/></z></x>").unwrap();
        let rep = s.insert_subtree(InsertPos::Before(c), &frag).unwrap();
        assert_eq!(rep.inserted.len(), 4);
        check_invariants(&s);
        // The grafted subtree sits between b and c in document order.
        let x = rep.inserted[0];
        assert_eq!(s.tree().tag(x), Some("x"));
        assert_eq!(s.tree().next_sibling(x), Some(c));
        assert_eq!(s.tree().element_descendants(x).count(), 4);
    }

    #[test]
    fn insert_subtree_preserves_fragment_sibling_order() {
        let mut s = store("<a><b/></a>");
        let root = s.tree().root();
        let frag = parse("<t1>hi<t2/><t3/><t4><t5/>mid<t6/></t4></t1>").unwrap();
        let rep = s.insert_subtree(InsertPos::LastChildOf(root), &frag).unwrap();
        check_invariants(&s);
        let t1 = rep.inserted[0];
        let tags: Vec<&str> = s
            .tree()
            .element_descendants(t1)
            .filter_map(|n| s.tree().tag(n))
            .collect();
        assert_eq!(tags, ["t1", "t2", "t3", "t4", "t5", "t6"],
            "grafted fragment keeps its document order at every level");
        let t4 = s.tree().last_child(t1).unwrap();
        let texts: Vec<&str> = s
            .tree()
            .children(t4)
            .filter_map(|n| s.tree().text(n))
            .collect();
        assert_eq!(texts, ["mid"], "text children land under the right parent");
    }

    #[test]
    fn delete_shifts_nothing() {
        let mut s = store("<a><b><c/></b><d/><e/></a>");
        let b = s.tree().first_child(s.tree().root()).unwrap();
        let d = s.tree().element_children(s.tree().root()).nth(1).unwrap();
        let order_d_before = s.state().order_of(d);
        let rep = s.delete(b).unwrap();
        assert_eq!(rep.removed.len(), 2);
        assert!(rep.relabeled.is_empty());
        assert_eq!(s.state().order_of(d), order_d_before, "deletion shifts no orders");
        assert_eq!(s.doc().len(), 3);
    }

    #[test]
    fn move_subtree_reinserts_with_fresh_ids() {
        let mut s = store("<a><b><c/></b><d/></a>");
        let b = s.tree().first_child(s.tree().root()).unwrap();
        let d = s.tree().last_child(s.tree().root()).unwrap();
        let rep = s.move_subtree(b, InsertPos::LastChildOf(d)).unwrap();
        assert_eq!(rep.removed.len(), 2, "old ids are gone");
        assert_eq!(rep.inserted.len(), 2, "fresh ids under d");
        check_invariants(&s);
        let moved = rep.inserted[0];
        assert_eq!(s.tree().parent(moved), Some(d));
        assert_eq!(s.tree().tag(moved), Some("b"));
    }

    #[test]
    fn move_into_own_subtree_is_rejected_cleanly() {
        let mut s = store("<a><b><c/></b></a>");
        let b = s.tree().first_child(s.tree().root()).unwrap();
        let c = s.tree().first_child(b).unwrap();
        let before = s.doc().clone();
        let err = s.move_subtree(b, InsertPos::LastChildOf(c)).unwrap_err();
        assert!(matches!(err, DynamicError::MoveIntoSelf { .. }));
        assert_eq!(before.diff_count(s.doc()).total(), 0, "nothing changed");
        check_invariants(&s);
    }

    #[test]
    fn ordered_nodes_follow_document_order_across_mutations() {
        let mut s = store("<l><a/><b/><c/></l>");
        let b = s.tree().element_children(s.tree().root()).nth(1).unwrap();
        s.insert_before(b, "n").unwrap();
        let first = s.tree().first_child(s.tree().root()).unwrap();
        s.insert_before(first, "m").unwrap();
        let expect: Vec<NodeId> = s.tree().elements().collect();
        assert_eq!(s.ordered_nodes(), expect);
    }
}
