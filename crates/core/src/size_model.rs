//! The analytic maximum-label-size model of §3.1: formulas (1)–(3) and the
//! self-label sizes plotted in Figures 4 and 5.
//!
//! Conventions follow the paper: `log` is base 2; `D` is the maximal depth
//! (root at level 0), `F` the maximal fan-out, and the worst case is the
//! perfect tree with `N = Σ_{i=0..D} F^i` nodes.

/// `Σ_{i=0..d} f^i` as `f64` (exact for the ranges the figures plot).
fn perfect_tree_nodes(f: u64, d: u32) -> f64 {
    let mut total = 0.0f64;
    let mut level = 1.0f64;
    for _ in 0..=d {
        total += level;
        level *= f as f64;
    }
    total
}

/// Prefix-1 maximum **self-label** size in bits: the i-th child's label is
/// `1^(i-1) 0`, so the F-th child needs `F` bits.
pub fn prefix1_self_bits(fanout: u64) -> u64 {
    fanout.max(1)
}

/// Formula (1): `Lmax = D · F` for Prefix-1.
pub fn prefix1_max_bits(depth: u32, fanout: u64) -> u64 {
    u64::from(depth) * prefix1_self_bits(fanout)
}

/// Prefix-2 maximum **self-label** size in bits: `4·⌈log₂ F⌉` (from \[7\]).
pub fn prefix2_self_bits(fanout: u64) -> u64 {
    let log = (fanout.max(1) as f64).log2().ceil() as u64;
    (4 * log).max(1)
}

/// Formula (2): `Lmax = D · 4⌈log₂ F⌉` for Prefix-2.
pub fn prefix2_max_bits(depth: u32, fanout: u64) -> u64 {
    u64::from(depth) * prefix2_self_bits(fanout)
}

/// Prime maximum **self-label** size in bits on a perfect tree: the largest
/// self-label is ≈ the N-th prime ≈ `N·log₂N`, so its size is
/// `log₂(N·log₂N)` with `N = Σ F^i` (§3.1's derivation).
pub fn prime_self_bits(depth: u32, fanout: u64) -> u64 {
    let n = perfect_tree_nodes(fanout, depth);
    if n <= 2.0 {
        return 2;
    }
    (n * n.log2()).log2().ceil() as u64
}

/// Formula (3): `Lmax = D · log₂((Σ Fⁱ)·log₂(Σ Fⁱ))` for the prime scheme —
/// every level contributes one self-label-sized factor to the product.
pub fn prime_max_bits(depth: u32, fanout: u64) -> u64 {
    u64::from(depth) * prime_self_bits(depth, fanout)
}

/// Interval-scheme maximum label size: `2(1 + log₂ N)` bits (§3.1) — two
/// endpoint numbers, each up to `N`.
pub fn interval_max_bits(n_nodes: u64) -> u64 {
    2 * (1 + (n_nodes.max(1) as f64).log2().floor() as u64)
}

/// One row of Figure 4 (self-label bits vs fan-out at fixed depth) or
/// Figure 5 (vs depth at fixed fan-out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfLabelRow {
    /// The swept parameter's value (fan-out for Fig 4, depth for Fig 5).
    pub x: u64,
    /// Prefix-1 self-label bits.
    pub prefix1: u64,
    /// Prefix-2 self-label bits.
    pub prefix2: u64,
    /// Prime self-label bits.
    pub prime: u64,
}

/// Figure 4's series: self-label sizes for fan-out `1..=max_fanout` at fixed
/// depth (the paper uses D = 2).
pub fn figure4_series(depth: u32, max_fanout: u64) -> Vec<SelfLabelRow> {
    (1..=max_fanout)
        .map(|f| SelfLabelRow {
            x: f,
            prefix1: prefix1_self_bits(f),
            prefix2: prefix2_self_bits(f),
            prime: prime_self_bits(depth, f),
        })
        .collect()
}

/// Figure 5's series: self-label sizes for depth `0..=max_depth` at fixed
/// fan-out (the paper uses F = 15).
pub fn figure5_series(fanout: u64, max_depth: u32) -> Vec<SelfLabelRow> {
    (0..=max_depth)
        .map(|d| SelfLabelRow {
            x: u64::from(d),
            prefix1: prefix1_self_bits(fanout),
            prefix2: prefix2_self_bits(fanout),
            prime: prime_self_bits(d, fanout),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix1_is_linear_in_fanout() {
        assert_eq!(prefix1_self_bits(1), 1);
        assert_eq!(prefix1_self_bits(10), 10);
        assert_eq!(prefix1_self_bits(50), 50);
        assert_eq!(prefix1_max_bits(3, 10), 30);
    }

    #[test]
    fn prefix2_is_logarithmic_in_fanout() {
        assert_eq!(prefix2_self_bits(2), 4);
        assert_eq!(prefix2_self_bits(16), 16);
        assert_eq!(prefix2_self_bits(15), 16);
        assert_eq!(prefix2_self_bits(17), 20);
        assert_eq!(prefix2_max_bits(2, 16), 32);
    }

    #[test]
    fn figure4_shape_prime_flat_prefix1_linear() {
        // The paper's observation: "Prefix-1 increases linearly with the
        // fan-out while the prime number labeling scheme is hardly affected".
        let rows = figure4_series(2, 50);
        let prime_growth = rows.last().unwrap().prime - rows[0].prime;
        let prefix1_growth = rows.last().unwrap().prefix1 - rows[0].prefix1;
        assert!(prime_growth <= 12, "prime grew {prime_growth} bits over F=1..50");
        assert_eq!(prefix1_growth, 49, "prefix-1 grows one bit per unit fan-out");
        // Beyond small fan-outs the prime self label is smaller than Prefix-1's.
        for row in rows.iter().filter(|r| r.x >= 20) {
            assert!(row.prime < row.prefix1, "at F={}", row.x);
        }
    }

    #[test]
    fn figure5_shape_prefixes_flat_prime_grows() {
        // "both Prefix-1 and Prefix-2 are not affected by the change in
        // depth, while the prime number labeling scheme increases".
        let rows = figure5_series(15, 10);
        assert!(rows.iter().all(|r| r.prefix1 == 15));
        assert!(rows.iter().all(|r| r.prefix2 == 16));
        let prime_bits: Vec<u64> = rows.iter().map(|r| r.prime).collect();
        assert!(prime_bits.windows(2).all(|w| w[0] <= w[1]), "monotone: {prime_bits:?}");
        assert!(prime_bits[10] > prime_bits[1] + 20, "self-label grows with N: {prime_bits:?}");
    }

    #[test]
    fn interval_bits_track_log_n() {
        assert_eq!(interval_max_bits(1), 2);
        assert_eq!(interval_max_bits(1000), 2 * (1 + 9));
        assert_eq!(interval_max_bits(10052), 2 * (1 + 13));
    }

    #[test]
    fn prime_self_bits_matches_actual_primes_loosely() {
        // For a perfect tree with F=3, D=2 (N=13), the 13th prime is 41
        // (6 bits); the model may be off by a couple of bits, not more.
        let model = prime_self_bits(2, 3);
        let actual = 64 - xp_primes::nth_prime(13).leading_zeros() as u64;
        assert!(model.abs_diff(actual) <= 2, "model {model} vs actual {actual}");
    }

    #[test]
    fn degenerate_parameters() {
        assert_eq!(prime_self_bits(0, 50), 2, "a root alone needs one small prime");
        assert_eq!(prefix1_self_bits(0), 1);
        assert_eq!(prefix2_self_bits(0), 1);
        assert_eq!(prime_max_bits(0, 10), 0, "the root's label is 1");
    }
}
