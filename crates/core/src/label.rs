//! [`PrimeLabel`]: the label type of the top-down prime scheme.

use xp_bignum::reduce::Reducer;
use xp_bignum::UBig;
use xp_labelkit::codec::{read_bytes, read_varint, write_bytes, write_varint, CodecError};
use xp_labelkit::{AncestorTester, LabelCodec, LabelOps};

/// A top-down prime label.
///
/// `value = parent_label × self_label` (the root has value 1 and self-label
/// 1). `self_label` is a prime under the basic scheme, or `2^n` for leaf
/// nodes under Opt2; it is kept alongside the product because both the
/// parent test and the SC order table need it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimeLabel {
    value: UBig,
    self_label: UBig,
    /// `true` when the document was labeled with Opt2, whose ancestor test
    /// is Property 3 (`odd(label(x)) && label(y) mod label(x) == 0`) instead
    /// of Property 2's plain divisibility.
    odd_internal_mode: bool,
}

impl PrimeLabel {
    /// The root label: value 1, self-label 1.
    pub fn root(odd_internal_mode: bool) -> Self {
        PrimeLabel { value: UBig::one(), self_label: UBig::one(), odd_internal_mode }
    }

    /// A child label under `parent` with the given self-label.
    pub fn child_of(parent: &PrimeLabel, self_label: UBig) -> Self {
        PrimeLabel {
            value: &parent.value * &self_label,
            self_label,
            odd_internal_mode: parent.odd_internal_mode,
        }
    }

    /// Builds a label from raw parts (used by tests and deserialization).
    pub fn from_parts(value: UBig, self_label: UBig, odd_internal_mode: bool) -> Self {
        PrimeLabel { value, self_label, odd_internal_mode }
    }

    /// The full label value (the product along the root path).
    pub fn value(&self) -> &UBig {
        &self.value
    }

    /// The self-label (prime, or a power of two for Opt2 leaves).
    pub fn self_label(&self) -> &UBig {
        &self.self_label
    }

    /// Self-label as `u64` — always fits for realistic documents (the
    /// `2^63` Opt2 threshold and sub-billion prime streams guarantee it).
    ///
    /// # Panics
    /// Panics if the self-label exceeds `u64`.
    pub fn self_label_u64(&self) -> u64 {
        // Documented panic contract (see `# Panics` above).
        #[allow(clippy::expect_used)]
        self.self_label.to_u64().expect("self-label fits in u64")
    }

    /// The "parent-label" part: `value / self_label` (§3's terminology).
    pub fn parent_part(&self) -> UBig {
        let (q, r) = self.value.divrem(&self.self_label);
        debug_assert!(r.is_zero(), "label must be divisible by its self-label");
        q
    }

    /// `true` iff this label was produced under Opt2.
    pub fn odd_internal_mode(&self) -> bool {
        self.odd_internal_mode
    }
}

impl LabelOps for PrimeLabel {
    /// Property 2 (basic) / Property 3 (Opt2): `x` is an ancestor of `y` iff
    /// `label(y) mod label(x) = 0` — with the extra `odd(label(x))` guard in
    /// Opt2 mode, which excludes the power-of-two leaf labels that would
    /// otherwise spuriously divide their siblings' labels.
    fn is_ancestor_of(&self, other: &Self) -> bool {
        if self.value == other.value {
            return false;
        }
        if self.odd_internal_mode && !self.value.is_odd() {
            return false;
        }
        other.value.is_multiple_of(&self.value)
    }

    /// Parent test: ancestor, and the quotient is exactly the child's
    /// self-label (`x.value · y.self = y.value`).
    fn is_parent_of(&self, other: &Self) -> bool {
        self.is_ancestor_of(other) && &self.value * &other.self_label == other.value
    }

    fn size_bits(&self) -> u64 {
        self.value.bit_len()
    }

    /// Fixed-ancestor test with the division front-loaded: one Barrett
    /// context ([`Reducer`]) is built for `self.value`, so each candidate
    /// costs two multiplications instead of a full Knuth division — the
    /// hot path of the descendant axis and the structural join, where one
    /// ancestor label is tested against many node labels.
    ///
    /// Answers are identical to [`LabelOps::is_ancestor_of`] (the
    /// `predicate_differential` suite pins this end to end).
    fn ancestor_tester(&self) -> AncestorTester<'_, Self> {
        if self.odd_internal_mode && !self.value.is_odd() {
            // Property 3's odd-guard rejects this label as an ancestor of
            // anything; no division will ever run.
            return Box::new(|_| false);
        }
        if self.value.is_zero() {
            // Degenerate hand-built label; keep the plain path's semantics.
            return Box::new(move |other| self.is_ancestor_of(other));
        }
        let reducer = Reducer::new(self.value.clone());
        Box::new(move |other| self.value != other.value && reducer.is_multiple_of(&other.value))
    }
}

impl LabelCodec for PrimeLabel {
    fn encode(&self, out: &mut Vec<u8>) {
        write_bytes(out, &self.value.to_le_bytes());
        write_bytes(out, &self.self_label.to_le_bytes());
        write_varint(out, u64::from(self.odd_internal_mode));
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let value = UBig::from_le_bytes(read_bytes(input)?);
        let self_label = UBig::from_le_bytes(read_bytes(input)?);
        let odd = read_varint(input)? != 0;
        if !value.is_multiple_of(&self_label) {
            return Err(CodecError::Corrupt("label not divisible by its self-label"));
        }
        Ok(PrimeLabel { value, self_label, odd_internal_mode: odd })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lbl(value: u64, self_label: u64, odd: bool) -> PrimeLabel {
        PrimeLabel::from_parts(UBig::from(value), UBig::from(self_label), odd)
    }

    #[test]
    fn figure2_topdown_example() {
        // Figure 2: root=1; children 2, 3; node "10" has parent-label 2 and
        // self-label 5.
        let root = PrimeLabel::root(false);
        let left = PrimeLabel::child_of(&root, UBig::from(2u64));
        let ten = PrimeLabel::child_of(&left, UBig::from(5u64));
        assert_eq!(ten.value(), &UBig::from(10u64));
        assert_eq!(ten.parent_part(), UBig::from(2u64));
        assert!(root.is_ancestor_of(&ten));
        assert!(left.is_ancestor_of(&ten));
        assert!(left.is_parent_of(&ten));
        assert!(!root.is_parent_of(&ten));
        assert!(!ten.is_ancestor_of(&left));
    }

    #[test]
    fn labels_are_not_their_own_ancestors() {
        let l = lbl(6, 3, false);
        assert!(!l.is_ancestor_of(&l));
        assert!(!l.is_parent_of(&l));
    }

    #[test]
    fn property3_guard_rejects_even_leaf_labels() {
        // Two Opt2 leaves under the same parent (value 3): 3·2=6 and 3·4=12.
        // 12 is a multiple of 6, but 6 is even, so it must NOT be an ancestor.
        let parent = lbl(3, 3, true);
        let leaf1 = lbl(6, 2, true);
        let leaf2 = lbl(12, 4, true);
        assert!(leaf2.value().is_multiple_of(leaf1.value()), "raw divisibility holds");
        assert!(!leaf1.is_ancestor_of(&leaf2), "Property 3 guard must reject it");
        assert!(parent.is_ancestor_of(&leaf1));
        assert!(parent.is_ancestor_of(&leaf2));
        assert!(parent.is_parent_of(&leaf1));
        assert!(parent.is_parent_of(&leaf2));
    }

    #[test]
    fn plain_mode_allows_even_internal_labels() {
        // Without Opt2, the prime 2 labels an internal node: value 2 must be
        // a valid ancestor of value 10.
        let two = lbl(2, 2, false);
        let ten = lbl(10, 5, false);
        assert!(two.is_ancestor_of(&ten));
    }

    #[test]
    fn parent_test_requires_exact_quotient() {
        // 30 = 2·3·5. Node 2 is an ancestor but not the parent of 30 when
        // 30's self-label is 5 (its parent is 6).
        let two = lbl(2, 2, false);
        let six = lbl(6, 3, false);
        let thirty = lbl(30, 5, false);
        assert!(two.is_ancestor_of(&thirty));
        assert!(!two.is_parent_of(&thirty));
        assert!(six.is_parent_of(&thirty));
    }

    #[test]
    fn size_is_bit_length_of_the_product() {
        assert_eq!(lbl(1, 1, false).size_bits(), 1);
        assert_eq!(lbl(255, 5, false).size_bits(), 8);
        assert_eq!(lbl(256, 2, false).size_bits(), 9);
    }

    #[test]
    fn codec_round_trips() {
        use xp_labelkit::LabelCodec;
        for label in [
            PrimeLabel::root(false),
            PrimeLabel::root(true),
            lbl(30, 5, false),
            lbl(12, 4, true),
            PrimeLabel::from_parts(UBig::from(3u64).pow(100), UBig::from(3u64), false),
        ] {
            let mut buf = Vec::new();
            label.encode(&mut buf);
            let mut slice = buf.as_slice();
            let decoded = PrimeLabel::decode(&mut slice).unwrap();
            assert_eq!(decoded, label);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn codec_rejects_inconsistent_labels() {
        use xp_labelkit::LabelCodec;
        let mut buf = Vec::new();
        lbl(30, 7, false).encode(&mut buf); // 7 does not divide 30
        assert!(PrimeLabel::decode(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn ancestor_tester_matches_plain_test_everywhere() {
        // A small forest of labels covering both modes, the odd-guard, huge
        // values, and self-comparison; the Barrett-backed tester must agree
        // with the division-based test on every ordered pair.
        let labels = [
            PrimeLabel::root(false),
            PrimeLabel::root(true),
            lbl(2, 2, false),
            lbl(6, 3, false),
            lbl(30, 5, false),
            lbl(6, 2, true),
            lbl(12, 4, true),
            lbl(3, 3, true),
            PrimeLabel::from_parts(UBig::from(3u64).pow(200), UBig::from(3u64), false),
            PrimeLabel::from_parts(UBig::from(3u64).pow(100), UBig::from(3u64), false),
        ];
        for a in &labels {
            let tester = a.ancestor_tester();
            for b in &labels {
                assert_eq!(
                    tester(b),
                    a.is_ancestor_of(b),
                    "tester disagrees for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn siblings_are_unrelated() {
        let root = PrimeLabel::root(false);
        let a = PrimeLabel::child_of(&root, UBig::from(2u64));
        let b = PrimeLabel::child_of(&root, UBig::from(3u64));
        assert!(!a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
    }
}
