//! Decoding labels back into ancestor paths.
//!
//! A top-down prime label is the *product of the self-labels on the
//! root-to-node path* — so the label alone, factorized, recovers the whole
//! ancestry. This module implements that decoding: given a label and the
//! document's self-label → node directory, [`decode_path`] returns the
//! root-to-node chain with no tree access whatsoever. It is the strongest
//! form of the paper's "determine the relationships … simply by examining
//! their labels": not just *whether* x is an ancestor of y, but the entire
//! ordered ancestor chain, from one integer.

use crate::label::PrimeLabel;
use crate::ordered::OrderedPrimeDoc;
use xp_bignum::UBig;
use xp_primes::factor::factorize;
use xp_xmltree::NodeId;

/// Why a label could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The label exceeds `u64` (decoding uses machine-word factorization;
    /// labels of documents up to millions of nodes fit when the path is
    /// short, but deep paths overflow — walk the divisor chain instead).
    TooLarge,
    /// A prime factor is not a known self-label in this document.
    UnknownSelfLabel(u64),
    /// A self-label appears squared — top-down labels are squarefree.
    NotSquarefree(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooLarge => write!(f, "label exceeds u64; use the divisor chain"),
            DecodeError::UnknownSelfLabel(p) => write!(f, "prime {p} is not a self-label here"),
            DecodeError::NotSquarefree(p) => write!(f, "self-label {p} repeats in the label"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Factorizes `label` and maps every prime factor to its node, returning
/// the root-to-node path (shallowest first). The root (label 1) is not part
/// of the product and therefore not in the result.
///
/// Order within the chain is recovered from the labels themselves:
/// ancestors divide descendants, so sorting by divisibility-chain depth —
/// equivalently by label magnitude — orders the path.
pub fn decode_path(doc: &OrderedPrimeDoc, label: &PrimeLabel) -> Result<Vec<NodeId>, DecodeError> {
    let value = label.value().to_u64().ok_or(DecodeError::TooLarge)?;
    let mut chain: Vec<(UBig, NodeId)> = Vec::new();
    for (p, e) in factorize(value) {
        if e > 1 {
            return Err(DecodeError::NotSquarefree(p));
        }
        let node = doc.node_with_self_label(p).ok_or(DecodeError::UnknownSelfLabel(p))?;
        chain.push((doc.labels().label(node).value().clone(), node));
    }
    // A node's label is the product of its ancestors' self-labels, so along
    // one root path the label values strictly increase with depth.
    chain.sort();
    Ok(chain.into_iter().map(|(_, n)| n).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::LabelOps;
    use xp_xmltree::parse;

    #[test]
    fn decodes_a_full_root_path() {
        let tree = parse("<a><b><c><d/></c></b><e/></a>").unwrap();
        let doc = OrderedPrimeDoc::build(&tree, 5).unwrap();
        let d = tree
            .elements()
            .find(|&n| tree.tag(n) == Some("d"))
            .unwrap();
        let path = decode_path(&doc, doc.labels().label(d)).unwrap();
        // Path = b, c, d (the root's self-label 1 contributes no factor).
        let tags: Vec<&str> = path.iter().map(|&n| tree.tag(n).unwrap()).collect();
        assert_eq!(tags, ["b", "c", "d"]);
        // Shallow-to-deep order.
        for w in path.windows(2) {
            assert!(tree.is_ancestor(w[0], w[1]));
        }
    }

    #[test]
    fn decoding_agrees_with_the_tree_for_every_node() {
        let tree = parse("<r><x><y><z/><w/></y></x><q><p/></q></r>").unwrap();
        let doc = OrderedPrimeDoc::build(&tree, 3).unwrap();
        for node in tree.elements() {
            let path = decode_path(&doc, doc.labels().label(node)).unwrap();
            let mut expected: Vec<NodeId> =
                tree.ancestors(node).filter(|&a| a != tree.root()).collect();
            expected.reverse();
            expected.push(node);
            let expected: Vec<NodeId> =
                if node == tree.root() { Vec::new() } else { expected };
            assert_eq!(path, expected, "node {node}");
        }
    }

    #[test]
    fn decoded_path_respects_label_divisibility() {
        let tree = parse("<a><b><c/></b></a>").unwrap();
        let doc = OrderedPrimeDoc::build(&tree, 5).unwrap();
        let c = tree.elements().last().unwrap();
        let label = doc.labels().label(c);
        for anc in decode_path(&doc, label).unwrap() {
            let anc_label = doc.labels().label(anc);
            assert!(anc_label == label || anc_label.is_ancestor_of(label));
        }
    }

    #[test]
    fn unknown_prime_is_reported() {
        let tree = parse("<a><b/></a>").unwrap();
        let doc = OrderedPrimeDoc::build(&tree, 5).unwrap();
        let fake = PrimeLabel::from_parts(UBig::from(9973u64), UBig::from(9973u64), false);
        assert_eq!(decode_path(&doc, &fake), Err(DecodeError::UnknownSelfLabel(9973)));
    }

    #[test]
    fn oversized_labels_are_rejected_not_mangled() {
        let tree = parse("<a><b/></a>").unwrap();
        let doc = OrderedPrimeDoc::build(&tree, 5).unwrap();
        let huge = PrimeLabel::from_parts(UBig::from(3u64).pow(100), UBig::from(3u64), false);
        assert_eq!(decode_path(&doc, &huge), Err(DecodeError::TooLarge));
    }
}
