//! Tree decomposition (§3.2's final optimization, after \[10\]).
//!
//! "We can decompose an XML tree into several sub-trees. The nodes in each
//! sub-tree are first labeled separately. A global tree that comprises of
//! the root nodes of these sub-trees is constructed and labeled. \[10\]
//! finds that this tree decomposition approach can effectively reduce the
//! label size of dynamic labeling schemes for trees with great depths."
//!
//! Implementation: every node at a depth that is a multiple of `cut_depth`
//! becomes a **subtree root**. Each subtree is labeled independently with
//! the top-down prime scheme — so the small primes are *reused* in every
//! subtree, which is exactly where the size saving comes from. The global
//! tree over the subtree roots is prime-labeled too. A node is addressed by
//! `(subtree id, local label)`; two extra per-subtree facts (the global
//! label of its root, and the root's *anchor* — its local label inside the
//! parent subtree) make the cross-subtree ancestor test label-only:
//!
//! * same subtree → local divisibility test;
//! * different subtrees → `x` is an ancestor of `y` iff `x`'s subtree-root
//!   globally precedes `y`'s (global divisibility) **and** `x` is a local
//!   ancestor-or-self of the anchor of the first subtree on `y`'s root
//!   chain that hangs inside `x`'s subtree.

use crate::label::PrimeLabel;
use crate::topdown::TopDownPrime;
use std::collections::HashMap;
use xp_labelkit::{shard_capacity_check, DynamicError, LabelOps, Scheme, SHARD_ID_CAPACITY};
use xp_xmltree::{NodeId, XmlTree};

/// Identifier of one subtree in a decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubtreeId(u32);

/// Allocates the next [`SubtreeId`], failing with a typed error instead of
/// silently truncating once the decomposition exceeds `capacity` subtrees
/// (or the hard `u32` id space, whichever is smaller).
fn alloc_subtree_id(next_index: usize, capacity: usize) -> Result<SubtreeId, DynamicError> {
    match shard_capacity_check(next_index, capacity) {
        Ok(raw) => Ok(SubtreeId(raw)),
        Err(e) => Err(DynamicError::Scheme(Box::new(e))),
    }
}

/// A node's address under decomposition: which subtree, plus the local
/// prime label inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecomposedLabel {
    /// The subtree this node lives in.
    pub subtree: SubtreeId,
    /// The top-down prime label *within* that subtree.
    pub local: PrimeLabel,
}

impl DecomposedLabel {
    /// Storage size: the local label plus a subtree id (paid at the id's
    /// own bit width, like the Dewey accounting).
    pub fn size_bits(&self) -> u64 {
        let id_bits = u64::from(32 - self.subtree.0.max(1).leading_zeros());
        id_bits + self.local.size_bits()
    }
}

#[derive(Debug, Clone)]
struct SubtreeInfo {
    /// Subtree holding this subtree's root's parent (None for the top).
    parent_subtree: Option<SubtreeId>,
    /// Local label of this subtree's root *inside the parent subtree* —
    /// i.e. of the parent node it hangs under ("anchor").
    anchor: Option<PrimeLabel>,
    /// Label of this subtree's root in the global tree.
    global: PrimeLabel,
}

/// A prime-labeled document under tree decomposition.
#[derive(Debug, Clone)]
pub struct DecomposedPrimeDoc {
    labels: HashMap<NodeId, DecomposedLabel>,
    subtrees: Vec<SubtreeInfo>,
    cut_depth: usize,
}

impl DecomposedPrimeDoc {
    /// Decomposes at every depth multiple of `cut_depth` (≥ 1) and labels
    /// each subtree and the global tree with the unoptimized top-down
    /// scheme.
    ///
    /// # Panics
    ///
    /// Panics if the decomposition would exceed the `u32` subtree-id space
    /// (see [`DecomposedPrimeDoc::try_build`] for the fallible form).
    pub fn build(tree: &XmlTree, cut_depth: usize) -> Self {
        match Self::try_build(tree, cut_depth) {
            Ok(doc) => doc,
            Err(e) => panic!("decomposition failed: {e}"),
        }
    }

    /// Fallible [`DecomposedPrimeDoc::build`]: returns a typed
    /// [`DynamicError`] instead of truncating subtree ids when the
    /// decomposition exceeds the `u32` id space.
    pub fn try_build(tree: &XmlTree, cut_depth: usize) -> Result<Self, DynamicError> {
        Self::try_build_with_capacity(tree, cut_depth, SHARD_ID_CAPACITY)
    }

    /// [`DecomposedPrimeDoc::try_build`] with an explicit subtree-count
    /// ceiling (never more than the hard `u32` id space). The boundary is
    /// exercised in tests through this hook; production callers use
    /// [`DecomposedPrimeDoc::try_build`].
    pub fn try_build_with_capacity(
        tree: &XmlTree,
        cut_depth: usize,
        capacity: usize,
    ) -> Result<Self, DynamicError> {
        assert!(cut_depth >= 1, "cut depth must be positive");

        // Pass 1: assign every node to a subtree; collect subtree roots in
        // document order (their subtree ids are their discovery order).
        let mut subtree_of: HashMap<NodeId, SubtreeId> = HashMap::new();
        let mut roots: Vec<NodeId> = Vec::new();
        let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
        let mut depth_of: HashMap<NodeId, usize> = HashMap::new();
        while let Some((node, depth)) = stack.pop() {
            depth_of.insert(node, depth);
            let id = if depth % cut_depth == 0 {
                let id = alloc_subtree_id(roots.len(), capacity)?;
                roots.push(node);
                id
            } else {
                // Invariant: depth % cut_depth != 0 implies depth > 0.
                #[allow(clippy::expect_used)]
                {
                    subtree_of[&tree.parent(node).expect("non-root at depth > 0")]
                }
            };
            subtree_of.insert(node, id);
            for child in tree.element_children(node).collect::<Vec<_>>().into_iter().rev() {
                stack.push((child, depth + 1));
            }
        }

        // Pass 2: label each subtree locally. A subtree's membership is
        // "descendants until the next cut"; we label by walking from each
        // root with a fresh scheme, mirroring the top-down assignment but
        // stopping at subtree boundaries. Easiest correct route: build a
        // shadow XmlTree per subtree, then map labels back. Every subtree
        // draws from its own fresh pool (that reuse of the small primes IS
        // the size saving), so subtrees are fully independent and label
        // concurrently on the xp_par pool; results merge in subtree order,
        // making the map's contents thread-count-independent.
        let mut anchors: Vec<Option<PrimeLabel>> = vec![None; roots.len()];
        let mut parent_subtree: Vec<Option<SubtreeId>> = vec![None; roots.len()];
        let per_subtree: Vec<Vec<(NodeId, DecomposedLabel)>> =
            xp_par::par_map_indexed(roots.len(), |idx| {
                let root = roots[idx];
                // Allocated (and range-checked) in pass 1.
                let id = subtree_of[&root];
                // Collect this subtree's nodes (preorder) and build the shadow.
                let mut shadow = XmlTree::new("s");
                let mut map: Vec<(NodeId, NodeId)> = vec![(root, shadow.root())];
                let mut walk: Vec<(NodeId, NodeId)> = vec![(root, shadow.root())];
                while let Some((orig, copy)) = walk.pop() {
                    for child in tree.element_children(orig) {
                        if subtree_of[&child] != id {
                            continue; // next cut: child starts its own subtree
                        }
                        let c = shadow.append_element(copy, "s");
                        map.push((child, c));
                        walk.push((child, c));
                    }
                }
                let local = TopDownPrime::unoptimized().label(&shadow);
                map.into_iter()
                    .map(|(orig, copy)| {
                        (orig, DecomposedLabel { subtree: id, local: local.label(copy).clone() })
                    })
                    .collect()
            });
        let mut labels: HashMap<NodeId, DecomposedLabel> = HashMap::new();
        for subtree_labels in per_subtree {
            labels.extend(subtree_labels);
        }

        // Pass 3: anchors + the global tree.
        let mut global_shadow = XmlTree::new("g");
        let mut global_map: Vec<(usize, NodeId)> = Vec::new(); // subtree idx -> global node
        let mut global_node_of: HashMap<SubtreeId, NodeId> = HashMap::new();
        // Roots are in document order, so parents precede children.
        for (idx, &root) in roots.iter().enumerate() {
            let id = subtree_of[&root];
            let gnode = if let Some(parent) = tree.parent(root) {
                let pid = subtree_of[&parent];
                parent_subtree[idx] = Some(pid);
                anchors[idx] = Some(labels[&parent].local.clone());
                let gparent = global_node_of[&pid];
                global_shadow.append_element(gparent, "g")
            } else {
                global_shadow.root()
            };
            global_node_of.insert(id, gnode);
            global_map.push((idx, gnode));
        }
        let global_labels = TopDownPrime::unoptimized().label(&global_shadow);
        let subtrees: Vec<SubtreeInfo> = global_map
            .into_iter()
            .map(|(idx, gnode)| SubtreeInfo {
                parent_subtree: parent_subtree[idx],
                anchor: anchors[idx].clone(),
                global: global_labels.label(gnode).clone(),
            })
            .collect();

        Ok(DecomposedPrimeDoc { labels, subtrees, cut_depth })
    }

    /// The cut depth the decomposition was built with.
    pub fn cut_depth(&self) -> usize {
        self.cut_depth
    }

    /// Number of subtrees.
    pub fn subtree_count(&self) -> usize {
        self.subtrees.len()
    }

    /// A node's decomposed label.
    pub fn label(&self, node: NodeId) -> &DecomposedLabel {
        &self.labels[&node]
    }

    /// Maximum label size in bits over all nodes.
    pub fn max_label_bits(&self) -> u64 {
        self.labels.values().map(|l| l.size_bits()).max().unwrap_or(0)
    }

    fn info(&self, id: SubtreeId) -> &SubtreeInfo {
        &self.subtrees[id.0 as usize]
    }

    /// Label-only ancestor test across the decomposition.
    pub fn is_ancestor(&self, x: NodeId, y: NodeId) -> bool {
        let lx = &self.labels[&x];
        let ly = &self.labels[&y];
        if lx.subtree == ly.subtree {
            return lx.local.is_ancestor_of(&ly.local);
        }
        // x can only be an ancestor if its subtree's root globally precedes
        // (or is) y's subtree root.
        let gx = &self.info(lx.subtree).global;
        let gy = &self.info(ly.subtree).global;
        if !(gx == gy || gx.is_ancestor_of(gy)) {
            return false;
        }
        // Climb y's subtree-root chain to the subtree hanging inside x's.
        let mut at = ly.subtree;
        loop {
            let info = self.info(at);
            match info.parent_subtree {
                None => return false, // reached the top without crossing x
                Some(p) if p == lx.subtree => {
                    // x must be a local ancestor-or-self of the anchor.
                    // Invariant: parent_subtree is Some, so this subtree
                    // hangs off an anchor by construction.
                    #[allow(clippy::expect_used)]
                    let anchor = info.anchor.as_ref().expect("non-top subtree has an anchor");
                    return anchor == &lx.local || lx.local.is_ancestor_of(anchor);
                }
                Some(p) => at = p,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_datagen::builders::{chain, random_tree, RandomTreeParams};
    use xp_xmltree::parse;

    fn check_against_tree(tree: &XmlTree, cut: usize) {
        let doc = DecomposedPrimeDoc::build(tree, cut);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                assert_eq!(
                    doc.is_ancestor(x, y),
                    tree.is_ancestor(x, y),
                    "cut={cut} ancestor({x},{y})"
                );
            }
        }
    }

    #[test]
    fn exact_on_small_trees_for_all_cut_depths() {
        let tree = parse("<a><b><c><d><e/><f/></d></c></b><g><h><i/></h></g></a>").unwrap();
        for cut in 1..=6 {
            check_against_tree(&tree, cut);
        }
    }

    #[test]
    fn exact_on_random_trees() {
        for seed in 0..5 {
            let tree = random_tree(
                seed,
                &RandomTreeParams { nodes: 120, max_depth: 10, max_fanout: 5, tag_variety: 3 },
            );
            for cut in [1, 2, 3, 5] {
                check_against_tree(&tree, cut);
            }
        }
    }

    #[test]
    fn cut_one_makes_every_node_a_subtree_root() {
        let tree = parse("<a><b/><c><d/></c></a>").unwrap();
        let doc = DecomposedPrimeDoc::build(&tree, 1);
        assert_eq!(doc.subtree_count(), 4);
        check_against_tree(&tree, 1);
    }

    #[test]
    fn deep_chains_get_dramatically_smaller_labels() {
        // The paper's motivation: depth is the prime scheme's weakness;
        // decomposition caps the product length at cut_depth factors.
        let deep = chain(120);
        let flat = TopDownPrime::unoptimized().label(&deep).size_stats().max_bits;
        let doc = DecomposedPrimeDoc::build(&deep, 8);
        let decomposed = doc.max_label_bits();
        assert!(
            decomposed * 4 < flat,
            "decomposed {decomposed} bits vs flat {flat} bits"
        );
        check_against_tree(&deep, 8);
    }

    #[test]
    fn shallow_documents_pay_almost_nothing() {
        let tree = parse("<a><b><c/></b><d><e/></d></a>").unwrap();
        let doc = DecomposedPrimeDoc::build(&tree, 10);
        assert_eq!(doc.subtree_count(), 1, "no cut is ever reached");
        check_against_tree(&tree, 10);
    }

    #[test]
    fn subtree_capacity_overflow_is_a_typed_error_not_truncation() {
        // Four elements at cut 1 → four subtrees. A capacity of 3 must
        // surface as a typed DynamicError; 4 exactly fits.
        let tree = parse("<a><b/><c><d/></c></a>").unwrap();
        match DecomposedPrimeDoc::try_build_with_capacity(&tree, 1, 3) {
            Err(DynamicError::Scheme(e)) => {
                assert!(e.to_string().contains("capacity"), "got: {e}");
            }
            other => panic!("expected capacity error, got {other:?}"),
        }
        let doc = DecomposedPrimeDoc::try_build_with_capacity(&tree, 1, 4).unwrap();
        assert_eq!(doc.subtree_count(), 4);
        // The public fallible form uses the full u32 id space.
        assert!(DecomposedPrimeDoc::try_build(&tree, 1).is_ok());
    }

    #[test]
    fn subtree_ids_and_locals_are_consistent() {
        let tree = parse("<a><b><c><d/></c></b></a>").unwrap();
        let doc = DecomposedPrimeDoc::build(&tree, 2);
        // Depths: a=0 b=1 c=2 d=3 → subtrees {a,b} and {c,d}.
        assert_eq!(doc.subtree_count(), 2);
        let nodes: Vec<NodeId> = tree.elements().collect();
        assert_eq!(doc.label(nodes[0]).subtree, doc.label(nodes[1]).subtree);
        assert_eq!(doc.label(nodes[2]).subtree, doc.label(nodes[3]).subtree);
        assert_ne!(doc.label(nodes[0]).subtree, doc.label(nodes[2]).subtree);
        // Local roots restart at label 1 in each subtree.
        assert!(doc.label(nodes[0]).local.value().is_one());
        assert!(doc.label(nodes[2]).local.value().is_one());
    }
}
