//! One-pass streaming labeling: SAX events in, label rows out.
//!
//! The paper's deployment stores labels in a relational table; the XML tree
//! itself never needs to be materialized. [`StreamingLabeler`] consumes
//! [`xp_xmltree::sax::SaxEvent`]s and emits one [`LabelRow`] per element as
//! soon as its start tag is seen — constant memory in the tree width (the
//! open-element stack), regardless of document length.
//!
//! The streaming scheme is the unoptimized top-down assignment: Opt2 cannot
//! stream (whether a node is a leaf is unknown at its start tag), which is
//! itself a finding worth stating — the optimization trades streamability
//! for label size.

use crate::label::PrimeLabel;
use xp_primes::PrimePool;
use xp_xmltree::sax::{parse_sax, SaxEvent};
use xp_xmltree::ParseError;

/// One emitted row: everything a relational label table stores per element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelRow {
    /// Element name.
    pub tag: String,
    /// Depth (root = 0).
    pub depth: usize,
    /// Document-order number (root = 0) — what the SC table would fold.
    pub order: u64,
    /// The top-down prime label.
    pub label: PrimeLabel,
}

/// Incremental labeler over SAX events.
#[derive(Debug)]
pub struct StreamingLabeler {
    pool: PrimePool,
    /// Labels of the currently open elements (root at the bottom).
    stack: Vec<PrimeLabel>,
    next_order: u64,
}

impl StreamingLabeler {
    /// A fresh labeler (plain top-down scheme, no reservation).
    pub fn new() -> Self {
        StreamingLabeler { pool: PrimePool::unreserved(), stack: Vec::new(), next_order: 0 }
    }

    /// Number of currently open elements.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Feeds one event; returns the row for a start-element event.
    pub fn feed(&mut self, event: &SaxEvent) -> Option<LabelRow> {
        match event {
            SaxEvent::StartElement { tag, .. } => {
                let label = match self.stack.last() {
                    None => PrimeLabel::root(false),
                    Some(parent) => {
                        PrimeLabel::child_of(parent, xp_bignum::UBig::from(self.pool.general_prime()))
                    }
                };
                let row = LabelRow {
                    tag: tag.clone(),
                    depth: self.stack.len(),
                    order: self.next_order,
                    label: label.clone(),
                };
                self.next_order += 1;
                self.stack.push(label);
                Some(row)
            }
            SaxEvent::EndElement { .. } => {
                self.stack.pop();
                None
            }
            SaxEvent::Text(_) => None,
        }
    }
}

impl Default for StreamingLabeler {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses and labels in a single pass, returning the label rows in document
/// order — never building a tree.
pub fn label_stream(input: &str) -> Result<Vec<LabelRow>, ParseError> {
    let mut labeler = StreamingLabeler::new();
    let mut rows = Vec::new();
    parse_sax(input, |event| {
        if let Some(row) = labeler.feed(&event) {
            rows.push(row);
        }
    })?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topdown::TopDownPrime;
    use xp_labelkit::{LabelOps, Scheme};
    use xp_xmltree::parse;

    const DOC: &str = "<a><b><c/><d/></b><e>text</e><f/></a>";

    #[test]
    fn streaming_labels_equal_tree_labels() {
        let rows = label_stream(DOC).unwrap();
        let tree = parse(DOC).unwrap();
        let doc = TopDownPrime::unoptimized().label(&tree);
        assert_eq!(rows.len(), tree.elements().count());
        for (row, node) in rows.iter().zip(tree.elements()) {
            assert_eq!(Some(row.tag.as_str()), tree.tag(node));
            assert_eq!(row.depth, tree.depth(node));
            assert_eq!(&row.label, doc.label(node), "node {node}");
        }
    }

    #[test]
    fn orders_are_preorder_positions() {
        let rows = label_stream(DOC).unwrap();
        let orders: Vec<u64> = rows.iter().map(|r| r.order).collect();
        assert_eq!(orders, (0..rows.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn ancestor_tests_work_on_streamed_rows() {
        let rows = label_stream(DOC).unwrap();
        // a(0) is an ancestor of everything; b(1) of c(2), d(3) only.
        assert!(rows[0].label.is_ancestor_of(&rows[5].label));
        assert!(rows[1].label.is_ancestor_of(&rows[2].label));
        assert!(rows[1].label.is_ancestor_of(&rows[3].label));
        assert!(!rows[1].label.is_ancestor_of(&rows[4].label));
        assert!(!rows[2].label.is_ancestor_of(&rows[3].label));
    }

    #[test]
    fn memory_is_bounded_by_depth_not_size() {
        // A wide flat document: the open stack never exceeds 2.
        let mut src = String::from("<r>");
        for _ in 0..500 {
            src.push_str("<x/>");
        }
        src.push_str("</r>");
        let mut labeler = StreamingLabeler::new();
        let mut max_depth = 0;
        xp_xmltree::sax::parse_sax(&src, |e| {
            labeler.feed(&e);
            max_depth = max_depth.max(labeler.open_depth());
        })
        .unwrap();
        assert_eq!(max_depth, 2);
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(label_stream("<a><b></a>").is_err());
    }
}
