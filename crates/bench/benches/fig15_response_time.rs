//! Per-query timing for Figure 15: the nine Table 2 queries across the
//! three labeling schemes on a replicated Shakespeare corpus.
//!
//! The harness binary `fig15_response_time` prints the paper's series from
//! a single timed sweep; this bench gives statistically solid per-query
//! numbers (smaller corpus + few samples keep the run tractable). Results
//! land in `results/bench_fig15.json`.

use xp_bench::experiments::timing::{corpus, evaluators};
use xp_query::queries::TEST_QUERIES;
use xp_testkit::bench::Harness;

fn main() {
    let tree = corpus(2);
    let evs = evaluators(&tree);
    let mut group = Harness::new("fig15");
    group.sample_size(10);
    for q in &TEST_QUERIES {
        for ev in &evs {
            group.bench(&format!("{}/{}", ev.name(), q.id), || ev.eval_str(&q.path).len());
        }
    }
    group.finish();
}
