//! Criterion timing for Figure 15: the nine Table 2 queries across the
//! three labeling schemes on a replicated Shakespeare corpus.
//!
//! The harness binary `fig15_response_time` prints the paper's series from
//! a single timed sweep; this bench gives statistically solid per-query
//! numbers (smaller corpus + few samples keep the run tractable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xp_bench::experiments::timing::{corpus, evaluators};
use xp_query::queries::TEST_QUERIES;

fn bench_queries(c: &mut Criterion) {
    let tree = corpus(2);
    let evs = evaluators(&tree);
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    for q in &TEST_QUERIES {
        for ev in &evs {
            group.bench_with_input(
                BenchmarkId::new(ev.name(), q.id),
                &q.path,
                |b, path| b.iter(|| ev.eval_str(path).len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
