//! Labeling throughput: how fast each scheme labels a mid-sized dataset
//! (D6, 2686 nodes) and the big one (D9, 10052 nodes).
//!
//! Run with `cargo bench --bench labeling_throughput`; per-iteration
//! min/median/p95 go to stdout and `results/bench_labeling.json`.

use xp_baselines::dewey::DeweyScheme;
use xp_baselines::interval::IntervalScheme;
use xp_baselines::prefix::{Prefix1Scheme, Prefix2Scheme};
use xp_datagen::datasets::dataset;
use xp_labelkit::Scheme;
use xp_prime::bottomup::BottomUpPrime;
use xp_prime::topdown::TopDownPrime;
use xp_testkit::bench::Harness;

fn main() {
    let mut group = Harness::new("labeling");
    group.sample_size(10);
    for id in ["D6", "D9"] {
        let tree = dataset(id).unwrap().generate(2004);
        group.bench(&format!("interval/{id}"), || IntervalScheme::dense().label(&tree).len());
        group.bench(&format!("prefix1/{id}"), || Prefix1Scheme.label(&tree).len());
        group.bench(&format!("prefix2/{id}"), || Prefix2Scheme.label(&tree).len());
        group.bench(&format!("dewey/{id}"), || DeweyScheme.label(&tree).len());
        group.bench(&format!("prime_unopt/{id}"), || TopDownPrime::unoptimized().label(&tree).len());
        group.bench(&format!("prime_optimized/{id}"), || TopDownPrime::optimized().label(&tree).len());
        group.bench(&format!("prime_bottomup/{id}"), || BottomUpPrime.label(&tree).len());
    }
    group.finish();
}
