//! Labeling throughput: how fast each scheme labels a mid-sized dataset
//! (D6, 2686 nodes) and the big one (D9, 10052 nodes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xp_baselines::dewey::DeweyScheme;
use xp_baselines::interval::IntervalScheme;
use xp_baselines::prefix::{Prefix1Scheme, Prefix2Scheme};
use xp_datagen::datasets::dataset;
use xp_labelkit::Scheme;
use xp_prime::bottomup::BottomUpPrime;
use xp_prime::topdown::TopDownPrime;

fn bench_labeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("labeling");
    group.sample_size(10);
    for id in ["D6", "D9"] {
        let tree = dataset(id).unwrap().generate(2004);
        group.bench_with_input(BenchmarkId::new("interval", id), &tree, |b, t| {
            b.iter(|| IntervalScheme::dense().label(t).len())
        });
        group.bench_with_input(BenchmarkId::new("prefix1", id), &tree, |b, t| {
            b.iter(|| Prefix1Scheme.label(t).len())
        });
        group.bench_with_input(BenchmarkId::new("prefix2", id), &tree, |b, t| {
            b.iter(|| Prefix2Scheme.label(t).len())
        });
        group.bench_with_input(BenchmarkId::new("dewey", id), &tree, |b, t| {
            b.iter(|| DeweyScheme.label(t).len())
        });
        group.bench_with_input(BenchmarkId::new("prime_unopt", id), &tree, |b, t| {
            b.iter(|| TopDownPrime::unoptimized().label(t).len())
        });
        group.bench_with_input(BenchmarkId::new("prime_optimized", id), &tree, |b, t| {
            b.iter(|| TopDownPrime::optimized().label(t).len())
        });
        group.bench_with_input(BenchmarkId::new("prime_bottomup", id), &tree, |b, t| {
            b.iter(|| BottomUpPrime.label(t).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_labeling);
criterion_main!(benches);
