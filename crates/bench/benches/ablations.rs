//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * CRT solver: extended-Euclid folding vs the paper's Euler-totient form.
//! * SC table construction and update cost across chunk sizes.
//! * Query join strategy: stack-tree structural join vs nested loops.
//!
//! Results land in `results/bench_<group>.json`, one group per ablation.

use xp_prime::crt;
use xp_primes::first_primes;
use xp_testkit::bench::Harness;

fn bench_crt_solvers() {
    let mut group = Harness::new("crt_solver");
    for k in [5usize, 15, 40] {
        let moduli: Vec<u64> = first_primes(k + 1)[1..].to_vec(); // odd primes
        let residues: Vec<u64> = moduli.iter().map(|&m| m / 2).collect();
        group.bench(&format!("egcd/{k}"), || crt::solve(&moduli, &residues).unwrap());
        group.bench(&format!("euler_totient/{k}"), || crt::solve_euler(&moduli, &residues).unwrap());
    }
    group.finish();
}

fn bench_sc_chunk_sizes() {
    // Shared with the `sc_maintenance` binary: chunk-size sweep at 2000
    // nodes plus the append-vs-rebuild size sweep, written to
    // results/bench_sc_table.json.
    let stats =
        xp_bench::experiments::updates::sc_maintenance(2000, &[250, 500, 1000, 2000, 4000], true);
    assert!(stats.incremental_beats_rebuild(), "append slower than rebuild: {stats:?}");
}

fn bench_join_strategies() {
    use xp_bench::experiments::timing::corpus;
    use xp_query::engine::{eval_path_with, Path};
    use xp_query::evaluators::{Evaluator, IntervalEvaluator};
    use xp_query::relstore::LabelTable;

    // A query with a large ancestor set × large candidate set: the shape
    // where nested loops blow up (Table 2's Q5 without the predicate).
    let tree = corpus(2);
    let ev = IntervalEvaluator::build(&tree);
    let _ = &ev as &dyn Evaluator;
    let path = Path::parse("//PLAY//SPEECH/preceding::LINE").unwrap();

    struct Oracle<'a>(&'a LabelTable<xp_baselines::IntervalLabel>);
    impl xp_query::engine::OrderOracle for Oracle<'_> {
        fn rank(&self, node: xp_xmltree::NodeId) -> u64 {
            self.0.label(node).order
        }
    }
    let oracle = Oracle(ev.table());

    let mut group = Harness::new("join_strategy");
    group.sample_size(10);
    group.bench("stack_tree", || eval_path_with(ev.table(), &oracle, &path, true).expect("static query").len());
    group.bench("nested_loop", || eval_path_with(ev.table(), &oracle, &path, false).expect("static query").len());
    group.finish();
}

fn bench_ordered_update_throughput() {
    use xp_baselines::interval::IntervalScheme;
    use xp_datagen::shakespeare::{generate_play, PlayParams};
    use xp_labelkit::Scheme;
    use xp_prime::ordered::OrderedPrimeDoc;

    // Wall-clock for one order-sensitive ACT insertion: the prime scheme's
    // incremental SC maintenance vs the full relabel a static scheme needs.
    let play = generate_play("Hamlet", 2004, &PlayParams::hamlet_like());
    let acts = |t: &xp_xmltree::XmlTree| -> Vec<xp_xmltree::NodeId> {
        t.elements().filter(|&n| t.tag(n) == Some("ACT")).collect()
    };

    let mut group = Harness::new("ordered_update");
    group.sample_size(10);
    group.bench_batched(
        "prime_sc_incremental",
        || {
            let t = play.clone();
            let doc = OrderedPrimeDoc::build(&t, 5).unwrap();
            (t, doc)
        },
        |(mut t, mut doc)| {
            let act3 = acts(&t)[2];
            doc.insert_sibling_before(&mut t, act3, "ACT").unwrap()
        },
    );
    group.bench_batched(
        "interval_full_relabel",
        || play.clone(),
        |mut t| {
            let act3 = acts(&t)[2];
            let new = t.create_element("ACT");
            t.insert_before(act3, new);
            IntervalScheme::dense().label(&t).len()
        },
    );
    group.finish();
}

fn main() {
    bench_crt_solvers();
    bench_sc_chunk_sizes();
    bench_join_strategies();
    bench_ordered_update_throughput();
}
