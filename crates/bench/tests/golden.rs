//! Reproducibility: every experiment is a pure function of the fixed seed,
//! so its rows must regenerate bit-identically — and the analytic /
//! seeded-data figures must match checked-in golden values.

use xp_bench::experiments::{sizes, updates};

#[test]
fn experiments_are_deterministic() {
    assert_eq!(sizes::tab01().to_csv(), sizes::tab01().to_csv());
    assert_eq!(sizes::fig13().to_csv(), sizes::fig13().to_csv());
    assert_eq!(sizes::fig14().to_csv(), sizes::fig14().to_csv());
    assert_eq!(updates::fig16().to_csv(), updates::fig16().to_csv());
    assert_eq!(updates::fig18(5).to_csv(), updates::fig18(5).to_csv());
}

#[test]
fn fig04_matches_golden_values() {
    // Pure analytics: these can never drift without a formula change.
    let r = sizes::fig04();
    let row = |x: &str| -> Vec<String> {
        r.rows().iter().find(|row| row[0] == x).unwrap().clone()
    };
    assert_eq!(row("1"), ["1", "1", "1", "3"]);
    assert_eq!(row("15"), ["15", "15", "16", "11"]);
    assert_eq!(row("50"), ["50", "50", "24", "15"]);
}

#[test]
fn fig05_matches_golden_values() {
    let r = sizes::fig05();
    assert_eq!(r.rows()[0], ["0", "15", "16", "2"]);
    assert_eq!(r.rows()[10], ["10", "15", "16", "45"]);
}

#[test]
fn fig13_matches_golden_values() {
    // Seeded generation: stable for a fixed seed and generator version.
    let r = sizes::fig13();
    let row = |id: &str| -> Vec<String> {
        r.rows().iter().find(|row| row[0] == id).unwrap().clone()
    };
    assert_eq!(row("D1"), ["D1", "26", "26", "18", "13"]);
    assert_eq!(row("D4"), ["D4", "16", "16", "15", "3"]);
    assert_eq!(row("D7"), ["D7", "140", "140", "130", "53"]);
}

#[test]
fn fig16_matches_golden_values() {
    let r = updates::fig16();
    // Row for the 5000-node document: interval ≈ N, the rest constant.
    let row = r.rows().iter().find(|row| row[0] == "5000").unwrap();
    assert_eq!(row[2], "2", "optimized prime");
    assert_eq!(row[3], "1", "original prime");
    assert_eq!(row[4], "1", "prefix-2");
    let interval: usize = row[1].parse().unwrap();
    assert!((4000..=5001).contains(&interval));
}
