//! Runs every table/figure experiment in sequence (the full reproduction).
fn main() {
    use xp_bench::experiments::{sizes, timing, updates};
    sizes::fig03(10_000, 250).emit();
    sizes::fig04().emit();
    sizes::fig05().emit();
    sizes::tab01().emit();
    sizes::fig13().emit();
    sizes::fig14().emit();
    timing::tab02(5).emit();
    timing::fig15(5, 5).emit();
    timing::fig15_predicate_traffic(5).emit();
    updates::fig16().emit();
    updates::fig17().emit();
    updates::fig18(5).emit();
    updates::ablation_chunk_size().emit();
    sizes::ablation_decompose().emit();
}
