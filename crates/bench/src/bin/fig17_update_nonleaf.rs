//! Regenerates Figure 17: relabeling cost of non-leaf (wrapping) insertions.
fn main() {
    xp_bench::experiments::updates::fig17().emit();
}
