//! Regenerates Figure 16: relabeling cost of leaf insertions.
fn main() {
    xp_bench::experiments::updates::fig16().emit();
}
