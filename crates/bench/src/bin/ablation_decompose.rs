//! Ablation (beyond the paper): tree decomposition vs maximum label size.
fn main() {
    xp_bench::experiments::sizes::ablation_decompose().emit();
}
