//! Before/after experiment for the incremental SC maintenance path.
//!
//! Default mode regenerates `results/bench_sc_table.json` with the full
//! sweep (chunk-size family at 2000 nodes, append-vs-rebuild family at
//! 250..=4000 nodes) and asserts the two claims the incremental algebra
//! makes: a tail append never costs more than rebuilding the table from
//! scratch, and per-insert cost grows at most linearly in the table's bit
//! size — not quadratically, as the old order-recomputing pre-scan did.
//!
//! `--smoke` runs the same checks on small sizes without touching the
//! checked-in JSON — the `scripts/ci.sh` bench gate. Exits nonzero when a
//! check fails either way.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (fixed_n, sizes, linear_factor): (usize, &[usize], f64) = if smoke {
        // Keep the smoke gate quick but preserve an 8x size spread so a
        // reintroduced quadratic append path cannot hide in noise.
        (400, &[100, 800], 2.0)
    } else {
        (2000, &[250, 500, 1000, 2000, 4000], 2.0)
    };
    let stats = xp_bench::experiments::updates::sc_maintenance(fixed_n, sizes, !smoke);

    println!();
    for (&(n, append), &(_, rebuild)) in stats.append_ns.iter().zip(&stats.rebuild_ns) {
        println!(
            "n={n:>5}: append {append:>12.0} ns  vs rebuild {rebuild:>14.0} ns  ({:.0}x)",
            rebuild / append.max(1.0)
        );
    }

    let mut failed = false;
    if !stats.incremental_beats_rebuild() {
        eprintln!("FAIL: incremental per-insert median exceeds rebuild-from-scratch median");
        failed = true;
    }
    if !stats.append_cost_scales_at_most_linearly(linear_factor) {
        eprintln!("FAIL: per-insert append cost grows superlinearly in table size");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("sc-maintenance checks passed: appends beat rebuilds and scale at most linearly");
}
