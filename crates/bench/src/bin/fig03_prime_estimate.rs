//! Regenerates Figure 3: actual vs estimated prime-number bit lengths.
fn main() {
    xp_bench::experiments::sizes::fig03(10_000, 250).emit();
}
