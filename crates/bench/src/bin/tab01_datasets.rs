//! Regenerates Table 1: characteristics of the (synthesized) datasets.
fn main() {
    xp_bench::experiments::sizes::tab01().emit();
}
