//! Regenerates Figure 13: effect of Opt1/Opt2/Opt3 on label size.
fn main() {
    xp_bench::experiments::sizes::fig13().emit();
}
