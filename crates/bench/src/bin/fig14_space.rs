//! Regenerates Figure 14: space requirements of the labeling schemes.
fn main() {
    xp_bench::experiments::sizes::fig14().emit();
}
