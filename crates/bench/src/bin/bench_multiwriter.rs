//! Bench gate for the multi-writer relabel storm: N writer threads push
//! their disjoint-region scripts through one epoch loop concurrently
//! while readers query every region through the result cache.
//!
//! Default mode runs 8 writers × 120 steps and regenerates
//! `results/bench_multiwriter.json`. `--smoke` runs a small storm without
//! touching the checked-in JSON — the `scripts/ci.sh` bench gate. Either
//! way the run fails if
//!
//! * any scripted mutation is rejected (region scripts are always
//!   applicable — a rejection means anchors went stale across epochs),
//! * the quiesced document does not serialize byte-identically to the
//!   sequential writer-major oracle (the storm failed to converge),
//! * any sampled cached answer differs from a same-epoch cold
//!   evaluation, or
//! * the shut-down store fails its consistency suite.

use xp_bench::experiments::multiwriter::{multiwriter_bench, StormWorkload};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workload = if smoke {
        StormWorkload {
            writers: 3,
            steps_per_writer: 12,
            region_breadth: 12,
            readers: 2,
            reads_per_reader: 80,
        }
    } else {
        StormWorkload {
            writers: 8,
            steps_per_writer: 120,
            region_breadth: 2_500,
            readers: 4,
            reads_per_reader: 1_000,
        }
    };
    let stats = multiwriter_bench(&workload, !smoke);

    println!();
    println!(
        "{} writers × {} steps (regions of {}): {} mutations over {} epochs, {} labels touched",
        workload.writers,
        workload.steps_per_writer,
        workload.region_breadth,
        stats.mutations,
        stats.epochs,
        stats.labels_touched
    );
    println!(
        "apply latency  p50 {:>10.1} µs   p99 {:>10.1} µs   ({:.0} mutations/s)",
        stats.apply_p50_us, stats.apply_p99_us, stats.mutations_per_sec
    );
    println!(
        "read latency   p50 {:>10.1} µs   p99 {:>10.1} µs   (hit rate {:.1}% under storm)",
        stats.read_p50_us,
        stats.read_p99_us,
        stats.hit_rate * 100.0
    );
    println!(
        "differential: {} same-epoch comparisons, {} mismatches",
        stats.differential_checked, stats.differential_mismatches
    );

    let mut failed = false;
    if stats.rejected > 0 {
        eprintln!("FAIL: {} scripted mutations were rejected", stats.rejected);
        failed = true;
    }
    if stats.mutations != (workload.writers * workload.steps_per_writer) as u64 {
        eprintln!(
            "FAIL: {} mutations acknowledged, expected {}",
            stats.mutations,
            workload.writers * workload.steps_per_writer
        );
        failed = true;
    }
    if !stats.converged {
        eprintln!("FAIL: the storm did not converge to the writer-major oracle document");
        failed = true;
    }
    if stats.differential_mismatches > 0 {
        eprintln!(
            "FAIL: {} cached answers differed from cold evaluation",
            stats.differential_mismatches
        );
        failed = true;
    }
    if !stats.final_consistent {
        eprintln!("FAIL: the shut-down store failed its consistency suite");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("multiwriter checks passed: every interleaving converges, no stale answers");
}
