//! Bench gate for sharded documents: front-insert cost must be O(shard),
//! the fanned batch apply must parallelize, and sharded outputs must stay
//! byte-identical to the unsharded oracle at every thread count.
//!
//! Default mode runs the full 10⁷-node / 256-shard corpus and regenerates
//! `results/bench_sharding.json`. `--smoke` runs a 20k-node / 16-shard
//! corpus without touching the checked-in JSON — the `scripts/ci.sh`
//! bench gate. Either way the run fails if outputs diverge or the
//! front-insert cost ratio falls under the mode's floor; the parallel
//! speedup is additionally gated on hosts with ≥ 4 hardware threads
//! (timing claims mean nothing on one core — the JSON records
//! `host_threads` so checked-in numbers stay honest).

use std::fmt::Write as _;
use xp_bench::experiments::sharding::{sharding_bench, ShardingConfig, ShardingStats};

fn to_json(stats: &ShardingStats, samples: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"group\": \"sharding\",");
    let _ = writeln!(out, "  \"nodes\": {},", stats.nodes);
    let _ = writeln!(out, "  \"shards\": {},", stats.shards);
    let _ = writeln!(out, "  \"cut_depth\": {},", stats.cut_depth);
    let _ = writeln!(out, "  \"front_insert\": {{");
    for (key, cost) in
        [("unsharded", &stats.front_unsharded), ("sharded", &stats.front_sharded)]
    {
        let _ = writeln!(
            out,
            "    \"{key}\": {{\"labels_touched\": {}, \"side_updates\": {}, \"total_cost\": {}}},",
            cost.labels_touched, cost.side_updates, cost.total_cost,
        );
    }
    let _ = writeln!(out, "    \"cost_ratio\": {:.1}", stats.front_cost_ratio());
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"parallel_apply\": {{");
    let _ = writeln!(out, "    \"batch_mutations\": {},", stats.batch_mutations);
    let _ = writeln!(out, "    \"samples\": {samples},");
    let _ = writeln!(out, "    \"wall_ms\": [");
    for (i, &(threads, ms)) in stats.batch_wall_ms.iter().enumerate() {
        let comma = if i + 1 == stats.batch_wall_ms.len() { "" } else { "," };
        let _ = writeln!(out, "      {{\"threads\": {threads}, \"median_ms\": {ms:.2}}}{comma}");
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(out, "    \"speedup_8v1\": {:.2},", stats.speedup(8));
    let _ = writeln!(out, "    \"host_threads\": {}", stats.hardware_threads);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"outputs_identical\": {}", stats.outputs_identical);
    let _ = write!(out, "}}");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke { ShardingConfig::smoke() } else { ShardingConfig::full() };
    let stats = sharding_bench(&cfg);

    println!();
    println!(
        "corpus: {} nodes, {} shards (cut depth {})",
        stats.nodes, stats.shards, stats.cut_depth
    );
    println!(
        "front insert: unsharded cost {} ({} SC records), sharded cost {} ({} SC records) — {:.0}x",
        stats.front_unsharded.total_cost,
        stats.front_unsharded.side_updates,
        stats.front_sharded.total_cost,
        stats.front_sharded.side_updates,
        stats.front_cost_ratio(),
    );
    for &(threads, ms) in &stats.batch_wall_ms {
        println!(
            "batch apply ({} mutations) at {threads} threads: {ms:>8.2} ms  ({:.2}x vs 1)",
            stats.batch_mutations,
            stats.speedup(threads),
        );
    }
    println!("host threads: {}", stats.hardware_threads);

    let mut failed = false;
    if !stats.outputs_identical {
        eprintln!("FAIL: sharded outputs diverged from the unsharded oracle");
        failed = true;
    }
    // The O(shard) gate: the full 256-shard corpus must clear 10x; the
    // smoke corpus has far fewer shards, so its floor is proportionally
    // lower while still ruling out O(document) behaviour.
    let floor = if smoke { 4.0 } else { 10.0 };
    if stats.front_cost_ratio() < floor {
        eprintln!(
            "FAIL: front-insert cost ratio {:.1} under the {floor}x floor — not O(shard)",
            stats.front_cost_ratio()
        );
        failed = true;
    }
    if stats.hardware_threads >= 4 && stats.speedup(8) < 1.05 {
        eprintln!(
            "FAIL: batch apply speedup {:.2}x at 8 threads on a {}-thread host",
            stats.speedup(8),
            stats.hardware_threads
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }

    if !smoke {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join("bench_sharding.json");
            if std::fs::write(&path, to_json(&stats, cfg.samples)).is_ok() {
                println!("[written results/bench_sharding.json]");
            }
        }
    }
    println!(
        "sharding checks passed: front insert is O(shard) and outputs match the oracle everywhere"
    );
}
