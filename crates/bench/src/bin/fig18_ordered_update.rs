//! Regenerates Figure 18: order-sensitive ACT insertions into Hamlet
//! (SC chunk size 5, as in §5.4).
fn main() {
    xp_bench::experiments::updates::fig18(5).emit();
}
