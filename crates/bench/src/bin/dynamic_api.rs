//! Bench gate for the dynamic-update pipeline: a leaf insert's
//! [`RelabelReport`] patches the query engine's `LabelTable` in `O(report)`
//! rows, and patching never costs more than rebuilding the table.
//!
//! Default mode regenerates `results/bench_dynamic_api.json` over the full
//! update-experiment family (1000..=10000 nodes). `--smoke` runs the same
//! checks on the two ends of the family without touching the checked-in
//! JSON — the `scripts/ci.sh` bench gate. Exits nonzero when a check fails
//! either way.
//!
//! [`RelabelReport`]: xp_labelkit::RelabelReport

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let doc_indices: &[usize] = if smoke { &[0, 4] } else { &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9] };
    let stats = xp_bench::experiments::dynamic_api::dynamic_api(doc_indices, !smoke);

    println!();
    for ((&(n, patch), &(_, rebuild)), &(_, rows)) in
        stats.patch_ns.iter().zip(&stats.rebuild_ns).zip(&stats.patch_rows)
    {
        println!(
            "n={n:>5}: patch {patch:>10.0} ns ({rows} rows)  vs rebuild {rebuild:>12.0} ns  ({:.0}x)",
            rebuild / patch.max(1.0)
        );
    }

    let mut failed = false;
    if !stats.patch_beats_rebuild() {
        eprintln!("FAIL: incremental table patch median exceeds full-rebuild median");
        failed = true;
    }
    if !stats.patch_rows_independent_of_doc_size() {
        eprintln!("FAIL: leaf-insert patch touches a row count that grows with the document");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("dynamic-api checks passed: patches beat rebuilds and stay O(report)");
}
