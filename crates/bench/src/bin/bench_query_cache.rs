//! Bench gate for the epoch-stamped query-result cache: reader threads
//! run a 95% read / 5% mutation mix over a region-partitioned document,
//! with every mutation confined to the last region, twice — cache on and
//! cache off — plus an exact per-label-invalidation survivor probe.
//!
//! Default mode runs 8 readers against a ~10⁶-element document and
//! regenerates `results/bench_query_cache.json`. `--smoke` runs a small
//! configuration without touching the checked-in JSON — the
//! `scripts/ci.sh` bench gate. Either way the run fails if
//!
//! * the hit rate is 50% or less — precise invalidation must keep the
//!   untouched regions' entries alive across epochs,
//! * any sampled cached answer differs from a same-epoch cold
//!   evaluation (a stale answer), or the differential got no coverage,
//! * any other region's warmed entry went cold after a mutation to the
//!   churned region (invalidation was not per-label), or
//! * either pass's final document diverges from the direct-apply oracle
//!   or fails the store's consistency suite.

use xp_bench::experiments::query_cache::{query_cache_bench, CacheWorkload};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workload = if smoke {
        CacheWorkload { nodes: 3_000, regions: 4, readers: 4, ops_per_reader: 120 }
    } else {
        CacheWorkload { nodes: 1_000_000, regions: 8, readers: 8, ops_per_reader: 1_000 }
    };
    let stats = query_cache_bench(&workload, !smoke);

    println!();
    println!(
        "{} readers over {} regions (~{} elements): {} reads, {} mutations per pass",
        workload.readers, workload.regions, workload.nodes, stats.reads, stats.mutations
    );
    println!(
        "cache: {:.1}% hit rate ({} hits, {} misses, {} invalidated)",
        stats.hit_rate * 100.0,
        stats.hits,
        stats.misses,
        stats.invalidated
    );
    println!(
        "read latency   cached p50 {:>9.1} µs  p99 {:>9.1} µs",
        stats.cached_p50_us, stats.cached_p99_us
    );
    println!(
        "             uncached p50 {:>9.1} µs  p99 {:>9.1} µs",
        stats.uncached_p50_us, stats.uncached_p99_us
    );
    println!(
        "differential: {} same-epoch comparisons, {} mismatches",
        stats.differential_checked, stats.differential_mismatches
    );
    println!(
        "survivor probe: {}/{} disjoint-region entries still hot after a mutation",
        stats.survivors_hot, stats.survivors_expected
    );

    let mut failed = false;
    if stats.hit_rate <= 0.5 {
        eprintln!("FAIL: hit rate {:.3} is not above 0.5", stats.hit_rate);
        failed = true;
    }
    if stats.differential_checked == 0 {
        eprintln!("FAIL: the hot-vs-cold differential never got a same-epoch pair — no coverage");
        failed = true;
    }
    if stats.differential_mismatches > 0 {
        eprintln!(
            "FAIL: {} cached answers differed from cold evaluation",
            stats.differential_mismatches
        );
        failed = true;
    }
    if stats.survivors_hot != stats.survivors_expected {
        eprintln!(
            "FAIL: only {}/{} disjoint-region entries survived — invalidation is not per-label",
            stats.survivors_hot, stats.survivors_expected
        );
        failed = true;
    }
    if !stats.converged {
        eprintln!("FAIL: a pass's final document diverged from the direct-apply oracle");
        failed = true;
    }
    if !stats.final_consistent {
        eprintln!("FAIL: a shut-down store failed its consistency suite");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("query-cache checks passed: no stale answers, invalidation is per-label");
}
