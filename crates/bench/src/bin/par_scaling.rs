//! Thread-scaling sweep for the `xp-par` execution layer.
//!
//! Default mode regenerates `results/bench_par_scaling.json`: the product
//! tree, segmented sieving, and the prodtree-backed ordered document build
//! (labeling + `ScTable::build` + `LabelTable::build`) at 1/2/4/8 worker
//! threads, asserting along the way that every workload's output is
//! byte-identical to the sequential run.
//!
//! `--smoke` is the `scripts/ci.sh` gate: small sizes, no JSON. Output
//! identity is asserted unconditionally; the "parallel must not lose"
//! timing check only runs when the host actually has ≥ 4 hardware threads,
//! because on a single core the pooled run measures pure overhead.

use xp_bench::experiments::par_scaling::{par_scaling, ParScalingConfig, THREAD_COUNTS};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke { ParScalingConfig::smoke() } else { ParScalingConfig::full() };
    let stats = par_scaling(&cfg, !smoke);

    println!();
    println!("hardware threads: {}", stats.hardware_threads);
    for workload in ["prodtree", "sieve", "sc_build"] {
        for &t in &THREAD_COUNTS {
            println!(
                "{workload:>9}/t{t}: {:>12.0} ns (speedup {:.2}x)",
                stats.median(workload, t),
                stats.speedup(workload, t),
            );
        }
    }

    let mut failed = false;
    if !stats.outputs_identical {
        eprintln!("FAIL: parallel outputs differ from sequential");
        failed = true;
    }
    if stats.hardware_threads >= 4 {
        let speedup = stats.speedup("prodtree", 4);
        if !(speedup >= 1.0) {
            eprintln!("FAIL: parallel product tree at 4 threads is slower than sequential ({speedup:.2}x)");
            failed = true;
        }
    } else {
        println!(
            "note: {} hardware thread(s) — timing gate skipped, determinism checked",
            stats.hardware_threads
        );
    }
    if failed {
        std::process::exit(1);
    }
    println!("par-scaling checks passed: outputs byte-identical at every thread count");
}
