//! Regenerates Figure 5: effect of depth on self-label size (F = 15).
fn main() {
    xp_bench::experiments::sizes::fig05().emit();
}
