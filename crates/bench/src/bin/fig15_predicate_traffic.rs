//! Companion to Figure 15: substrate-independent predicate traffic.
fn main() {
    xp_bench::experiments::timing::fig15_predicate_traffic(5).emit();
}
