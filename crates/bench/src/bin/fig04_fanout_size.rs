//! Regenerates Figure 4: effect of fan-out on self-label size (D = 2).
fn main() {
    xp_bench::experiments::sizes::fig04().emit();
}
