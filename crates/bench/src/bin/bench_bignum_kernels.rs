//! Arithmetic-kernel benchmarks: the multiply ladder (schoolbook →
//! Karatsuba → Toom-3) across operand widths, and the reduction contexts
//! (Barrett, Möller–Granlund, Montgomery) against their plain-division
//! baselines on a Figure 15-shaped predicate loop.
//!
//! Default mode writes `results/bench_bignum_kernels.json` and asserts the
//! claims DESIGN.md §10 makes; `--smoke` runs the same assertions with small
//! sample counts and no JSON — the `scripts/ci.sh` gate:
//!
//! * the auto dispatch (Toom-3 at the top) beats forced Karatsuba by
//!   2¹⁴-bit operands (within the host drift allowance; strictly at 2¹⁶
//!   in the full run), and
//! * the dispatch adds no small-size regression (within noise of forced
//!   schoolbook at 2¹⁰ bits), and
//! * the Barrett-prepared predicate loop beats per-candidate division.

use xp_bignum::kernels;
use xp_bignum::modular;
use xp_bignum::reduce::{Montgomery, Reducer, Reducer64};
use xp_bignum::UBig;
use xp_testkit::bench::{BenchStats, Harness};

/// Deterministic operand limbs (splitmix-style) — dense, carry-prone.
fn pseudo_limbs(n: usize, salt: u64) -> Vec<u64> {
    let mut v = Vec::with_capacity(n);
    let mut x = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xd1b5);
    for _ in 0..n {
        x = x.wrapping_mul(0xaf25_1af3_b0f0_25b5).wrapping_add(0xb564_9897_7fea_dd11);
        v.push(x ^ (x >> 29));
    }
    if let Some(last) = v.last_mut() {
        *last |= 1 << 63; // pin the width
    }
    v
}

fn operand(limbs: usize, salt: u64) -> UBig {
    UBig::from_limbs(pseudo_limbs(limbs, salt))
}

/// Best observed time across all rounds of a benchmark (`name` plus any
/// `name#round` repeats) — the gate estimator. Medians at smoke sample
/// counts jitter ~30% under background load, and a load spike spanning one
/// kernel's whole window inverts a thin comparison; the minimum over
/// temporally-spread rounds needs only one quiet window per kernel.
fn minimum(results: &[BenchStats], name: &str) -> f64 {
    let mut best = f64::INFINITY;
    for r in results {
        if r.name == name || r.name.strip_prefix(name).is_some_and(|rest| rest.starts_with('#')) {
            best = best.min(r.min_ns);
        }
    }
    assert!(best.is_finite(), "no benchmark named {name}");
    best
}

/// Reference product tree with 2-factor leaves — the shape `prodtree` used
/// before leaf widths were tied to the measured Karatsuba crossover. The
/// build-cost gate asserts the tuned leaf sizing never loses to this.
fn product_pair_leaves(factors: &[u64]) -> UBig {
    match factors.len() {
        0 => UBig::one(),
        1 => UBig::from(factors[0]),
        2 => UBig::from(factors[0] as u128 * factors[1] as u128),
        n => {
            let (lo, hi) = factors.split_at(n / 2);
            product_pair_leaves(lo) * product_pair_leaves(hi)
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut h = Harness::new("bignum_kernels");
    if smoke {
        h.sample_size(8);
    }

    // ---- the multiply ladder, 2^10 .. 2^16 bit operands -----------------
    // (64-bit limbs: 16, 64, 256, 1024 limbs.)
    let mul_bits: &[u64] = if smoke { &[1 << 10, 1 << 14] } else { &[1 << 10, 1 << 12, 1 << 14, 1 << 16] };
    // The gates compare thin margins (the Toom-3 crossover win is ~10%
    // at 2^14 bits), so each kernel runs three temporally-spread rounds
    // and the gate takes the best — one quiet window per kernel is enough.
    // The JSON records every round (`name#round`).
    let rounds = 3;
    for round in 0..rounds {
        let tag = if round == 0 { String::new() } else { format!("#{round}") };
        for &bits in mul_bits {
            let limbs = (bits / 64) as usize;
            let a = operand(limbs, 1);
            let b = operand(limbs, 2);
            h.bench(&format!("mul/auto/{bits}{tag}"), || kernels::mul_auto(&a, &b));
            h.bench(&format!("mul/karatsuba/{bits}{tag}"), || kernels::mul_karatsuba(&a, &b));
            // Forced schoolbook is O(n²): past 2^14 bits it only slows the
            // run down without informing the crossover table.
            if bits <= 1 << 14 {
                h.bench(&format!("mul/schoolbook/{bits}{tag}"), || kernels::mul_schoolbook(&a, &b));
            }
        }
    }

    // ---- product-tree leaf sizing: ScTable::build's batch kernel --------
    // A shard-sized batch of word factors (an SC chunk product is exactly
    // this shape). The tuned tree folds crossover-width leaves through the
    // word loop; the pair-leaf reference allocates a tree node per 2
    // factors. Same integer either way — gated on build cost.
    let batch: Vec<u64> = pseudo_limbs(4096, 23).into_iter().map(|x| x | 1).collect();
    assert_eq!(
        xp_bignum::prodtree::product(&batch),
        product_pair_leaves(&batch),
        "leaf sizing changed the product value"
    );
    for round in 0..rounds {
        let tag = if round == 0 { String::new() } else { format!("#{round}") };
        h.bench(&format!("prodtree/tuned_leaves/4096{tag}"), || {
            xp_bignum::prodtree::product(&batch)
        });
        h.bench(&format!("prodtree/pair_leaves/4096{tag}"), || product_pair_leaves(&batch));
    }

    // ---- the Figure 15 predicate loop: one ancestor vs many nodes -------
    // An ancestor label a few levels deep (≈ 6 limbs) against descendant
    // labels up to ≈ 48 limbs: plain division re-normalizes the divisor per
    // candidate; the Barrett context front-loads it.
    let divisor = operand(6, 7);
    let candidates: Vec<UBig> =
        (0..64).map(|i| operand(8 + (i % 6) * 8, 100 + i as u64)).collect();
    h.bench("predicate/plain_division", || {
        candidates.iter().filter(|c| (*c % &divisor).is_zero()).count()
    });
    // Constructed once per ancestor, probed per candidate — the same
    // amortization `PrimeLabel::ancestor_tester` gets in the engine.
    let red = Reducer::new(divisor.clone());
    h.bench("predicate/barrett", || candidates.iter().filter(|c| red.is_multiple_of(c)).count());

    // ---- word-size reduction: SC residues --------------------------------
    let sc = operand(40, 11);
    let m: u64 = 0xffff_fffb; // near-2^32 prime-ish modulus, realistic self-label
    h.bench("rem_u64/plain", || sc.rem_u64(m));
    let red64 = Reducer64::new(m);
    h.bench("rem_u64/reducer64", || red64.rem(&sc));

    // ---- modular exponentiation: Montgomery vs plain for the CRT loop ---
    let modulus = {
        let mut limbs = pseudo_limbs(8, 13);
        limbs[0] |= 1; // odd: Montgomery's domain
        UBig::from_limbs(limbs)
    };
    let base = operand(8, 17);
    let exp = UBig::from(0xfedc_ba98u64);
    h.bench("mod_pow/plain", || modular::mod_pow_plain(&base, &exp, &modulus));
    h.bench("mod_pow/montgomery", || match Montgomery::new(&modulus) {
        Some(ctx) => ctx.pow(&base, &exp),
        None => unreachable!("modulus is odd"),
    });

    // ---- gates ----------------------------------------------------------
    let results = h.results().to_vec();
    let mut failed = false;

    let hi_bits = 1u64 << 14;
    let auto_hi = minimum(&results, &format!("mul/auto/{hi_bits}"));
    let kara_hi = minimum(&results, &format!("mul/karatsuba/{hi_bits}"));
    // The Toom-3 win at 2^14 bits is ~10% (5·T(86) vs 3·T(128) in Karatsuba
    // cost), the same magnitude as per-process frequency and placement
    // drift, so this gate allows that drift even on the best-of-three — a
    // structural mis-dispatch (e.g. a broken threshold sending 2^14 to
    // schoolbook) shows as a ≥1.3x loss. The full run adds a strict gate at
    // 2^16 bits below, where the margin clears the noise floor.
    if auto_hi >= kara_hi * 1.10 {
        eprintln!(
            "FAIL: auto dispatch ({auto_hi:.0} ns) does not beat forced Karatsuba \
             ({kara_hi:.0} ns) at 2^14 bits"
        );
        failed = true;
    }

    if !smoke {
        let top_bits = 1u64 << 16;
        let auto_top = minimum(&results, &format!("mul/auto/{top_bits}"));
        let kara_top = minimum(&results, &format!("mul/karatsuba/{top_bits}"));
        if auto_top >= kara_top {
            eprintln!(
                "FAIL: auto dispatch ({auto_top:.0} ns) does not beat forced \
                 Karatsuba ({kara_top:.0} ns) at 2^16 bits"
            );
            failed = true;
        }
    }

    let lo_bits = 1u64 << 10;
    let auto_lo = minimum(&results, &format!("mul/auto/{lo_bits}"));
    let school_lo = minimum(&results, &format!("mul/schoolbook/{lo_bits}"));
    let kara_lo = minimum(&results, &format!("mul/karatsuba/{lo_bits}"));
    // At 2^10 bits the dispatch is one predictable branch in front of the
    // same schoolbook kernel, so a real regression would be structural and
    // large; 1.5x absorbs per-run machine state (core placement, frequency)
    // on a ~300 ns workload.
    if auto_lo > school_lo.min(kara_lo) * 1.5 {
        eprintln!(
            "FAIL: auto dispatch ({auto_lo:.0} ns) regresses at 2^10 bits \
             (schoolbook {school_lo:.0} ns, karatsuba {kara_lo:.0} ns)"
        );
        failed = true;
    }

    let tuned = minimum(&results, "prodtree/tuned_leaves/4096");
    let pair = minimum(&results, "prodtree/pair_leaves/4096");
    // Crossover-width leaves must not cost more than the 2-factor-leaf
    // shape they replaced; 1.10x absorbs scheduler noise on the best-of-
    // three (the expected direction is a win — fewer tree allocations and
    // every sub-crossover multiply through the word loop).
    if tuned >= pair * 1.10 {
        eprintln!(
            "FAIL: tuned prodtree leaves ({tuned:.0} ns) regress vs pair leaves \
             ({pair:.0} ns) on a 4096-factor batch"
        );
        failed = true;
    }

    let plain = minimum(&results, "predicate/plain_division");
    let barrett = minimum(&results, "predicate/barrett");
    if barrett >= plain {
        eprintln!(
            "FAIL: Barrett predicate loop ({barrett:.0} ns) does not beat plain \
             division ({plain:.0} ns)"
        );
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "bignum-kernel checks passed: Toom-3 vs Karatsuba at 2^14 bits {:.2}x, \
         no small-size regression, tuned prodtree leaves vs pair leaves {:.2}x, \
         Barrett beats plain division on the predicate loop ({:.2}x)",
        kara_hi / auto_hi,
        pair / tuned,
        plain / barrett,
    );
    if !smoke {
        h.finish();
    }
}
