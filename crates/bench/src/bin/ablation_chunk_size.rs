//! Ablation (beyond the paper): SC chunk size vs ordered-update cost.
fn main() {
    xp_bench::experiments::updates::ablation_chunk_size().emit();
}
