//! Regenerates Figure 15: query response times (median of 5 runs) on the
//! Shakespeare corpus replicated 5 times. Run with --release.
fn main() {
    xp_bench::experiments::timing::fig15(5, 5).emit();
}
