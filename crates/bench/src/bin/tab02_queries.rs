//! Regenerates Table 2: the nine test queries and their cardinalities
//! on the Shakespeare corpus replicated 5 times.
fn main() {
    xp_bench::experiments::timing::tab02(5).emit();
}
