//! Bench gate for the concurrent label server: many TCP clients run a
//! 95% read / 5% mutation workload against one served document, then an
//! all-mutation burst that exercises group commit.
//!
//! Default mode runs 64 clients against a 10⁶-element document and
//! regenerates `results/bench_server.json`. `--smoke` runs 8 clients
//! against a 2 000-element document without touching the checked-in JSON —
//! the `scripts/ci.sh` bench gate. Either way the run fails if
//!
//! * any client observes a torn labeling (a same-epoch `//x`/`//y`
//!   response pair with different counts),
//! * the quiesced document or the shut-down store diverge from the
//!   acknowledged mutations, or
//! * the burst phase spends 1.0 or more WAL fsyncs per mutation — group
//!   commit must amortize the durability tax across a batch.

use xp_bench::experiments::server::{server_bench, ServerWorkload, BURST_BATCH};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workload = if smoke {
        ServerWorkload { nodes: 2_000, clients: 8, ops_per_client: 40, burst_applies_per_client: 4 }
    } else {
        ServerWorkload {
            nodes: 1_000_000,
            clients: 64,
            ops_per_client: 64,
            burst_applies_per_client: 4,
        }
    };
    let stats = server_bench(&workload, !smoke);

    println!();
    println!(
        "{} clients on a {}-element document: {} reads, {} mutations",
        workload.clients, workload.nodes, stats.reads, stats.mutations
    );
    println!(
        "read latency    p50 {:>10.1} µs   p99 {:>10.1} µs",
        stats.read_p50_us, stats.read_p99_us
    );
    println!(
        "mutate latency  p50 {:>10.1} µs   p99 {:>10.1} µs",
        stats.mutate_p50_us, stats.mutate_p99_us
    );
    println!(
        "WAL fsyncs/mutation: mixed {:.3}  burst {:.3} (batch of {BURST_BATCH})",
        stats.mixed_fsyncs_per_mutation, stats.burst_fsyncs_per_mutation
    );
    println!("same-epoch isolation pairs checked: {}", stats.same_epoch_pairs);

    let mut failed = false;
    if !stats.isolation_consistent {
        eprintln!("FAIL: a client observed a torn labeling");
        failed = true;
    }
    if !stats.final_consistent {
        eprintln!("FAIL: quiesced document or shut-down store diverged from acknowledged mutations");
        failed = true;
    }
    if stats.same_epoch_pairs == 0 {
        eprintln!("FAIL: the isolation check never got a same-epoch pair — no coverage");
        failed = true;
    }
    if stats.burst_fsyncs_per_mutation >= 1.0 {
        eprintln!(
            "FAIL: burst phase spent {:.3} fsyncs per mutation — group commit is not batching",
            stats.burst_fsyncs_per_mutation
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("server checks passed: no torn labelings, group commit amortizes fsyncs");
}
