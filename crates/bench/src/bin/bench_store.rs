//! Bench gate for the crash-safe disk store: the durability tax per
//! mutation (WAL append + fsync vs the same apply in memory), checkpoint
//! cost, and recovery time with a 100-frame replay tail.
//!
//! Default mode regenerates `results/bench_store.json` at sizes
//! 1000..100000. `--smoke` runs the 1000-node point only, without touching
//! the checked-in JSON — the `scripts/ci.sh` bench gate. Either way the run
//! fails if a reopened store diverges from its live twin or a full
//! checkpoint leaves WAL frames behind.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &[1_000] } else { &[1_000, 10_000, 100_000] };
    let stats = xp_bench::experiments::store::store_bench(sizes, !smoke);

    println!();
    for (((&(n, durable), &(_, checkpoint)), &(_, recover)), &(_, overhead)) in stats
        .apply_durable_ns
        .iter()
        .zip(&stats.checkpoint_ns)
        .zip(&stats.recover_ns)
        .zip(&stats.wal_overhead())
    {
        println!(
            "n={n:>6}: durable apply {durable:>10.0} ns ({overhead:.1}x memory)  \
             checkpoint {:>8.2} ms  recover {:>8.2} ms",
            checkpoint / 1e6,
            recover / 1e6,
        );
    }

    let mut failed = false;
    if !stats.recovery_consistent {
        eprintln!("FAIL: a reopened store diverged from its live twin");
        failed = true;
    }
    if !stats.wal_truncated {
        eprintln!("FAIL: checkpoint_all left frames in the WAL");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("store checks passed: recovery is exact and checkpoints fold the WAL");
}
