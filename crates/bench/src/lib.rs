//! # xp-bench — the experiment harness
//!
//! One regeneration target per table and figure of the paper's evaluation
//! (see DESIGN.md §2 for the full index). Each experiment lives in
//! [`experiments`] as a pure function returning rows, shared by:
//!
//! * the `src/bin/*` binaries (`cargo run -p xp-bench --release --bin
//!   fig14_space`), which print an aligned table and write
//!   `results/<name>.csv`;
//! * the crate's tests, which assert the *shapes* the paper claims;
//! * the wall-clock benches (`benches/`, via `xp_testkit::bench`), which
//!   time the Figure 15 queries and the ablations and write JSON summaries
//!   into `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::Report;
