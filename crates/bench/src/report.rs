//! Tabular experiment output: aligned text to stdout, CSV to `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple experiment report: a header row plus data rows of equal arity.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report. `name` becomes the CSV file stem.
    pub fn new(name: &str, title: &str, headers: &[&str]) -> Self {
        Report {
            name: name.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends one row of displayable cells.
    pub fn push<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            let rendered: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            let _ = writeln!(out, "{}", rendered.join("  "));
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Prints the table and writes `results/<name>.csv` (best effort: the
    /// CSV write is skipped silently on read-only checkouts).
    pub fn emit(&self) {
        print!("{}", self.to_text());
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_ok() {
            let _ = fs::write(dir.join(format!("{}.csv", self.name)), self.to_csv());
            println!("\n[written results/{}.csv]", self.name);
        }
    }
}

/// `<workspace>/results`, anchored at this crate's manifest.
fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t", "A title", &["x", "value"]);
        r.push(&[1, 10]);
        r.push(&[2, 200]);
        r
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        assert!(text.contains("# A title"));
        assert!(text.contains("x  value"));
        assert!(text.lines().last().unwrap().ends_with("200"));
    }

    #[test]
    fn csv_round_trips_simple_cells() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().next(), Some("x,value"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut r = Report::new("t", "t", &["a"]);
        r.row(&["hello, \"world\"".to_string()]);
        assert!(r.to_csv().contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("t", "t", &["a", "b"]);
        r.push(&[1]);
    }
}
