//! The multi-writer relabel storm: `N` writer threads push their seeded
//! region scripts (`xp_datagen::multiwriter`) through one epoch loop
//! concurrently — every apply can relabel — while reader threads query
//! all regions through the result cache.
//!
//! Because the regions are disjoint and each writer derives its step-`k`
//! mutation deterministically from its own region's state, *any*
//! interleaving converges: after quiescing, the served document must
//! serialize byte-identically to a sequential writer-major oracle. That
//! — not throughput — is the acceptance gate; latency percentiles,
//! epochs-per-mutation (group-commit batching across writers), labels
//! touched, and the cache hit rate under storm conditions are the
//! measurements.

use super::inproc::InprocServer;
use super::query_cache::bench_paths;
use super::SEED;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;
use xp_datagen::multiwriter::{initial_tree, scripted, TraceParams};
use xp_labelkit::LabeledStore;
use xp_prime::DynamicPrime;
use xp_query::engine::Path;
use xp_testkit::rng::{RngExt, SeedableRng, StdRng};
use xp_xmltree::serialize;

/// Workload shape for [`multiwriter_bench`].
#[derive(Debug, Clone)]
pub struct StormWorkload {
    /// Concurrent writer threads (one disjoint region each).
    pub writers: usize,
    /// Mutations per writer.
    pub steps_per_writer: usize,
    /// Initial elements per region.
    pub region_breadth: usize,
    /// Concurrent reader threads querying during the storm.
    pub readers: usize,
    /// Queries per reader.
    pub reads_per_reader: usize,
}

/// Measurements and invariant-check outcomes from [`multiwriter_bench`].
#[derive(Debug, Clone)]
pub struct StormBenchStats {
    /// The workload that produced these numbers.
    pub workload: StormWorkload,
    /// Acknowledged mutations (must equal writers × steps).
    pub mutations: u64,
    /// Per-mutation apply results that came back as errors.
    pub rejected: u64,
    /// Labels the schemes reported touching, summed over every apply —
    /// the storm's actual relabel volume.
    pub labels_touched: u64,
    /// Epochs published during the storm; below `mutations` means group
    /// commit batched concurrent writers under one epoch.
    pub epochs: u64,
    /// Apply round-trip percentiles, microseconds.
    pub apply_p50_us: f64,
    /// 99th percentile apply round-trip.
    pub apply_p99_us: f64,
    /// Acknowledged mutations per wall-clock second.
    pub mutations_per_sec: f64,
    /// Read latency percentiles under the storm, microseconds.
    pub read_p50_us: f64,
    /// 99th percentile read latency.
    pub read_p99_us: f64,
    /// Cache hit rate under the storm (every epoch invalidates one
    /// region's entries, so this sits well below the 95/5 bench's rate).
    pub hit_rate: f64,
    /// Same-epoch hot-vs-cold comparisons performed.
    pub differential_checked: u64,
    /// Comparisons that disagreed — any nonzero is a stale answer.
    pub differential_mismatches: u64,
    /// The quiesced document serializes identically to the sequential
    /// writer-major oracle.
    pub converged: bool,
    /// The store passed `verify()` after shutdown.
    pub final_consistent: bool,
}

fn percentile(sorted: &[u64], pct: usize) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)] as f64 / 1e3
}

struct WriterRun {
    apply_ns: Vec<u64>,
    acked: u64,
    rejected: u64,
    labels_touched: u64,
}

/// One writer's storm: derive each step from the latest published
/// snapshot (which already contains this writer's previous step — the
/// apply blocked until its epoch was published) and push it through the
/// server's request handler.
fn writer_storm(server: &InprocServer, params: &TraceParams, w: usize) -> WriterRun {
    let mut run =
        WriterRun { apply_ns: Vec::new(), acked: 0, rejected: 0, labels_touched: 0 };
    for step in 0..params.steps_per_writer {
        let snap = server.snapshot();
        let mutation = scripted(params, w, step, snap.labeled().tree());
        drop(snap);
        let t = Instant::now();
        let outcome = server.apply(&mutation);
        run.apply_ns.push(t.elapsed().as_nanos() as u64);
        match outcome {
            Ok(labels) => {
                run.acked += 1;
                run.labels_touched += labels;
            }
            Err(_) => run.rejected += 1,
        }
    }
    run
}

struct ReaderRun {
    read_ns: Vec<u64>,
    checked: u64,
    mismatches: u64,
}

fn reader_storm(
    server: &InprocServer,
    paths: &[Vec<String>],
    reader: usize,
    reads: usize,
    writers_done: &AtomicBool,
) -> ReaderRun {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5702_17AB ^ ((reader as u64 + 1) << 40));
    let mut run = ReaderRun { read_ns: Vec::with_capacity(reads), checked: 0, mismatches: 0 };
    let mut i = 0usize;
    // Keep reading until the personal quota is met *and* the writers are
    // done, so the cache is observed across the whole storm.
    while i < reads || !writers_done.load(Ordering::Relaxed) {
        let region = rng.gen_range(0..paths.len());
        let mix = &paths[region];
        let path = &mix[rng.gen_range(0..mix.len())];
        let t = Instant::now();
        let (epoch, nodes) = server.query(path);
        if i < reads {
            run.read_ns.push(t.elapsed().as_nanos() as u64);
        }
        if i % 8 == reader % 8 {
            let snap = server.snapshot();
            if snap.epoch() == epoch {
                let parsed = Path::parse(path).expect("bench path parses");
                let cold: Vec<u64> = snap
                    .query(&parsed)
                    .expect("cold evaluation")
                    .iter()
                    .map(|n| n.index() as u64)
                    .collect();
                run.checked += 1;
                if cold != nodes {
                    run.mismatches += 1;
                }
            }
        }
        i += 1;
    }
    run
}

/// The sequential oracle: each writer's full script applied writer-major
/// to a direct [`LabeledStore`]. Region scripts depend only on their own
/// region's state, so this is the document every interleaving must
/// converge to.
fn sequential_oracle(params: &TraceParams, xml: &str) -> LabeledStore<DynamicPrime> {
    let mut oracle =
        LabeledStore::build(DynamicPrime::new(4), xp_xmltree::parse(xml).expect("xml"))
            .expect("oracle build");
    for w in 0..params.writers {
        for step in 0..params.steps_per_writer {
            let mutation = scripted(params, w, step, oracle.tree());
            // Region scripts never target the region root or escape the
            // region, so they apply cleanly; a failure here would also
            // fail (and be counted) in the live run.
            let _ = oracle.apply(&mutation);
        }
    }
    oracle
}

/// Runs the storm and checks convergence. Writes
/// `results/bench_multiwriter.json` when asked.
pub fn multiwriter_bench(workload: &StormWorkload, write_json: bool) -> StormBenchStats {
    let params = TraceParams {
        writers: workload.writers,
        steps_per_writer: workload.steps_per_writer,
        region_breadth: workload.region_breadth,
        seed: SEED,
    };
    let xml = serialize::to_string(&initial_tree(&params));
    let server = InprocServer::start("storm", &xml, Some(4096));
    let paths: Vec<Vec<String>> = (0..workload.writers).map(bench_paths).collect();
    let base = server.counters().stats();
    let writers_done = AtomicBool::new(false);

    let t = Instant::now();
    let (writer_runs, reader_runs) = std::thread::scope(|s| {
        let readers: Vec<_> = (0..workload.readers)
            .map(|r| {
                let server = &server;
                let paths = &paths;
                let done = &writers_done;
                let reads = workload.reads_per_reader;
                s.spawn(move || reader_storm(server, paths, r, reads, done))
            })
            .collect();
        let writers: Vec<_> = (0..workload.writers)
            .map(|w| {
                let server = &server;
                let params = &params;
                s.spawn(move || writer_storm(server, params, w))
            })
            .collect();
        let writer_runs: Vec<WriterRun> =
            writers.into_iter().map(|h| h.join().expect("bench writer thread")).collect();
        writers_done.store(true, Ordering::Relaxed);
        let reader_runs: Vec<ReaderRun> =
            readers.into_iter().map(|h| h.join().expect("bench reader thread")).collect();
        (writer_runs, reader_runs)
    });
    let storm_secs = t.elapsed().as_secs_f64();
    let after = server.counters().stats();

    // Convergence: the storm's interleaving is whatever the scheduler
    // produced; the result must still be the writer-major document.
    let oracle = sequential_oracle(&params, &xml);
    let snap = server.snapshot();
    let converged =
        serialize::to_string(snap.labeled().tree()) == serialize::to_string(oracle.tree());
    drop(snap);
    let final_consistent = server.shutdown_and_verify();

    let mut apply_ns: Vec<u64> =
        writer_runs.iter().flat_map(|r| r.apply_ns.iter().copied()).collect();
    apply_ns.sort_unstable();
    let mut read_ns: Vec<u64> =
        reader_runs.iter().flat_map(|r| r.read_ns.iter().copied()).collect();
    read_ns.sort_unstable();
    let acked: u64 = writer_runs.iter().map(|r| r.acked).sum();
    let hits = after.cache_hits - base.cache_hits;
    let misses = after.cache_misses - base.cache_misses;

    let stats = StormBenchStats {
        workload: workload.clone(),
        mutations: acked,
        rejected: writer_runs.iter().map(|r| r.rejected).sum(),
        labels_touched: writer_runs.iter().map(|r| r.labels_touched).sum(),
        epochs: after.epochs - base.epochs,
        apply_p50_us: percentile(&apply_ns, 50),
        apply_p99_us: percentile(&apply_ns, 99),
        mutations_per_sec: acked as f64 / storm_secs.max(1e-9),
        read_p50_us: percentile(&read_ns, 50),
        read_p99_us: percentile(&read_ns, 99),
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        differential_checked: reader_runs.iter().map(|r| r.checked).sum(),
        differential_mismatches: reader_runs.iter().map(|r| r.mismatches).sum(),
        converged,
        final_consistent,
    };
    eprintln!(
        "[bench_multiwriter] storm {:.1}s: {} mutations over {} epochs, {} labels touched",
        storm_secs, stats.mutations, stats.epochs, stats.labels_touched,
    );
    if write_json {
        write_results(&stats);
    }
    stats
}

/// Handwritten JSON, same shape family as `results/bench_server.json`.
fn write_results(stats: &StormBenchStats) {
    let mut out = String::new();
    let w = &stats.workload;
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"group\": \"multiwriter\",");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"writers\": {}, \"steps_per_writer\": {}, \"region_breadth\": {}, \
         \"readers\": {}, \"reads_per_reader\": {}}},",
        w.writers, w.steps_per_writer, w.region_breadth, w.readers, w.reads_per_reader,
    );
    let _ = writeln!(
        out,
        "  \"mutations\": {{\"count\": {}, \"rejected\": {}, \"labels_touched\": {}, \
         \"epochs\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"per_sec\": {:.0}}},",
        stats.mutations,
        stats.rejected,
        stats.labels_touched,
        stats.epochs,
        stats.apply_p50_us,
        stats.apply_p99_us,
        stats.mutations_per_sec,
    );
    let _ = writeln!(
        out,
        "  \"reads\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"hit_rate\": {:.3}}},",
        stats.read_p50_us, stats.read_p99_us, stats.hit_rate,
    );
    let _ = writeln!(
        out,
        "  \"differential\": {{\"checked\": {}, \"mismatches\": {}}},",
        stats.differential_checked, stats.differential_mismatches,
    );
    let _ = writeln!(
        out,
        "  \"converged\": {}, \"final_consistent\": {}",
        stats.converged, stats.final_consistent,
    );
    let _ = write!(out, "}}");
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok()
        && std::fs::write(dir.join("bench_multiwriter.json"), out).is_ok()
    {
        println!("[written results/bench_multiwriter.json]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiwriter_bench_round_trips_a_small_storm() {
        let stats = multiwriter_bench(
            &StormWorkload {
                writers: 3,
                steps_per_writer: 8,
                region_breadth: 8,
                readers: 2,
                reads_per_reader: 40,
            },
            false,
        );
        assert_eq!(stats.mutations, 24, "every scripted step must be acknowledged");
        assert_eq!(stats.rejected, 0);
        assert!(stats.labels_touched > 0);
        assert_eq!(stats.differential_mismatches, 0, "stale cached answer under storm");
        assert!(stats.converged, "interleaving failed to converge to the oracle");
        assert!(stats.final_consistent);
    }
}
