//! Wall-clock experiment for the dynamic-update pipeline: a mutation runs
//! through [`LabeledStore`], and its [`RelabelReport`] patches the query
//! engine's [`LabelTable`] via `apply_report` — the claim under test is
//! that patching touches `O(report)` rows and never costs more than
//! rebuilding the table from scratch.

use super::SEED;
use xp_datagen::builders::update_experiment_docs;
use xp_labelkit::{InsertPos, LabeledStore, RelabelReport};
use xp_prime::dynamic::DynamicPrime;
use xp_query::relstore::LabelTable;
use xp_testkit::bench::Harness;
use xp_xmltree::{parse, NodeId, XmlTree};

/// The deepest element (first in document order among the deepest).
fn deepest_element(tree: &XmlTree) -> NodeId {
    let mut best = tree.root();
    let mut best_depth = 0;
    for node in tree.elements() {
        let d = tree.depth(node);
        if d > best_depth {
            best = node;
            best_depth = d;
        }
    }
    best
}

/// Medians and patch sizes from [`dynamic_api`].
#[derive(Debug, Clone)]
pub struct DynamicApiStats {
    /// `(doc_nodes, median ns)` for patching the pre-mutation table with a
    /// leaf-insert report.
    pub patch_ns: Vec<(usize, f64)>,
    /// `(doc_nodes, median ns)` for rebuilding the post-mutation table
    /// from scratch.
    pub rebuild_ns: Vec<(usize, f64)>,
    /// `(doc_nodes, rows touched)` by the leaf-insert patch.
    pub patch_rows: Vec<(usize, usize)>,
}

impl DynamicApiStats {
    /// `true` iff, at every size, the incremental patch median is at or
    /// below the full-rebuild median. A patch that loses to a rebuild
    /// makes the incremental path worthless at that size.
    pub fn patch_beats_rebuild(&self) -> bool {
        !self.patch_ns.is_empty()
            && self
                .patch_ns
                .iter()
                .zip(&self.rebuild_ns)
                .all(|(&(_, patch), &(_, rebuild))| patch <= rebuild)
    }

    /// `true` iff the leaf-insert patch touches the same small number of
    /// rows at every size — `O(changed labels)`, not `O(document)`. For
    /// the prime scheme a leaf insert is one new label (plus rare
    /// small-prime victims), so the row count must not grow with `n`.
    pub fn patch_rows_independent_of_doc_size(&self) -> bool {
        match self.patch_rows.first() {
            Some(&(_, first)) => self.patch_rows.iter().all(|&(_, rows)| rows == first),
            None => false,
        }
    }
}

/// One prepared measurement point: the pre-mutation table, the report a
/// leaf insert produced, and the post-mutation tree + labels.
struct Point {
    n: usize,
    before: LabelTable<xp_prime::PrimeLabel>,
    report: RelabelReport,
    store: LabeledStore<DynamicPrime>,
}

fn prepare(tree: &XmlTree) -> Point {
    let n = tree.elements().count();
    let mut store =
        LabeledStore::build(DynamicPrime::new(5), tree.clone()).expect("labelable doc");
    let before = LabelTable::build(store.tree(), store.doc());
    let target = deepest_element(store.tree());
    let leaf = parse("<new/>").expect("fragment");
    let report =
        store.insert_subtree(InsertPos::LastChildOf(target), &leaf).expect("updatable doc");
    Point { n, before, report, store }
}

/// The `dynamic_api` bench group: `patch_leaf_insert/{n}` vs
/// `rebuild/{n}` for each document in the update-experiment family whose
/// index is in `doc_indices`. Writes `results/bench_dynamic_api.json`
/// only when `write_json` is set (the CI smoke run measures without
/// clobbering the checked-in numbers).
pub fn dynamic_api(doc_indices: &[usize], write_json: bool) -> DynamicApiStats {
    let docs: Vec<XmlTree> = update_experiment_docs(SEED);
    let mut group = Harness::new("dynamic_api");
    group.sample_size(10);

    let mut stats = DynamicApiStats {
        patch_ns: Vec::new(),
        rebuild_ns: Vec::new(),
        patch_rows: Vec::new(),
    };
    for &i in doc_indices {
        let point = prepare(&docs[i]);
        let Point { n, before, report, store } = &point;
        group.bench_batched(
            &format!("patch_leaf_insert/{n}"),
            || before.clone(),
            |mut table| table.apply_report(store.tree(), store.doc(), report),
        );
        group.bench(&format!("rebuild/{n}"), || LabelTable::build(store.tree(), store.doc()));

        let mut table = before.clone();
        let patch = table.apply_report(store.tree(), store.doc(), report);
        stats.patch_rows.push((*n, patch.rows_touched()));
    }

    let median = |name: &str| {
        group.results().iter().find(|r| r.name == name).map(|r| r.median_ns).unwrap_or(f64::NAN)
    };
    for &(n, _) in &stats.patch_rows.clone() {
        stats.patch_ns.push((n, median(&format!("patch_leaf_insert/{n}"))));
        stats.rebuild_ns.push((n, median(&format!("rebuild/{n}"))));
    }
    if write_json {
        group.finish();
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_insert_patch_is_constant_size() {
        let docs = update_experiment_docs(SEED);
        let mut rows = Vec::new();
        for tree in &docs[..3] {
            let point = prepare(tree);
            let mut table = point.before.clone();
            let patch = table.apply_report(point.store.tree(), point.store.doc(), &point.report);
            assert_eq!(patch.rows_added, point.report.inserted.len());
            assert_eq!(patch.rows_updated, point.report.relabeled.len());
            rows.push(patch.rows_touched());
        }
        assert!(rows.windows(2).all(|w| w[0] == w[1]), "patch size grew with doc: {rows:?}");
        assert!(rows[0] <= 3, "leaf insert must touch O(1) rows, got {}", rows[0]);
    }
}
