//! All experiments, one function per table/figure.

pub mod dynamic_api;
pub(crate) mod inproc;
pub mod multiwriter;
pub mod par_scaling;
pub mod query_cache;
pub mod server;
pub mod sharding;
pub mod sizes;
pub mod store;
pub mod timing;
pub mod updates;

/// The seed every experiment uses, so figures regenerate bit-identically.
pub const SEED: u64 = 2004;
