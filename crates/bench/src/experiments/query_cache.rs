//! The epoch-stamped query-result cache under a read-heavy mixed
//! workload: 95% queries / 5% mutations over a document split into
//! disjoint writer regions with private tag vocabularies
//! (`xp_datagen::multiwriter`), every mutation confined to the *last*
//! region. (Last, not first: an order shift re-solves every following
//! SC record, so churning the final region keeps each mutation
//! O(region tail) instead of O(document) at the 10⁶-element scale —
//! which region churns is irrelevant to the invalidation semantics.)
//!
//! The run measures and *checks* four things:
//!
//! * **Hit rate** (> 50% acceptance gate): with precise tag-footprint
//!   invalidation, only the mutated region's entries and wildcard
//!   footprints churn; the other regions' entries survive every epoch.
//! * **Zero stale answers**: sampled reads re-evaluate cold against the
//!   published snapshot and, whenever the epochs match, the cached answer
//!   must be byte-identical.
//! * **Per-label invalidation**, demonstrated after quiescing: one more
//!   mutation to the churned region must leave every other region's
//!   non-wildcard entry hot — counted exactly, not approximately.
//! * **Cached vs uncached latency** on the identical workload (the same
//!   seeds, paths, and pacing with the cache disabled).
//!
//! The mutator keeps a direct-apply [`LabeledStore`] oracle in lockstep
//! and the run ends with `verify::equivalent` plus the store's own
//! consistency suite, so a cache bug cannot hide behind fast numbers.

use super::inproc::InprocServer;
use super::SEED;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;
use xp_datagen::multiwriter::{initial_tree, region_tag, scripted, writer_tags, TraceParams};
use xp_labelkit::LabeledStore;
use xp_prime::DynamicPrime;
use xp_query::engine::Path;
use xp_store::verify;
use xp_testkit::rng::{RngExt, SeedableRng, StdRng};
use xp_xmltree::serialize;

/// Workload shape for [`query_cache_bench`].
#[derive(Debug, Clone)]
pub struct CacheWorkload {
    /// Initial elements in the served document (split across regions).
    pub nodes: usize,
    /// Disjoint writer regions (distinct tag vocabularies).
    pub regions: usize,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Queries per reader.
    pub ops_per_reader: usize,
}

/// Reads per mutation — the 95/5 mix. The mutator paces itself against
/// the readers' shared op counter, so the ratio holds throughout the run
/// instead of front-loading the mutations.
pub const READS_PER_MUTATION: usize = 19;

/// Every `DIFF_EVERY`-th read re-evaluates cold and compares (when the
/// snapshot still answers for the same epoch).
const DIFF_EVERY: usize = 8;

const CACHE_CAPACITY: usize = 4096;

/// Per-region query mix: cheap-axis paths over the region's private
/// vocabulary, plus one wildcard (`parent::*`) entry that can never
/// survive an epoch — realism for the invalidation accounting.
pub fn bench_paths(w: usize) -> Vec<String> {
    let [a, b, c] = writer_tags(w);
    let region = region_tag(w);
    vec![
        format!("//{region}/{a}"),
        format!("//{b}"),
        format!("/db//{c}"),
        format!("//{a}[1]"),
        // Single context node: at bench scale a region root has tens of
        // thousands of direct children, and a whole-set sibling axis
        // would be quadratic in that width.
        format!("//{a}[1]/following-sibling::{b}"),
        format!("//{c}/parent::*"),
    ]
}

/// Measurements and invariant-check outcomes from [`query_cache_bench`].
#[derive(Debug, Clone)]
pub struct CacheBenchStats {
    /// The workload that produced these numbers.
    pub workload: CacheWorkload,
    /// Completed reads per pass (cached pass == uncached pass).
    pub reads: u64,
    /// Acknowledged mutations per pass.
    pub mutations: u64,
    /// hits ÷ (hits + misses) over the cached pass.
    pub hit_rate: f64,
    /// Cache hits (cached pass).
    pub hits: u64,
    /// Cache misses (cached pass).
    pub misses: u64,
    /// Entries dropped by invalidation (cached pass).
    pub invalidated: u64,
    /// Read latency percentiles with the cache on, microseconds.
    pub cached_p50_us: f64,
    /// 99th percentile, cache on.
    pub cached_p99_us: f64,
    /// Read latency percentiles with the cache off, microseconds.
    pub uncached_p50_us: f64,
    /// 99th percentile, cache off.
    pub uncached_p99_us: f64,
    /// Same-epoch hot-vs-cold comparisons performed (both passes).
    pub differential_checked: u64,
    /// Comparisons that disagreed — any nonzero is a stale answer.
    pub differential_mismatches: u64,
    /// Non-wildcard entries of the untouched regions warmed before the
    /// survivor probe.
    pub survivors_expected: u64,
    /// How many of them were still hot after one more mutation to the
    /// churned region.
    pub survivors_hot: u64,
    /// Both passes' final documents equal the direct-apply oracle.
    pub converged: bool,
    /// Both stores passed `verify()` after shutdown.
    pub final_consistent: bool,
}

fn percentile(sorted: &[u64], pct: usize) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)] as f64 / 1e3
}

struct ReaderRun {
    read_ns: Vec<u64>,
    checked: u64,
    mismatches: u64,
}

fn reader(
    server: &InprocServer,
    paths: &[Vec<String>],
    reader: usize,
    ops: usize,
    read_counter: &AtomicU64,
) -> ReaderRun {
    let mut rng = StdRng::seed_from_u64(SEED ^ ((reader as u64 + 1) << 32));
    let mut run = ReaderRun { read_ns: Vec::with_capacity(ops), checked: 0, mismatches: 0 };
    for i in 0..ops {
        let region = rng.gen_range(0..paths.len());
        let mix = &paths[region];
        let path = &mix[rng.gen_range(0..mix.len())];
        let t = Instant::now();
        let (epoch, nodes) = server.query(path);
        run.read_ns.push(t.elapsed().as_nanos() as u64);
        read_counter.fetch_add(1, Ordering::Relaxed);
        if i % DIFF_EVERY == reader % DIFF_EVERY {
            // Hot-vs-cold differential, off the timed path. Only a
            // same-epoch snapshot is a valid oracle for the answer.
            let snap = server.snapshot();
            if snap.epoch() == epoch {
                let parsed = Path::parse(path).expect("bench path parses");
                let cold: Vec<u64> = snap
                    .query(&parsed)
                    .expect("cold evaluation")
                    .iter()
                    .map(|n| n.index() as u64)
                    .collect();
                run.checked += 1;
                if cold != nodes {
                    run.mismatches += 1;
                }
            }
        }
    }
    run
}

struct MutatorRun {
    acked: u64,
    oracle: LabeledStore<DynamicPrime>,
}

/// Applies `total` script steps against the last region, paced at one
/// mutation per [`READS_PER_MUTATION`] reads, keeping a direct-apply
/// oracle in lockstep with the served document.
fn mutator(
    server: &InprocServer,
    params: &TraceParams,
    xml: &str,
    total: usize,
    read_counter: &AtomicU64,
    readers_done: &AtomicBool,
) -> MutatorRun {
    // Parse the same serialized form the store ingested, so the oracle's
    // arena NodeIds line up with the served document's.
    let mut oracle = LabeledStore::build(DynamicPrime::new(4), xp_xmltree::parse(xml).expect("xml"))
        .expect("oracle build");
    let mut acked = 0u64;
    for step in 0..total {
        let due = (step as u64 + 1) * READS_PER_MUTATION as u64;
        while read_counter.load(Ordering::Relaxed) < due && !readers_done.load(Ordering::Relaxed) {
            std::thread::yield_now();
        }
        let mutation = scripted(params, params.writers - 1, step, oracle.tree());
        let got = server.apply(&mutation);
        let want = oracle.apply(&mutation);
        assert_eq!(
            got.is_ok(),
            want.is_ok(),
            "step {step}: served document and oracle disagree on the outcome"
        );
        if got.is_ok() {
            acked += 1;
        }
    }
    MutatorRun { acked, oracle }
}

struct PassResult {
    read_ns: Vec<u64>,
    checked: u64,
    mismatches: u64,
    acked: u64,
    converged: bool,
    consistent: bool,
    hits: u64,
    misses: u64,
    invalidated: u64,
    survivors_expected: u64,
    survivors_hot: u64,
}

fn run_pass(
    tag: &str,
    xml: &str,
    params: &TraceParams,
    workload: &CacheWorkload,
    cache: Option<usize>,
) -> PassResult {
    let server = InprocServer::start(tag, xml, cache);
    let paths: Vec<Vec<String>> = (0..workload.regions).map(bench_paths).collect();
    let total_reads = workload.readers * workload.ops_per_reader;
    let total_mutations = total_reads / READS_PER_MUTATION;
    let read_counter = AtomicU64::new(0);
    let readers_done = AtomicBool::new(false);

    let (runs, mut_run) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workload.readers)
            .map(|r| {
                let server = &server;
                let paths = &paths;
                let counter = &read_counter;
                let ops = workload.ops_per_reader;
                s.spawn(move || reader(server, paths, r, ops, counter))
            })
            .collect();
        let m = s.spawn(|| {
            mutator(&server, params, xml, total_mutations, &read_counter, &readers_done)
        });
        let runs: Vec<ReaderRun> =
            handles.into_iter().map(|h| h.join().expect("bench reader thread")).collect();
        readers_done.store(true, Ordering::Relaxed);
        (runs, m.join().expect("bench mutator thread"))
    });
    let MutatorRun { acked, mut oracle } = mut_run;

    // Per-label invalidation, counted exactly: warm every region's mix,
    // mutate the churned (last) region once more, and require every
    // other region's non-wildcard entries to answer from the cache.
    let (mut survivors_expected, mut survivors_hot) = (0u64, 0u64);
    if cache.is_some() {
        for _pass in 0..2 {
            for mix in &paths {
                for p in mix {
                    server.query(p);
                }
            }
        }
        let mutation = scripted(params, params.writers - 1, total_mutations, oracle.tree());
        let got = server.apply(&mutation);
        let want = oracle.apply(&mutation);
        assert_eq!(got.is_ok(), want.is_ok(), "survivor-probe mutation outcome");
        let before = server.counters().stats();
        for mix in paths.iter().take(paths.len() - 1) {
            for p in mix.iter().filter(|p| !p.contains('*')) {
                server.query(p);
                survivors_expected += 1;
            }
        }
        let after = server.counters().stats();
        survivors_hot = after.cache_hits - before.cache_hits;
    }

    let stats = server.counters().stats();
    let snap = server.snapshot();
    let converged = verify::equivalent(snap.labeled(), &oracle).is_ok();
    drop(snap);
    let consistent = server.shutdown_and_verify();

    let mut read_ns: Vec<u64> = runs.iter().flat_map(|r| r.read_ns.iter().copied()).collect();
    read_ns.sort_unstable();
    PassResult {
        read_ns,
        checked: runs.iter().map(|r| r.checked).sum(),
        mismatches: runs.iter().map(|r| r.mismatches).sum(),
        acked,
        converged,
        consistent,
        hits: stats.cache_hits,
        misses: stats.cache_misses,
        invalidated: stats.cache_invalidated,
        survivors_expected,
        survivors_hot,
    }
}

/// Runs the mixed workload twice — cache on, then cache off — over the
/// identical document, seeds, and pacing, and folds both into one stats
/// record. Writes `results/bench_query_cache.json` when asked.
pub fn query_cache_bench(workload: &CacheWorkload, write_json: bool) -> CacheBenchStats {
    let params = TraceParams {
        writers: workload.regions,
        steps_per_writer: 0, // scripts are derived per step; unused here
        region_breadth: (workload.nodes / workload.regions.max(1)).max(1),
        seed: SEED,
    };
    let t = Instant::now();
    let xml = serialize::to_string(&initial_tree(&params));
    eprintln!(
        "[bench_query_cache] generated {} regions / ~{} elements in {:.1}s",
        workload.regions,
        workload.nodes,
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    let hot = run_pass("cache-on", &xml, &params, workload, Some(CACHE_CAPACITY));
    let hot_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let cold = run_pass("cache-off", &xml, &params, workload, None);
    let cold_secs = t.elapsed().as_secs_f64();
    eprintln!("[bench_query_cache] cached pass {hot_secs:.1}s, uncached pass {cold_secs:.1}s");

    let stats = CacheBenchStats {
        workload: workload.clone(),
        reads: hot.read_ns.len() as u64,
        mutations: hot.acked,
        hit_rate: hot.hits as f64 / (hot.hits + hot.misses).max(1) as f64,
        hits: hot.hits,
        misses: hot.misses,
        invalidated: hot.invalidated,
        cached_p50_us: percentile(&hot.read_ns, 50),
        cached_p99_us: percentile(&hot.read_ns, 99),
        uncached_p50_us: percentile(&cold.read_ns, 50),
        uncached_p99_us: percentile(&cold.read_ns, 99),
        differential_checked: hot.checked + cold.checked,
        differential_mismatches: hot.mismatches + cold.mismatches,
        survivors_expected: hot.survivors_expected,
        survivors_hot: hot.survivors_hot,
        converged: hot.converged && cold.converged,
        final_consistent: hot.consistent && cold.consistent,
    };
    if write_json {
        write_results(&stats);
    }
    stats
}

/// Handwritten JSON, same shape family as `results/bench_server.json`.
fn write_results(stats: &CacheBenchStats) {
    let mut out = String::new();
    let w = &stats.workload;
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"group\": \"query_cache\",");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"nodes\": {}, \"regions\": {}, \"readers\": {}, \
         \"ops_per_reader\": {}, \"read_percent\": 95}},",
        w.nodes, w.regions, w.readers, w.ops_per_reader,
    );
    let _ = writeln!(
        out,
        "  \"cache\": {{\"hit_rate\": {:.3}, \"hits\": {}, \"misses\": {}, \"invalidated\": {}}},",
        stats.hit_rate, stats.hits, stats.misses, stats.invalidated,
    );
    let _ = writeln!(
        out,
        "  \"reads\": {{\"count\": {}, \"cached_p50_us\": {:.1}, \"cached_p99_us\": {:.1}, \
         \"uncached_p50_us\": {:.1}, \"uncached_p99_us\": {:.1}}},",
        stats.reads,
        stats.cached_p50_us,
        stats.cached_p99_us,
        stats.uncached_p50_us,
        stats.uncached_p99_us,
    );
    let _ = writeln!(out, "  \"mutations\": {{\"count\": {}}},", stats.mutations);
    let _ = writeln!(
        out,
        "  \"differential\": {{\"checked\": {}, \"mismatches\": {}}},",
        stats.differential_checked, stats.differential_mismatches,
    );
    let _ = writeln!(
        out,
        "  \"survivors\": {{\"expected\": {}, \"hot\": {}}},",
        stats.survivors_expected, stats.survivors_hot,
    );
    let _ = writeln!(
        out,
        "  \"converged\": {}, \"final_consistent\": {}",
        stats.converged, stats.final_consistent,
    );
    let _ = write!(out, "}}");
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok()
        && std::fs::write(dir.join("bench_query_cache.json"), out).is_ok()
    {
        println!("[written results/bench_query_cache.json]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_cache_bench_round_trips_a_small_workload() {
        let stats = query_cache_bench(
            &CacheWorkload { nodes: 600, regions: 3, readers: 2, ops_per_reader: 60 },
            false,
        );
        assert_eq!(stats.reads, 120);
        assert!(stats.mutations > 0, "the mix must include mutations");
        assert!(stats.differential_checked > 0, "differential had no coverage");
        assert_eq!(stats.differential_mismatches, 0, "stale cached answer");
        assert!(stats.hits > 0 && stats.misses > 0);
        assert_eq!(stats.survivors_hot, stats.survivors_expected);
        assert!(stats.converged && stats.final_consistent);
    }
}
