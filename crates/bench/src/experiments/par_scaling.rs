//! Thread-scaling experiment for the `xp-par` execution layer.
//!
//! Measures the four parallelized hot paths — the product tree, segmented
//! sieving, top-down labeling, and the SC-table-backed ordered build plus
//! its label table — at 1/2/4/8 worker threads, and checks the layer's
//! core contract while it measures: every workload's output must be
//! byte-identical at every thread count. Timing claims are only meaningful
//! on multi-core hardware; output identity is meaningful everywhere, so
//! [`ParScalingStats::outputs_identical`] is asserted unconditionally by
//! the smoke gate while speedups are gated on
//! `std::thread::available_parallelism()`.

use crate::experiments::SEED;
use xp_bignum::{prodtree, UBig};
use xp_prime::OrderedPrimeDoc;
use xp_primes::sieve::SegmentedSieve;
use xp_query::LabelTable;
use xp_testkit::bench::Harness;
use xp_xmltree::XmlTree;

/// Thread counts every workload is measured at.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Sizes for one run of the experiment.
#[derive(Debug, Clone, Copy)]
pub struct ParScalingConfig {
    /// Factors fed to the product tree.
    pub prodtree_factors: usize,
    /// Segments sieved per call, and their length.
    pub sieve_segments: usize,
    /// Segment length for the sieve workload.
    pub sieve_segment_len: u64,
    /// Elements in the labeled document.
    pub doc_nodes: usize,
    /// SC chunk capacity for the ordered build.
    pub chunk_capacity: usize,
    /// Harness samples per measurement.
    pub samples: usize,
}

impl ParScalingConfig {
    /// The full sweep behind `results/bench_par_scaling.json`.
    pub fn full() -> Self {
        ParScalingConfig {
            prodtree_factors: 4000,
            sieve_segments: 8,
            sieve_segment_len: 1 << 18,
            doc_nodes: 4000,
            chunk_capacity: 50,
            samples: 10,
        }
    }

    /// The CI smoke gate: small enough to run in seconds anywhere.
    pub fn smoke() -> Self {
        ParScalingConfig {
            prodtree_factors: 1200,
            sieve_segments: 4,
            sieve_segment_len: 1 << 16,
            doc_nodes: 800,
            chunk_capacity: 20,
            samples: 5,
        }
    }
}

/// What one run produced.
#[derive(Debug, Clone)]
pub struct ParScalingStats {
    /// `available_parallelism()` on the measuring host.
    pub hardware_threads: usize,
    /// `(workload, threads, median ns)` for every measured cell.
    pub medians: Vec<(&'static str, usize, f64)>,
    /// `true` iff every workload's output matched the single-thread run
    /// bit-for-bit at every thread count.
    pub outputs_identical: bool,
}

impl ParScalingStats {
    /// Median for one cell, `NaN` when missing.
    pub fn median(&self, workload: &str, threads: usize) -> f64 {
        self.medians
            .iter()
            .find(|&&(w, t, _)| w == workload && t == threads)
            .map(|&(_, _, ns)| ns)
            .unwrap_or(f64::NAN)
    }

    /// Sequential-to-parallel speedup for one cell (`> 1` is faster).
    pub fn speedup(&self, workload: &str, threads: usize) -> f64 {
        self.median(workload, 1) / self.median(workload, threads)
    }
}

fn doc(nodes: usize) -> XmlTree {
    xp_datagen::builders::random_tree(
        SEED,
        &xp_datagen::builders::RandomTreeParams {
            nodes,
            max_depth: 8,
            max_fanout: 8,
            tag_variety: 6,
        },
    )
}

/// Everything observable about one ordered build, for cross-thread-count
/// comparison: node enumeration, label bytes, orders, and table rows.
fn build_fingerprint(tree: &XmlTree, chunk_capacity: usize) -> String {
    let built = OrderedPrimeDoc::build(tree, chunk_capacity).expect("bench doc builds");
    let labels = built.labels();
    let table = LabelTable::build(tree, labels);
    let mut out = String::new();
    for &node in labels.nodes() {
        out.push_str(&format!(
            "{node}:{:?}:{};",
            labels.label(node),
            built.order_of(node)
        ));
    }
    for row in table.rows() {
        out.push_str(&format!("{}:{}:{:?};", row.node, row.tag, row.text));
    }
    out
}

/// Runs the experiment. Writes `results/bench_par_scaling.json` only when
/// `write_json` is set (the CI smoke run measures without clobbering the
/// checked-in numbers).
pub fn par_scaling(cfg: &ParScalingConfig, write_json: bool) -> ParScalingStats {
    let factors: Vec<u64> =
        (0..cfg.prodtree_factors as u64).map(|i| 0x8000_0000_0000_0001 | (i << 1)).collect();
    let tree = doc(cfg.doc_nodes);

    let mut group = Harness::new("par_scaling");
    group.sample_size(cfg.samples);
    let mut medians = Vec::new();
    let mut outputs_identical = true;

    let mut reference: Option<(UBig, Vec<u64>, String)> = None;
    for &threads in &THREAD_COUNTS {
        let (product, primes, build) = xp_par::with_threads(threads, || {
            group.bench(&format!("prodtree/t{threads}"), || prodtree::product_par(&factors));
            group.bench(&format!("sieve/t{threads}"), || {
                SegmentedSieve::with_segment_len(cfg.sieve_segment_len)
                    .next_segments(cfg.sieve_segments)
            });
            group.bench(&format!("sc_build/t{threads}"), || {
                OrderedPrimeDoc::build(&tree, cfg.chunk_capacity).expect("bench doc builds")
            });
            (
                prodtree::product_par(&factors),
                SegmentedSieve::with_segment_len(cfg.sieve_segment_len)
                    .next_segments(cfg.sieve_segments),
                build_fingerprint(&tree, cfg.chunk_capacity),
            )
        });
        match &reference {
            None => reference = Some((product, primes, build)),
            Some(r) => {
                if (&product, &primes, &build) != (&r.0, &r.1, &r.2) {
                    eprintln!("FAIL: outputs at {threads} threads differ from sequential");
                    outputs_identical = false;
                }
            }
        }
    }

    for r in group.results() {
        if let Some((workload, t)) = r.name.rsplit_once("/t") {
            if let Ok(threads) = t.parse::<usize>() {
                // `name` borrows from the harness; map back to the static
                // workload labels so the stats own their strings.
                let label = match workload {
                    "prodtree" => "prodtree",
                    "sieve" => "sieve",
                    _ => "sc_build",
                };
                medians.push((label, threads, r.median_ns));
            }
        }
    }
    if write_json {
        group.finish();
    }
    ParScalingStats {
        hardware_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        medians,
        outputs_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_deterministic_across_thread_counts() {
        let mut cfg = ParScalingConfig::smoke();
        cfg.samples = 2;
        cfg.prodtree_factors = 300;
        cfg.doc_nodes = 200;
        let stats = par_scaling(&cfg, false);
        assert!(stats.outputs_identical);
        assert_eq!(stats.medians.len(), 3 * THREAD_COUNTS.len());
        assert!(stats.median("prodtree", 1).is_finite());
        assert!(stats.speedup("sc_build", 4).is_finite());
    }
}
