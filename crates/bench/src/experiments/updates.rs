//! Update experiments: Figure 16 (leaf insertion), Figure 17 (non-leaf
//! insertion), Figure 18 (order-sensitive insertion), plus the SC
//! chunk-size ablation.
//!
//! Relabel counts are *measured*, not modeled (DESIGN.md §4.3): every
//! scheme runs the mutation through the unified dynamic API
//! ([`LabeledStore`]) and the [`RelabelReport`] is the cost. Schemes with
//! no incremental move fall back to a full relabel internally, which the
//! report exposes as the honest diff — the same number the old
//! label/mutate/relabel/diff harness measured.

use super::SEED;
use crate::report::Report;
use xp_baselines::dewey::DeweyScheme;
use xp_baselines::interval::IntervalScheme;
use xp_baselines::prefix::Prefix2Scheme;
use xp_datagen::builders::update_experiment_docs;
use xp_datagen::shakespeare::{generate_play, PlayParams};
use xp_labelkit::{DynamicScheme, InsertPos, LabeledStore, RelabelReport};
use xp_prime::dynamic::DynamicPrime;
use xp_prime::ordered::OrderedPrimeDoc;
use xp_prime::topdown::TopDownPrime;
use xp_xmltree::{parse, NodeId, XmlTree};

/// SC chunk capacity the update experiments run with — the paper's choice.
const SC_CHUNK: usize = 5;

/// Runs one mutation through a fresh [`LabeledStore`] and returns its
/// report. `NodeId`s from `tree` stay valid in the store's clone.
fn store_report<S: DynamicScheme>(
    scheme: S,
    tree: &XmlTree,
    mutate: impl FnOnce(&mut LabeledStore<S>) -> Result<RelabelReport, xp_labelkit::DynamicError>,
) -> RelabelReport {
    let mut store = LabeledStore::build(scheme, tree.clone()).expect("labelable doc");
    mutate(&mut store).expect("updatable doc")
}

/// The deepest element (first in document order among the deepest).
fn deepest_element(tree: &XmlTree) -> NodeId {
    let mut best = tree.root();
    let mut best_depth = 0;
    for node in tree.elements() {
        let d = tree.depth(node);
        if d > best_depth {
            best = node;
            best_depth = d;
        }
    }
    best
}

/// The first element at exactly `depth` in document order, if any.
fn first_at_depth(tree: &XmlTree, depth: usize) -> Option<NodeId> {
    tree.elements().find(|&n| tree.depth(n) == depth)
}

/// Figure 16: number of nodes relabeled when inserting a new node under the
/// node on the deepest level, for documents of 1000..=10000 nodes.
///
/// The insertion makes a previous leaf internal, so the optimized prime
/// scheme relabels 2 nodes (new + parent trading its `2^n` for a prime),
/// the unoptimized prime scheme and the prefix scheme relabel 1, and the
/// interval scheme renumbers everything after the insertion point.
pub fn fig16() -> Report {
    let mut r = Report::new(
        "fig16_update_leaf",
        "Figure 16: update on leaf nodes (nodes to relabel)",
        &["doc_nodes", "interval", "prime_optimized", "prime_original", "prefix2"],
    );
    let leaf = parse("<new/>").expect("fragment");
    for tree in update_experiment_docs(SEED) {
        let n = tree.elements().count();
        let target = deepest_element(&tree);
        let append = InsertPos::LastChildOf(target);

        let interval = store_report(IntervalScheme::dense(), &tree, |s| {
            s.insert_subtree(append, &leaf)
        })
        .labels_touched();
        let prefix2 =
            store_report(Prefix2Scheme, &tree, |s| s.insert_subtree(append, &leaf)).labels_touched();
        let prime_plain = store_report(DynamicPrime::new(SC_CHUNK), &tree, |s| {
            s.insert_subtree(append, &leaf)
        })
        .labels_touched();

        // Opt2's power-of-two leaf labels are not coprime, so the optimized
        // variant has no SC table and no dynamic store; it keeps the direct
        // PrimeDoc update path.
        let mut t_opt = tree.clone();
        let mut doc_opt = TopDownPrime::optimized().label_document(&t_opt);
        let prime_opt = doc_opt.insert_child(&mut t_opt, target, "new").expect("updatable doc").total_relabeled();

        r.push(&[n, interval, prime_opt, prime_plain, prefix2]);
    }
    r
}

/// Figure 17: number of nodes relabeled when inserting a new node as the
/// *parent* of the first level-4 node (wrapping its subtree).
pub fn fig17() -> Report {
    let mut r = Report::new(
        "fig17_update_nonleaf",
        "Figure 17: update on non-leaf nodes (nodes to relabel)",
        &["doc_nodes", "subtree_size", "interval", "prime", "prefix2"],
    );
    for tree in update_experiment_docs(SEED) {
        let n = tree.elements().count();
        let target = first_at_depth(&tree, 4).expect("update docs reach depth 4");
        let subtree = tree.element_descendants(target).count();

        let interval = store_report(IntervalScheme::dense(), &tree, |s| {
            s.insert_parent(target, "wrap")
        })
        .labels_touched();
        let prefix2 =
            store_report(Prefix2Scheme, &tree, |s| s.insert_parent(target, "wrap")).labels_touched();
        let prime = store_report(DynamicPrime::new(SC_CHUNK), &tree, |s| {
            s.insert_parent(target, "wrap")
        })
        .labels_touched();

        r.push(&[n, subtree, interval, prime, prefix2]);
    }
    r
}

/// The acts of a play, in document order.
fn acts(tree: &XmlTree) -> Vec<NodeId> {
    tree.elements().filter(|&n| tree.tag(n) == Some("ACT")).collect()
}

/// Figure 18: order-sensitive updates on Hamlet — a new `ACT` inserted
/// before act k, for k = 1..=5, each on a fresh document. The prime scheme
/// pays 1 (the new label) + one per touched SC record (+ rare small-prime
/// relabels); interval and prefix relabel everything whose label or order
/// encoding shifts.
pub fn fig18(chunk_capacity: usize) -> Report {
    let mut r = Report::new(
        "fig18_ordered_update",
        "Figure 18: order-sensitive updates (nodes to relabel; SC chunk = 5)",
        &["updated_act", "interval", "prefix2", "dewey", "prime", "prime_sc_records"],
    );
    let play = generate_play("Hamlet", SEED, &PlayParams::hamlet_like());
    for k in 1..=5usize {
        let act_k = acts(&play)[k - 1];

        let interval = store_report(IntervalScheme::dense(), &play, |s| {
            s.insert_before(act_k, "ACT")
        })
        .labels_touched();
        let prefix2 =
            store_report(Prefix2Scheme, &play, |s| s.insert_before(act_k, "ACT")).labels_touched();
        let dewey =
            store_report(DeweyScheme, &play, |s| s.insert_before(act_k, "ACT")).labels_touched();

        let report = store_report(DynamicPrime::new(chunk_capacity), &play, |s| {
            s.insert_before(act_k, "ACT")
        });
        // The prime column charges the SC-record side updates too — the
        // full price of keeping order out of the labels.
        r.push(&[k, interval, prefix2, dewey, report.total_cost(), report.side_updates]);
    }
    r
}

/// Ablation: Figure 18's prime cost as a function of the SC chunk size.
/// Larger chunks mean fewer records to touch but bigger CRT systems per
/// touch — the paper fixes 5; this sweep shows the trade-off, including
/// the SC table's own storage (which the paper never charges).
pub fn ablation_chunk_size() -> Report {
    let mut r = Report::new(
        "ablation_chunk_size",
        "Ablation: SC chunk size vs ordered-update cost (insert before act 3)",
        &["chunk_size", "sc_records_total", "sc_records_updated", "prime_total", "sc_storage_bits"],
    );
    let play = generate_play("Hamlet", SEED, &PlayParams::hamlet_like());
    for chunk in [1usize, 2, 5, 10, 25, 50, 100] {
        let mut t = play.clone();
        let act3 = acts(&t)[2];
        let mut ordered = OrderedPrimeDoc::build(&t, chunk).expect("coprime");
        let total_records = ordered.sc_table().record_count();
        let storage = ordered.sc_table().storage_bits();
        let report = ordered.insert_sibling_before(&mut t, act3, "ACT").expect("insert");
        r.push(&[
            chunk,
            total_records,
            report.sc_records_updated,
            report.total_relabeled(),
            storage as usize,
        ]);
    }
    r
}

/// `(prime, order)` items for an n-node SC table: odd primes assigned in
/// document order (the shape every SC bench in the workspace uses).
fn sc_items(n: usize) -> Vec<(u64, u64)> {
    xp_primes::first_primes(n + 1)[1..]
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64 + 1))
        .collect()
}

/// Median wall-clock numbers from [`sc_maintenance`], in nanoseconds.
#[derive(Debug, Clone)]
pub struct ScMaintenanceStats {
    /// `(table_nodes, median ns)` for one incremental tail-append insert.
    pub append_ns: Vec<(usize, f64)>,
    /// `(table_nodes, median ns)` for rebuilding the grown table from
    /// scratch — the cost floor the pre-incremental insert path hovered
    /// near, since it re-derived every member's order from the SC value.
    pub rebuild_ns: Vec<(usize, f64)>,
}

impl ScMaintenanceStats {
    /// `true` iff every size's incremental append is at or below the
    /// rebuild-from-scratch median. An insert that loses to a full rebuild
    /// means the incremental machinery is worthless at that size.
    pub fn incremental_beats_rebuild(&self) -> bool {
        !self.append_ns.is_empty()
            && self
                .append_ns
                .iter()
                .zip(&self.rebuild_ns)
                .all(|(&(_, append), &(_, rebuild))| append <= rebuild)
    }

    /// `true` iff per-append cost grows no faster than linearly in the
    /// table size (within a noise `factor`): for every pair of sizes,
    /// `append(n₂)/append(n₁) ≤ factor · n₂/n₁`.
    ///
    /// Truly flat wall-clock is impossible — an SC value over n nodes is
    /// O(n) bits, so even a single delta update or product widening touches
    /// O(n/64) limbs. What the incremental path eliminates is the *extra*
    /// factor of n: the old pre-scan re-derived every member's order with a
    /// bignum division, making one append Θ(n) bignum ops ≈ Θ(n²) limb
    /// time. Quadratic growth fails this check at any realistic spread;
    /// linear-in-bits growth passes with room to spare.
    pub fn append_cost_scales_at_most_linearly(&self, factor: f64) -> bool {
        if self.append_ns.is_empty() {
            return false;
        }
        for (i, &(n1, a1)) in self.append_ns.iter().enumerate() {
            for &(n2, a2) in &self.append_ns[i + 1..] {
                if a2 / a1 > factor * (n2 as f64 / n1 as f64) {
                    return false;
                }
            }
        }
        true
    }
}

/// Wall-clock SC-maintenance experiment — the `sc_table` bench group.
///
/// Two families share the group:
///
/// * `build/{chunk}` and `front_insert/{chunk}`: construction and a
///   worst-case order-shifting insert at `fixed_n` nodes across chunk
///   sizes — the names earlier revisions used, so
///   `results/bench_sc_table.json` stays comparable across history.
/// * `append_insert/{n}` and `rebuild_insert/{n}`: per-insert cost of a
///   tail append into an n-node table (chunk 5, the paper's choice) vs
///   rebuilding the grown table from scratch, for each n in `sizes`.
///
/// Returns the medians of the second family; callers assert
/// [`ScMaintenanceStats::incremental_beats_rebuild`] and
/// [`ScMaintenanceStats::append_cost_is_flat`] on them. Writes
/// `results/bench_sc_table.json` only when `write_json` is set (the CI
/// smoke run measures without clobbering the checked-in numbers).
pub fn sc_maintenance(fixed_n: usize, sizes: &[usize], write_json: bool) -> ScMaintenanceStats {
    use xp_prime::sc::ScTable;
    use xp_testkit::bench::Harness;

    let mut group = Harness::new("sc_table");
    group.sample_size(10);

    let items = sc_items(fixed_n);
    for chunk in [1usize, 5, 25, 100] {
        group.bench(&format!("build/{chunk}"), || ScTable::build(chunk, &items).expect("coprime"));
        let table = ScTable::build(chunk, &items).expect("coprime");
        let fresh = xp_primes::nth_prime(fixed_n as u64 + 10);
        group.bench_batched(
            &format!("front_insert/{chunk}"),
            || table.clone(),
            |mut t| t.insert(fresh, 500).expect("insert"),
        );
    }

    for &n in sizes {
        let items = sc_items(n);
        let fresh = xp_primes::nth_prime(n as u64 + 10);
        let table = ScTable::build(5, &items).expect("coprime");
        group.bench_batched(
            &format!("append_insert/{n}"),
            || table.clone(),
            |mut t| t.insert(fresh, n as u64 + 1).expect("insert"),
        );
        let mut grown = items.clone();
        grown.push((fresh, n as u64 + 1));
        group.bench(&format!("rebuild_insert/{n}"), || ScTable::build(5, &grown).expect("coprime"));
    }

    let median = |name: &str| {
        group
            .results()
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .unwrap_or(f64::NAN)
    };
    let stats = ScMaintenanceStats {
        append_ns: sizes.iter().map(|&n| (n, median(&format!("append_insert/{n}")))).collect(),
        rebuild_ns: sizes.iter().map(|&n| (n, median(&format!("rebuild_insert/{n}")))).collect(),
    };
    if write_json {
        group.finish();
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(r: &Report, idx: usize) -> Vec<u64> {
        r.rows().iter().map(|row| row[idx].parse().unwrap()).collect()
    }

    #[test]
    fn fig16_shape_dynamic_flat_static_grows() {
        let r = fig16();
        let interval = col(&r, 1);
        let prime_opt = col(&r, 2);
        let prime_plain = col(&r, 3);
        let prefix2 = col(&r, 4);
        // Paper: prefix relabels 1, optimized prime 2, original prime 1 —
        // independent of document size.
        assert!(prime_opt.iter().all(|&v| v == 2), "{prime_opt:?}");
        assert!(prime_plain.iter().all(|&v| v == 1), "{prime_plain:?}");
        assert!(prefix2.iter().all(|&v| v == 1), "{prefix2:?}");
        // Interval grows with the document (hundreds to thousands).
        assert!(interval[0] > 10);
        assert!(interval.last().unwrap() > &interval[0]);
    }

    #[test]
    fn fig17_shape_dynamic_pays_subtree_static_pays_suffix() {
        let r = fig17();
        for row in r.rows() {
            let subtree: u64 = row[1].parse().unwrap();
            let interval: u64 = row[2].parse().unwrap();
            let prime: u64 = row[3].parse().unwrap();
            let prefix2: u64 = row[4].parse().unwrap();
            assert_eq!(prime, subtree + 1, "prime pays the wrapped subtree + new node");
            assert_eq!(prefix2, subtree + 1, "prefix pays the same subtree");
            assert!(interval >= prime, "interval relabels a superset");
        }
    }

    #[test]
    fn fig18_shape_prime_is_an_order_of_magnitude_cheaper() {
        let r = fig18(5);
        assert_eq!(r.rows().len(), 5);
        for row in r.rows() {
            let interval: f64 = row[1].parse().unwrap();
            let prefix2: f64 = row[2].parse().unwrap();
            let dewey: f64 = row[3].parse().unwrap();
            let prime: f64 = row[4].parse().unwrap();
            // Interval, prefix, and Dewey all relabel thousands; prime
            // touches ~(nodes-after / 5) SC records.
            assert!(interval > 1000.0, "interval {interval}");
            assert!(prefix2 > 1000.0, "prefix {prefix2}");
            assert!(dewey > 1000.0, "dewey {dewey}");
            assert!(prime < interval / 3.0, "prime {prime} vs interval {interval}");
            assert!(prime < prefix2 / 3.0, "prime {prime} vs prefix {prefix2}");
        }
    }

    #[test]
    fn fig18_cost_declines_for_later_acts() {
        // Inserting before a later act shifts fewer following nodes.
        let r = fig18(5);
        let prime = col(&r, 4);
        assert!(prime.first().unwrap() > prime.last().unwrap(), "{prime:?}");
        let interval = col(&r, 1);
        assert!(interval.first().unwrap() > interval.last().unwrap(), "{interval:?}");
    }

    #[test]
    fn chunk_ablation_larger_chunks_touch_fewer_records() {
        let r = ablation_chunk_size();
        let updated = col(&r, 2);
        assert!(
            updated.first().unwrap() > updated.last().unwrap(),
            "chunk=1 must touch more records than chunk=100: {updated:?}"
        );
    }
}
