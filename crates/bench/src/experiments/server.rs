//! Wall-clock experiment for the concurrent label server: many clients
//! hammer one served document over TCP with a read-heavy mixed workload
//! (95% queries / 5% mutations), then an all-mutation burst that shows
//! group commit amortizing WAL fsyncs across client batches.
//!
//! Alongside the latency percentiles the run proves isolation from the
//! *client's* side: the only mutation ever applied inserts `<p><x/><y/></p>`
//! as one atomic subtree, so any consistent labeling has `count(//x) ==
//! count(//y)`. Every response is epoch-stamped; whenever a client sees an
//! `//x` and an `//y` answer from the same epoch, the counts must match —
//! a torn labeling breaks the pair. The final quiesced counts must equal
//! the number of acknowledged inserts, and the store must pass its full
//! consistency suite after shutdown.

use super::SEED;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use xp_datagen::builders::{random_tree, RandomTreeParams};
use xp_server::{serve, BatchPolicy, Client, ListenConfig, WireMutation, WirePos};
use xp_store::Store;
use xp_xmltree::serialize;

/// Workload shape for [`server_bench`].
#[derive(Debug, Clone)]
pub struct ServerWorkload {
    /// Elements in the served document.
    pub nodes: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Mixed-phase operations per client (95% reads / 5% mutations).
    pub ops_per_client: usize,
    /// Burst-phase Apply requests per client, each carrying
    /// [`BURST_BATCH`] mutations.
    pub burst_applies_per_client: usize,
}

/// Mutations per burst-phase Apply request; the WAL group-commits each
/// request under one fsync, so the burst ratio is at most `1/BURST_BATCH`
/// before cross-client batching lowers it further.
pub const BURST_BATCH: usize = 4;

/// Every `HEAVY_EVERY`-th read is a dense tag scan (`//t<k>` touches
/// roughly `nodes / tag_variety` rows) instead of a cheap `//x`//`//y`
/// isolation probe.
const HEAVY_EVERY: usize = 16;

/// Latencies and invariant-check outcomes from [`server_bench`].
#[derive(Debug, Clone)]
pub struct ServerBenchStats {
    /// The workload that produced these numbers.
    pub workload: ServerWorkload,
    /// Completed read operations (mixed phase).
    pub reads: u64,
    /// Acknowledged mutations, mixed + burst phases.
    pub mutations: u64,
    /// Read latency percentiles, microseconds (mixed phase).
    pub read_p50_us: f64,
    /// 99th-percentile read latency, microseconds.
    pub read_p99_us: f64,
    /// Mutation (Apply round-trip) latency percentiles, microseconds
    /// (mixed phase, single-mutation requests).
    pub mutate_p50_us: f64,
    /// 99th-percentile mutation latency, microseconds.
    pub mutate_p99_us: f64,
    /// WAL fsyncs ÷ mutations over the mixed phase (single-mutation
    /// requests; batching only happens when clients collide).
    pub mixed_fsyncs_per_mutation: f64,
    /// WAL fsyncs ÷ mutations over the burst phase (multi-mutation
    /// requests; must stay below 1.0 — the group-commit acceptance gate).
    pub burst_fsyncs_per_mutation: f64,
    /// Same-epoch `//x`/`//y` response pairs that were checked; zero
    /// means the isolation check had no coverage.
    pub same_epoch_pairs: u64,
    /// No same-epoch pair ever disagreed.
    pub isolation_consistent: bool,
    /// Quiesced `count(//x)`/`count(//y)` equal the acknowledged inserts
    /// and the store passed `verify()` after shutdown.
    pub final_consistent: bool,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-bench-server-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn percentile(sorted: &[u64], pct: usize) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)] as f64 / 1e3
}

/// One client's mixed-phase work: `(read_ns, mutate_ns, pairs, acked)`.
struct ClientRun {
    read_ns: Vec<u64>,
    mutate_ns: Vec<u64>,
    same_epoch_pairs: u64,
    acked_inserts: u64,
    torn: bool,
}

fn mixed_phase(addr: &str, client: usize, ops: usize) -> ClientRun {
    let mut c = Client::connect_tcp(addr).expect("bench client connect");
    let mut run = ClientRun {
        read_ns: Vec::with_capacity(ops),
        mutate_ns: Vec::new(),
        same_epoch_pairs: 0,
        acked_inserts: 0,
        torn: false,
    };
    let mut last_x: Option<(u64, usize)> = None;
    for i in 0..ops {
        // 5% mutations, staggered so clients do not mutate in lockstep.
        if i % 20 == client % 20 {
            let start = Instant::now();
            let applied = c
                .apply(
                    "bench.xml",
                    &[WireMutation::InsertSubtree {
                        pos: WirePos::LastChildOf(0),
                        xml: "<p><x/><y/></p>".into(),
                    }],
                )
                .expect("bench apply");
            run.mutate_ns.push(start.elapsed().as_nanos() as u64);
            assert!(applied.results[0].is_ok(), "bench insert rejected");
            run.acked_inserts += 1;
            continue;
        }
        // Reads: mostly the cheap //x|//y isolation probe, every
        // HEAVY_EVERY-th a dense tag scan.
        let path = if i % HEAVY_EVERY == HEAVY_EVERY - 1 {
            "//t5"
        } else if i % 2 == 0 {
            "//x"
        } else {
            "//y"
        };
        let start = Instant::now();
        let hits = c.query("bench.xml", path).expect("bench query");
        run.read_ns.push(start.elapsed().as_nanos() as u64);
        match path {
            "//x" => last_x = Some((hits.epoch, hits.nodes.len())),
            "//y" => {
                if let Some((epoch, xs)) = last_x {
                    if epoch == hits.epoch {
                        run.same_epoch_pairs += 1;
                        if xs != hits.nodes.len() {
                            run.torn = true;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    run
}

fn burst_phase(addr: &str, applies: usize) -> u64 {
    let mut c = Client::connect_tcp(addr).expect("bench burst connect");
    let batch: Vec<WireMutation> = (0..BURST_BATCH)
        .map(|_| WireMutation::InsertSubtree {
            pos: WirePos::LastChildOf(0),
            xml: "<p><x/><y/></p>".into(),
        })
        .collect();
    let mut acked = 0u64;
    for _ in 0..applies {
        let applied = c.apply("bench.xml", &batch).expect("bench burst apply");
        acked += applied.results.iter().filter(|r| r.is_ok()).count() as u64;
    }
    acked
}

/// Runs the server workload and (optionally) writes
/// `results/bench_server.json`.
pub fn server_bench(workload: &ServerWorkload, write_json: bool) -> ServerBenchStats {
    let tree = random_tree(
        SEED,
        &RandomTreeParams {
            nodes: workload.nodes,
            max_depth: 8,
            max_fanout: 40,
            tag_variety: 10,
        },
    );
    let xml = serialize::to_string(&tree);
    let dir = scratch_dir(&workload.nodes.to_string());

    let t = Instant::now();
    let mut store = Store::create(&dir).expect("bench store create");
    store.add_document("bench.xml", &xml, 5).expect("bench document");
    eprintln!(
        "[bench_server] labeled + stored {} elements in {:.1}s",
        workload.nodes,
        t.elapsed().as_secs_f64()
    );

    let handle = serve(
        store,
        ListenConfig { tcp: Some("127.0.0.1:0".into()), unix: None },
        BatchPolicy::default(),
    )
    .expect("bench serve");
    let addr = handle.tcp_addr().expect("bench tcp addr").to_string();

    let mut probe = Client::connect_tcp(&addr).expect("bench probe connect");
    let base = probe.stats().expect("bench stats");

    // Mixed phase: every client runs the 95/5 workload concurrently.
    let t = Instant::now();
    let runs: Vec<ClientRun> = std::thread::scope(|s| {
        let hs: Vec<_> = (0..workload.clients)
            .map(|client| {
                let addr = &addr;
                s.spawn(move || mixed_phase(addr, client, workload.ops_per_client))
            })
            .collect();
        hs.into_iter().map(|h| h.join().expect("bench client thread")).collect()
    });
    let mixed_secs = t.elapsed().as_secs_f64();
    let after_mixed = probe.stats().expect("bench stats");

    // Burst phase: all clients push multi-mutation applies at once.
    let t = Instant::now();
    let burst_acked: u64 = std::thread::scope(|s| {
        let hs: Vec<_> = (0..workload.clients)
            .map(|_| {
                let addr = &addr;
                s.spawn(move || burst_phase(addr, workload.burst_applies_per_client))
            })
            .collect();
        hs.into_iter().map(|h| h.join().expect("bench burst thread")).sum()
    });
    let burst_secs = t.elapsed().as_secs_f64();
    let after_burst = probe.stats().expect("bench stats");

    // Quiesced check, then shut the server down and verify the store.
    let mixed_acked: u64 = runs.iter().map(|r| r.acked_inserts).sum();
    let total_inserts = mixed_acked + burst_acked;
    let xs = probe.query("bench.xml", "//x").expect("final //x");
    let ys = probe.query("bench.xml", "//y").expect("final //y");
    let mut final_consistent =
        xs.nodes.len() as u64 == total_inserts && ys.nodes.len() as u64 == total_inserts;
    probe.shutdown().expect("bench shutdown");
    match handle.wait() {
        Some(store) => final_consistent &= store.verify().is_ok(),
        None => final_consistent = false,
    }

    let mut read_ns: Vec<u64> = runs.iter().flat_map(|r| r.read_ns.iter().copied()).collect();
    let mut mutate_ns: Vec<u64> = runs.iter().flat_map(|r| r.mutate_ns.iter().copied()).collect();
    read_ns.sort_unstable();
    mutate_ns.sort_unstable();

    let mixed_fsyncs = after_mixed.wal_fsyncs - base.wal_fsyncs;
    let mixed_muts = after_mixed.applied - base.applied;
    let burst_fsyncs = after_burst.wal_fsyncs - after_mixed.wal_fsyncs;
    let burst_muts = after_burst.applied - after_mixed.applied;

    let stats = ServerBenchStats {
        workload: workload.clone(),
        reads: read_ns.len() as u64,
        mutations: total_inserts,
        read_p50_us: percentile(&read_ns, 50),
        read_p99_us: percentile(&read_ns, 99),
        mutate_p50_us: percentile(&mutate_ns, 50),
        mutate_p99_us: percentile(&mutate_ns, 99),
        mixed_fsyncs_per_mutation: mixed_fsyncs as f64 / mixed_muts.max(1) as f64,
        burst_fsyncs_per_mutation: burst_fsyncs as f64 / burst_muts.max(1) as f64,
        same_epoch_pairs: runs.iter().map(|r| r.same_epoch_pairs).sum(),
        isolation_consistent: !runs.iter().any(|r| r.torn),
        final_consistent,
    };
    eprintln!(
        "[bench_server] mixed {mixed_secs:.1}s ({} reads, {mixed_muts} mutations), \
         burst {burst_secs:.1}s ({burst_muts} mutations)",
        stats.reads,
    );

    let _ = std::fs::remove_dir_all(&dir);
    if write_json {
        write_results(&stats);
    }
    stats
}

/// Handwritten JSON in the same spirit as the harness's
/// `results/bench_<group>.json` files (no serde in the workspace).
fn write_results(stats: &ServerBenchStats) {
    let mut out = String::new();
    let w = &stats.workload;
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"group\": \"server\",");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"nodes\": {}, \"clients\": {}, \"ops_per_client\": {}, \
         \"read_percent\": 95, \"burst_applies_per_client\": {}, \"burst_batch\": {}}},",
        w.nodes, w.clients, w.ops_per_client, w.burst_applies_per_client, BURST_BATCH,
    );
    let _ = writeln!(
        out,
        "  \"reads\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},",
        stats.reads, stats.read_p50_us, stats.read_p99_us,
    );
    let _ = writeln!(
        out,
        "  \"mutations\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},",
        stats.mutations, stats.mutate_p50_us, stats.mutate_p99_us,
    );
    let _ = writeln!(
        out,
        "  \"wal\": {{\"mixed_fsyncs_per_mutation\": {:.3}, \"burst_fsyncs_per_mutation\": {:.3}}},",
        stats.mixed_fsyncs_per_mutation, stats.burst_fsyncs_per_mutation,
    );
    let _ = writeln!(
        out,
        "  \"isolation\": {{\"same_epoch_pairs\": {}, \"torn\": {}, \"final_consistent\": {}}}",
        stats.same_epoch_pairs, !stats.isolation_consistent, stats.final_consistent,
    );
    let _ = write!(out, "}}");
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok()
        && std::fs::write(dir.join("bench_server.json"), out).is_ok()
    {
        println!("[written results/bench_server.json]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_bench_round_trips_a_small_workload() {
        let stats = server_bench(
            &ServerWorkload {
                nodes: 300,
                clients: 4,
                ops_per_client: 24,
                burst_applies_per_client: 2,
            },
            false,
        );
        assert!(stats.isolation_consistent);
        assert!(stats.final_consistent);
        assert!(stats.same_epoch_pairs > 0, "isolation probe had no coverage");
        assert!(stats.burst_fsyncs_per_mutation <= 1.0 / BURST_BATCH as f64 + 1e-9);
        assert!(stats.read_p99_us.is_finite() && stats.mutate_p99_us.is_finite());
    }
}
