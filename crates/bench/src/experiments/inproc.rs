//! In-process harness around the server's epoch loop: the cache and
//! multi-writer benches drive [`handle_request`] — the exact code path a
//! TCP connection handler runs — without socket framing, so latencies
//! isolate evaluation + cache cost from network noise (the wire path is
//! `bench_server`'s subject).

use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use xp_labelkit::Mutation;
use xp_server::epoch::{ApplyJob, BatchPolicy, Counters, EpochLoop};
use xp_server::protocol::{Request, Response};
use xp_server::server::handle_request;
use xp_server::snapshot::EpochSnapshot;
use xp_store::Store;

/// The single document every in-process bench serves.
pub(crate) const URI: &str = "bench.xml";

type Submit = Arc<dyn Fn(ApplyJob) -> Result<(), ApplyJob> + Send + Sync>;

/// One served document plus the handles a connection handler would hold.
pub(crate) struct InprocServer {
    epoch: EpochLoop,
    submit: Submit,
    counters: Arc<Counters>,
    dir: PathBuf,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-bench-inproc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

impl InprocServer {
    /// Creates a store under a scratch directory, adds `xml` as the one
    /// document, and starts the epoch loop (with a result cache of
    /// `cache_capacity` entries when given).
    pub fn start(tag: &str, xml: &str, cache_capacity: Option<usize>) -> InprocServer {
        let dir = scratch_dir(tag);
        let mut store = Store::create(&dir).expect("bench store create");
        store.add_document(URI, xml, 4).expect("bench document");
        let policy = BatchPolicy::default();
        let epoch = match cache_capacity {
            Some(cap) => EpochLoop::start_with_cache(store, policy, cap),
            None => EpochLoop::start(store, policy),
        };
        let sender = epoch.sender();
        let submit: Submit = Arc::new(move |job| sender.submit(job));
        let counters = epoch.counters();
        InprocServer { epoch, submit, counters, dir }
    }

    /// Shared server counters (cache hits/misses, epochs, …).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The latest published snapshot of the document.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.epoch
            .docs()
            .read()
            .expect("published docs")
            .get(URI)
            .cloned()
            .expect("bench document published")
    }

    /// Routes a query through the server's request handler; returns the
    /// answering epoch and the hit list.
    pub fn query(&self, path: &str) -> (u64, Vec<u64>) {
        let req = Request::Query { uri: URI.into(), path: path.into() };
        let caches = self.epoch.caches();
        match handle_request(req, &self.epoch.docs(), caches.as_ref(), &self.submit, &self.counters)
        {
            Response::Hits { epoch, nodes, .. } => (epoch, nodes),
            other => panic!("bench query {path} got {other:?}"),
        }
    }

    /// Applies one mutation through the request handler, blocking until
    /// the writer publishes the epoch that contains it.
    pub fn apply(&self, mutation: &Mutation) -> Result<u64, String> {
        let mut bytes = Vec::new();
        mutation.encode(&mut bytes);
        let req = Request::Apply { uri: URI.into(), mutations: vec![bytes] };
        let caches = self.epoch.caches();
        match handle_request(req, &self.epoch.docs(), caches.as_ref(), &self.submit, &self.counters)
        {
            Response::Applied { results, .. } => {
                results.into_iter().next().expect("one mutation, one result")
            }
            other => panic!("bench apply got {other:?}"),
        }
    }

    /// Submits one mutation directly to the writer without waiting for
    /// the reply channel round-trip logic in `apply` — used where the
    /// caller wants the raw `ApplyJob` path. Blocks on the outcome.
    #[allow(dead_code)]
    pub fn submit_raw(&self, mutations: Vec<Vec<u8>>) -> Result<(), String> {
        let (tx, rx) = mpsc::sync_channel(1);
        self.epoch
            .submit(ApplyJob { uri: URI.into(), mutations, reply: tx })
            .map_err(|_| "writer stopped".to_owned())?;
        let _ = rx.recv();
        Ok(())
    }

    /// Stops the loop, runs the store's full consistency suite, removes
    /// the scratch directory. Returns whether verification passed.
    pub fn shutdown_and_verify(self) -> bool {
        let ok = match self.epoch.shutdown() {
            Some(store) => store.verify().is_ok(),
            None => false,
        };
        let _ = std::fs::remove_dir_all(&self.dir);
        ok
    }
}
