//! Space experiments: Figure 3 (prime estimate), Figures 4–5 (analytic
//! self-label sizes), Table 1 (datasets), Figure 13 (optimizations),
//! Figure 14 (scheme comparison).

use super::SEED;
use crate::report::Report;
use xp_baselines::interval::IntervalScheme;
use xp_baselines::prefix::Prefix2Scheme;
use xp_datagen::DATASETS;
use xp_labelkit::Scheme;
use xp_prime::size_model;
use xp_prime::topdown::TopDownPrime;
use xp_primes::{estimate, PrimeIterator};
use xp_xmltree::TreeStats;

/// Figure 3: bit length of the actual n-th prime vs the paper's
/// `n·log₂(n)` estimate, for the first `max_n` primes (the paper plots
/// 10 000). Sampled every `step` to keep the table readable.
pub fn fig03(max_n: u64, step: u64) -> Report {
    let mut r = Report::new(
        "fig03_prime_estimate",
        "Figure 3: actual vs estimated prime number (bit length)",
        &["n", "actual_prime", "actual_bits", "estimated_bits"],
    );
    let mut primes = PrimeIterator::new();
    for n in 1..=max_n {
        let p = primes.next().expect("unbounded");
        if n == 1 || n == max_n || n % step == 0 {
            r.push(&[
                n.to_string(),
                p.to_string(),
                estimate::bits_of(p).to_string(),
                estimate::nth_prime_estimate_bits(n).to_string(),
            ]);
        }
    }
    r
}

/// Figure 4: maximum self-label size vs fan-out at depth 2.
pub fn fig04() -> Report {
    let mut r = Report::new(
        "fig04_fanout_size",
        "Figure 4: effect of fan-out on self-label size (D=2), bits",
        &["fanout", "prefix1", "prefix2", "prime"],
    );
    for row in size_model::figure4_series(2, 50) {
        r.push(&[row.x, row.prefix1, row.prefix2, row.prime]);
    }
    r
}

/// Figure 5: maximum self-label size vs depth at fan-out 15.
pub fn fig05() -> Report {
    let mut r = Report::new(
        "fig05_depth_size",
        "Figure 5: effect of depth on self-label size (F=15), bits",
        &["depth", "prefix1", "prefix2", "prime"],
    );
    for row in size_model::figure5_series(15, 10) {
        r.push(&[row.x, row.prefix1, row.prefix2, row.prime]);
    }
    r
}

/// Table 1: characteristics of the synthesized datasets.
pub fn tab01() -> Report {
    let mut r = Report::new(
        "tab01_datasets",
        "Table 1: characteristics of datasets (synthesized)",
        &["dataset", "topic", "max_nodes", "max_depth", "max_fanout", "leaf_share_%"],
    );
    for d in &DATASETS {
        let tree = d.generate(SEED);
        let s = TreeStats::compute(&tree);
        r.row(&[
            d.id.to_string(),
            d.topic.to_string(),
            s.node_count.to_string(),
            s.max_depth.to_string(),
            s.max_fanout.to_string(),
            format!("{:.0}", 100.0 * s.leaf_fraction()),
        ]);
    }
    r
}

/// Figure 13: effect of the optimizations on the maximum label size, per
/// dataset. Cumulative configurations, as in §5.1.1: Original, +Opt1,
/// +Opt1+Opt2, +Opt1+Opt2+Opt3.
pub fn fig13() -> Report {
    let mut r = Report::new(
        "fig13_optimizations",
        "Figure 13: effect of optimizations on space requirement (max label bits)",
        &["dataset", "original", "opt1", "opt2", "opt3"],
    );
    let original = TopDownPrime::unoptimized();
    let opt1 = TopDownPrime::with_reserved(16);
    let opt2 = TopDownPrime::optimized();
    let opt3 = TopDownPrime::fully_optimized();
    for d in &DATASETS {
        let tree = d.generate(SEED);
        r.row(&[
            d.id.to_string(),
            original.label(&tree).size_stats().max_bits.to_string(),
            opt1.label(&tree).size_stats().max_bits.to_string(),
            opt2.label(&tree).size_stats().max_bits.to_string(),
            opt3.label(&tree).size_stats().max_bits.to_string(),
        ]);
    }
    r
}

/// Figure 14: fixed-length label size for Interval, Prime (optimized), and
/// Prefix-2, per dataset.
pub fn fig14() -> Report {
    let mut r = Report::new(
        "fig14_space",
        "Figure 14: space requirements of the labeling schemes (max / avg label bits)",
        &["dataset", "interval", "prime", "prefix2", "interval_avg", "prime_avg", "prefix2_avg"],
    );
    let interval = IntervalScheme::dense();
    let prime = TopDownPrime::optimized();
    let prefix2 = Prefix2Scheme;
    for d in &DATASETS {
        let tree = d.generate(SEED);
        let i = interval.label(&tree).size_stats();
        let p = prime.label(&tree).size_stats();
        let x = prefix2.label(&tree).size_stats();
        r.row(&[
            d.id.to_string(),
            i.max_bits.to_string(),
            p.max_bits.to_string(),
            x.max_bits.to_string(),
            format!("{:.1}", i.avg_bits()),
            format!("{:.1}", p.avg_bits()),
            format!("{:.1}", x.avg_bits()),
        ]);
    }
    r
}

/// Ablation (beyond the paper's figures, §3.2's last remark): effect of
/// tree decomposition on the maximum label size for deep documents — a
/// 120-level chain and the deep NASA dataset (D7).
pub fn ablation_decompose() -> Report {
    use xp_datagen::builders::chain;
    use xp_prime::decompose::DecomposedPrimeDoc;

    let mut r = Report::new(
        "ablation_decompose",
        "Ablation: tree decomposition vs max label bits (flat = no decomposition)",
        &["document", "flat_bits", "cut2", "cut4", "cut8", "cut16"],
    );
    let deep_chain = chain(120);
    let d7 = xp_datagen::datasets::dataset("D7").expect("D7 exists").generate(SEED);
    for (name, tree) in [("chain-120", &deep_chain), ("D7-nasa", &d7)] {
        let flat = TopDownPrime::unoptimized().label(tree).size_stats().max_bits;
        let mut cells = vec![name.to_string(), flat.to_string()];
        for cut in [2usize, 4, 8, 16] {
            let doc = DecomposedPrimeDoc::build(tree, cut);
            cells.push(doc.max_label_bits().to_string());
        }
        r.row(&cells);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(r: &Report, idx: usize) -> Vec<i64> {
        r.rows().iter().map(|row| row[idx].parse().unwrap()).collect()
    }

    #[test]
    fn decomposition_shrinks_deep_documents() {
        let r = ablation_decompose();
        for row in r.rows() {
            let flat: u64 = row[1].parse().unwrap();
            let cut8: u64 = row[4].parse().unwrap();
            assert!(cut8 < flat, "{}: cut8 {cut8} vs flat {flat}", row[0]);
        }
        // The chain is the extreme case: an order-of-magnitude cut.
        let chain_row = &r.rows()[0];
        let flat: u64 = chain_row[1].parse().unwrap();
        let cut8: u64 = chain_row[4].parse().unwrap();
        assert!(cut8 * 4 < flat, "chain: {cut8} vs {flat}");
    }

    #[test]
    fn fig03_estimate_tracks_actual_within_a_couple_bits() {
        let r = fig03(10_000, 500);
        for row in r.rows() {
            let actual: i64 = row[2].parse().unwrap();
            let est: i64 = row[3].parse().unwrap();
            assert!((actual - est).abs() <= 2, "n={}: {actual} vs {est}", row[0]);
        }
    }

    #[test]
    fn fig04_shape_prefix1_linear_prime_flat() {
        let r = fig04();
        let prefix1 = col(&r, 1);
        let prime = col(&r, 3);
        assert_eq!(prefix1.last().unwrap() - prefix1[0], 49);
        assert!(prime.last().unwrap() - prime[0] <= 12);
        // Crossover: prime beats prefix-1 for large fan-out.
        assert!(prime.last().unwrap() < prefix1.last().unwrap());
    }

    #[test]
    fn fig05_shape_prime_grows_with_depth() {
        let r = fig05();
        let prefix2 = col(&r, 2);
        let prime = col(&r, 3);
        assert!(prefix2.windows(2).all(|w| w[0] == w[1]), "prefix flat in depth");
        assert!(prime.windows(2).all(|w| w[0] <= w[1]), "prime monotone in depth");
        assert!(prime.last().unwrap() > &prefix2[0], "prime overtakes at high depth");
    }

    #[test]
    fn fig13_optimizations_shrink_labels() {
        let r = fig13();
        for row in r.rows() {
            let original: u64 = row[1].parse().unwrap();
            let opt2: u64 = row[3].parse().unwrap();
            let opt3: u64 = row[4].parse().unwrap();
            assert!(opt2 <= original, "{}: opt2 {opt2} vs {original}", row[0]);
            assert!(opt3 <= opt2, "{}: opt3 {opt3} vs opt2 {opt2}", row[0]);
        }
        // §5.1.1's headline: Opt2 reaches ~63% reduction and Opt3 ~83% on
        // the most repetitive datasets. Our synthesized shapes give Opt2 up
        // to ~45% (recorded in EXPERIMENTS.md); require >=40% / >=70%.
        let best_opt2 = r
            .rows()
            .iter()
            .map(|row| {
                let o: f64 = row[1].parse().unwrap();
                let v: f64 = row[3].parse().unwrap();
                1.0 - v / o
            })
            .fold(0.0f64, f64::max);
        assert!(best_opt2 >= 0.4, "best Opt2 cut only {best_opt2:.2}");
        let best_opt3 = r
            .rows()
            .iter()
            .map(|row| {
                let o: f64 = row[1].parse().unwrap();
                let v: f64 = row[4].parse().unwrap();
                1.0 - v / o
            })
            .fold(0.0f64, f64::max);
        assert!(best_opt3 >= 0.7, "best Opt3 cut only {best_opt3:.2}");
    }

    #[test]
    fn fig14_shape_interval_smallest_prefix_loses_on_fanout_wins_on_depth() {
        let r = fig14();
        // "the maximum label size for the interval-based labeling scheme is
        // smaller compared [to] the prefix and prime number labeling
        // schemes" — an aggregate claim; our Opt2 prime labels undercut the
        // interval pair on a couple of shallow leafy datasets, so assert the
        // totals rather than every row.
        let total = |idx: usize| -> u64 {
            r.rows().iter().map(|row| row[idx].parse::<u64>().unwrap()).sum()
        };
        assert!(total(1) <= total(2), "interval total vs prime total");
        assert!(total(1) < total(3), "interval total vs prefix total");
        let get = |id: &str, idx: usize| -> u64 {
            r.rows().iter().find(|row| row[0] == id).unwrap()[idx].parse().unwrap()
        };
        // D4 (actor, huge fan-out): "the prefix labeling scheme suffers".
        assert!(get("D4", 3) > get("D4", 2), "prefix must lose on the actor dataset");
        // D7 (NASA, deep & narrow): "ideal for the prefix labeling scheme".
        assert!(get("D7", 3) < get("D7", 2), "prefix must win on the NASA dataset");
        // Prime beats prefix on most datasets ("best savings ... for the
        // majority of the datasets").
        let prime_wins = r
            .rows()
            .iter()
            .filter(|row| row[2].parse::<u64>().unwrap() <= row[3].parse::<u64>().unwrap())
            .count();
        assert!(prime_wins >= 5, "prime only won {prime_wins}/9");
    }
}
