//! Timing experiments: Table 2 (query cardinalities) and Figure 15
//! (response times for Q1–Q9 across schemes).

use super::SEED;
use crate::report::Report;
use std::time::Instant;
use xp_datagen::shakespeare::{PlayParams, ShakespeareCorpus};
use xp_query::evaluators::{Evaluator, IntervalEvaluator, Prefix2Evaluator, PrimeEvaluator};
use xp_query::queries::TEST_QUERIES;
use xp_xmltree::XmlTree;

/// Builds the §5.2 corpus: the Shakespeare dataset replicated `replicas`
/// times (the paper uses 5).
pub fn corpus(replicas: usize) -> XmlTree {
    ShakespeareCorpus::generate_with(replicas, SEED, &PlayParams::hamlet_like()).tree
}

/// Builds the three evaluators on one corpus.
pub fn evaluators(tree: &XmlTree) -> Vec<Box<dyn Evaluator>> {
    vec![
        Box::new(IntervalEvaluator::build(tree)),
        Box::new(PrimeEvaluator::build(tree, 5)),
        Box::new(Prefix2Evaluator::build(tree)),
    ]
}

/// Table 2: the nine queries and their result cardinalities (as evaluated
/// by every scheme; a test asserts the schemes agree).
pub fn tab02(replicas: usize) -> Report {
    let tree = corpus(replicas);
    let ev = PrimeEvaluator::build(&tree, 5);
    let mut r = Report::new(
        "tab02_queries",
        "Table 2: test queries and result cardinalities",
        &["query", "paper_path", "executed_path", "nodes_retrieved"],
    );
    for q in &TEST_QUERIES {
        r.row(&[
            q.id.to_string(),
            q.paper_path.to_string(),
            q.path.to_string(),
            ev.eval_str(q.path).len().to_string(),
        ]);
    }
    r
}

/// Figure 15: wall-clock response time (ms, median of `runs`) per query per
/// scheme.
pub fn fig15(replicas: usize, runs: usize) -> Report {
    let tree = corpus(replicas);
    let evs = evaluators(&tree);
    let mut r = Report::new(
        "fig15_response_time",
        "Figure 15: response time for queries (ms)",
        &["query", "interval_ms", "prime_ms", "prefix2_ms", "rows"],
    );
    for q in &TEST_QUERIES {
        let mut cells = vec![q.id.to_string()];
        let mut rows = 0usize;
        for ev in &evs {
            let mut times: Vec<f64> = Vec::with_capacity(runs);
            for _ in 0..runs.max(1) {
                let t = Instant::now();
                rows = ev.eval_str(q.path).len();
                times.push(t.elapsed().as_secs_f64() * 1e3);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            cells.push(format!("{:.3}", times[times.len() / 2]));
        }
        cells.push(rows.to_string());
        r.row(&cells);
    }
    r
}

/// Companion to Figure 15 (beyond the paper): substrate-independent
/// predicate traffic — ancestor tests and label bits touched — per query
/// per scheme. This is the metric behind the paper's timing claims that
/// survives moving off its 2004 DBMS.
pub fn fig15_predicate_traffic(replicas: usize) -> Report {
    use std::collections::HashMap;
    use xp_query::engine::{OrderOracle, Path};
    use xp_query::instrument::measure_predicates;
    use xp_xmltree::NodeId;

    struct MapOracle(HashMap<NodeId, u64>);
    impl OrderOracle for MapOracle {
        fn rank(&self, node: NodeId) -> u64 {
            self.0[&node]
        }
    }

    let tree = corpus(replicas);
    let interval = IntervalEvaluator::build(&tree);
    let prime = PrimeEvaluator::build(&tree, 5);
    let prefix = Prefix2Evaluator::build(&tree);

    let iv_ranks: HashMap<NodeId, u64> =
        interval.table().rows().iter().map(|r| (r.node, r.label.order)).collect();
    let pr_ranks: HashMap<NodeId, u64> =
        prime.table().rows().iter().map(|r| (r.node, prime.ordered().order_of(r.node))).collect();
    let px_ranks: HashMap<NodeId, u64> = {
        let mut nodes: Vec<NodeId> = prefix.table().rows().iter().map(|r| r.node).collect();
        nodes.sort_by(|&a, &b| prefix.table().label(a).bits().cmp(prefix.table().label(b).bits()));
        nodes.into_iter().enumerate().map(|(i, n)| (n, i as u64)).collect()
    };

    let mut r = Report::new(
        "fig15_predicate_traffic",
        "Figure 15 companion: predicate traffic (ancestor tests / kilobits of labels touched)",
        &["query", "tests", "interval_kbit", "prime_kbit", "prefix2_kbit"],
    );
    for q in &TEST_QUERIES {
        let path = Path::parse(q.path).expect("valid");
        let (_, si) = measure_predicates(interval.table(), &MapOracle(iv_ranks.clone()), &path).expect("static experiment query");
        let (_, sp) = measure_predicates(prime.table(), &MapOracle(pr_ranks.clone()), &path).expect("static experiment query");
        let (_, sx) = measure_predicates(prefix.table(), &MapOracle(px_ranks.clone()), &path).expect("static experiment query");
        r.row(&[
            q.id.to_string(),
            si.ancestor_tests.to_string(),
            format!("{:.1}", si.label_bits_touched as f64 / 1e3),
            format!("{:.1}", sp.label_bits_touched as f64 / 1e3),
            format!("{:.1}", sx.label_bits_touched as f64 / 1e3),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_query::queries::run_all;

    #[test]
    fn tab02_counts_scale_with_replication() {
        let one = tab02(1);
        let two = tab02(2);
        // Q8/Q9 (plain descendant scans) must scale ~linearly in replicas.
        for id in ["Q8", "Q9"] {
            let c1: f64 = one.rows().iter().find(|r| r[0] == id).unwrap()[3].parse().unwrap();
            let c2: f64 = two.rows().iter().find(|r| r[0] == id).unwrap()[3].parse().unwrap();
            assert!(c2 > 1.5 * c1, "{id}: {c1} -> {c2}");
        }
    }

    #[test]
    fn schemes_agree_on_the_corpus() {
        let tree = ShakespeareCorpus::generate_with(2, SEED, &PlayParams::miniature()).tree;
        let counts: Vec<Vec<(&str, usize)>> =
            evaluators(&tree).iter().map(|e| run_all(e.as_ref())).collect();
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[0], counts[2]);
    }

    #[test]
    fn fig15_produces_a_row_per_query() {
        // Miniature corpus: this test checks plumbing, not timing claims.
        let r = fig15(1, 1);
        assert_eq!(r.rows().len(), 9);
        for row in r.rows() {
            for cell in &row[1..4] {
                let ms: f64 = cell.parse().unwrap();
                assert!(ms >= 0.0);
            }
        }
    }
}
