//! Sharded-document experiment: the §3.2 decomposition as the unit of
//! scale.
//!
//! Scales the Table-1 synthetic idiom (a topic vocabulary over a fixed
//! shape profile, exact node counts) by ~100× to a corpus whose depth-2
//! subtrees become the shards, then measures what the shard facade buys:
//!
//! * **Front-insert cost** — inserting before the document's first
//!   section forces the SC order table to shift every following record.
//!   Unsharded, that is `O(document)` side updates; under the facade each
//!   shard owns its SC slice and only the routed shard (plus the shard
//!   boundary chains) moves, so the cost is `O(shard)`. The gate requires
//!   the sharded total cost (Figure 18's metric: labels written + SC
//!   records re-solved) to sit ≥10× below the unsharded baseline at the
//!   full shard count.
//! * **Parallel batch apply** — one batch fanning one insert into every
//!   shard, applied via `xp-par` at 1/2/4/8 worker threads. Speedups are
//!   only meaningful on multi-core hosts (the JSON records
//!   `host_threads` so checked-in numbers are honest); output identity is
//!   meaningful everywhere and is asserted unconditionally:
//! * **Byte-identity** — at every thread count the sharded store's tree,
//!   document order, and per-mutation outcomes must equal the unsharded
//!   oracle's, and its labels must equal the single-threaded sharded
//!   run's.

use xp_datagen::CountingBuilder;
use xp_labelkit::{
    apply_batch_sharded, InsertPos, LabeledStore, Mutation, RelabelReport, ShardPolicy,
    ShardedScheme,
};
use xp_prime::DynamicPrime;
use xp_xmltree::{serialize, NodeId, XmlTree};

/// Thread counts the batch apply is measured at.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One run's sizes.
#[derive(Debug, Clone, Copy)]
pub struct ShardingConfig {
    /// Total element count of the corpus.
    pub nodes: usize,
    /// Depth-1 children of the root.
    pub sections: usize,
    /// Depth-2 children per section; `sections * groups_per_section` is
    /// the shard count (plus the root shard) at cut depth 2.
    pub groups_per_section: usize,
    /// SC chunk capacity for both stores.
    pub chunk_capacity: usize,
    /// Batch applications per thread-count sample.
    pub samples: usize,
}

impl ShardingConfig {
    /// The full run behind `results/bench_sharding.json`: a 10⁷-node
    /// corpus cut into 256 shards.
    pub fn full() -> Self {
        ShardingConfig {
            nodes: 10_000_000,
            sections: 16,
            groups_per_section: 16,
            chunk_capacity: 5,
            samples: 3,
        }
    }

    /// The CI smoke gate: small enough to run in seconds anywhere.
    pub fn smoke() -> Self {
        ShardingConfig {
            nodes: 20_000,
            sections: 4,
            groups_per_section: 4,
            chunk_capacity: 5,
            samples: 2,
        }
    }
}

/// Cost triple of one mutation under the paper's accounting.
#[derive(Debug, Clone, Copy)]
pub struct MutationCost {
    /// Labels written (inserted + relabeled).
    pub labels_touched: usize,
    /// SC records re-solved.
    pub side_updates: usize,
    /// [`RelabelReport::total_cost`].
    pub total_cost: usize,
}

impl From<&RelabelReport> for MutationCost {
    fn from(r: &RelabelReport) -> Self {
        MutationCost {
            labels_touched: r.labels_touched(),
            side_updates: r.side_updates,
            total_cost: r.total_cost(),
        }
    }
}

/// Everything one [`sharding_bench`] run measured.
#[derive(Debug, Clone)]
pub struct ShardingStats {
    /// Corpus element count.
    pub nodes: usize,
    /// Live shards in the sharded store.
    pub shards: usize,
    /// Cut depth used.
    pub cut_depth: usize,
    /// Front-insert cost through the flat `DynamicPrime` store.
    pub front_unsharded: MutationCost,
    /// The same front insert through the shard facade.
    pub front_sharded: MutationCost,
    /// `(threads, median wall ms)` for one whole-corpus batch apply.
    pub batch_wall_ms: Vec<(usize, f64)>,
    /// Mutations per batch.
    pub batch_mutations: usize,
    /// `available_parallelism()` on the measuring host — timing claims
    /// are only meaningful when this is > 1.
    pub hardware_threads: usize,
    /// Tree, document order, outcomes, and labels agreed at every thread
    /// count (see the module docs).
    pub outputs_identical: bool,
}

impl ShardingStats {
    /// Unsharded ÷ sharded front-insert total cost.
    pub fn front_cost_ratio(&self) -> f64 {
        self.front_unsharded.total_cost as f64 / self.front_sharded.total_cost.max(1) as f64
    }

    /// Median batch wall at 1 thread ÷ wall at `threads`.
    pub fn speedup(&self, threads: usize) -> f64 {
        let wall = |t: usize| {
            self.batch_wall_ms
                .iter()
                .find(|&&(n, _)| n == t)
                .map(|&(_, ms)| ms)
                .unwrap_or(f64::NAN)
        };
        wall(1) / wall(threads).max(f64::MIN_POSITIVE)
    }
}

/// Builds the sharding corpus: `sections` depth-1 sections, each holding
/// `groups_per_section` depth-2 groups (the shard roots at cut depth 2),
/// padded with 5-element item blocks to exactly `nodes` elements — the
/// Table-1 generator idiom (fixed shape, exact count) at ~100× scale.
pub fn sharding_corpus(cfg: &ShardingConfig) -> XmlTree {
    let mut b = CountingBuilder::new("corpus");
    let root = b.tree.root();
    let mut groups = Vec::new();
    for _ in 0..cfg.sections {
        let section = b.child(root, "section");
        for _ in 0..cfg.groups_per_section {
            groups.push(b.child(section, "group"));
        }
    }
    assert!(b.elements <= cfg.nodes, "corpus skeleton exceeds the node budget");
    // Round-robin leaf items so every group gets the same share. Content
    // stays at depth 3: at cut depth 2 every depth that is a multiple of 2
    // starts a shard, so a deeper corpus would shatter into per-node
    // shards instead of one shard per group.
    let mut g = 0;
    while b.elements < cfg.nodes {
        b.child(groups[g], "item");
        g = (g + 1) % groups.len();
    }
    debug_assert_eq!(b.elements, cfg.nodes);
    b.tree
}

/// The depth-2 group nodes of a [`sharding_corpus`] tree, document order.
fn group_nodes(tree: &XmlTree) -> Vec<NodeId> {
    let mut out = Vec::new();
    for section in tree.element_children(tree.root()) {
        out.extend(tree.element_children(section));
    }
    out
}

/// Runs the experiment; pure measurement, no file I/O (the binary owns
/// the JSON).
pub fn sharding_bench(cfg: &ShardingConfig) -> ShardingStats {
    let cut_depth = 2;
    let tree = sharding_corpus(cfg);
    let groups = group_nodes(&tree);
    // The document-front leaf: every following node's order shifts when
    // something lands before it. A leaf anchor keeps the label cost of the
    // insert itself O(1) (insert-before relabels the anchor's subtree), so
    // the measured cost is the SC maintenance the decomposition bounds.
    let first_item = tree
        .element_children(groups[0])
        .next()
        .unwrap_or_else(|| panic!("corpus has no items"));

    let mut flat = LabeledStore::build(DynamicPrime::new(cfg.chunk_capacity), tree.clone())
        .unwrap_or_else(|e| panic!("unsharded build failed: {e}"));
    // Front insert: before the first content leaf, so the whole
    // document's order shifts behind it.
    let front = Mutation::InsertBefore { anchor: first_item, tag: "preface".into() };
    // Builds are deterministic, so rebuilding per thread count (instead of
    // cloning one store) still yields byte-identical starting states.
    let make_sharded = || {
        let scheme = ShardedScheme::new(
            DynamicPrime::new(cfg.chunk_capacity),
            ShardPolicy::at_depth(cut_depth),
        );
        let mut store = LabeledStore::build(scheme, tree.clone())
            .unwrap_or_else(|e| panic!("sharded build failed: {e}"));
        let report = store
            .apply(&front)
            .unwrap_or_else(|e| panic!("sharded front insert failed: {e}"));
        (store, report)
    };
    let (probe, sharded_report) = make_sharded();
    let shards = probe.state().live_count();
    let mut prebuilt = Some(probe);

    let front_unsharded: MutationCost = (&flat
        .apply(&front)
        .unwrap_or_else(|e| panic!("unsharded front insert failed: {e}")))
        .into();
    let front_sharded: MutationCost = (&sharded_report).into();

    // One batch fanning one subtree insert into every shard.
    let batch: Vec<Mutation> = groups
        .iter()
        .map(|&g| Mutation::InsertSubtree { pos: InsertPos::LastChildOf(g), xml: "<item/>".into() })
        .collect();

    // The unsharded oracle applies the same batch sequentially, the same
    // number of times every sharded clone will.
    let mut oracle_outcomes: Vec<bool> = Vec::new();
    for round in 0..cfg.samples {
        for m in &batch {
            let ok = flat.apply(m).is_ok();
            if round == 0 {
                oracle_outcomes.push(ok);
            }
        }
    }
    let oracle_xml = serialize::to_string(flat.tree());
    let oracle_order = flat.ordered_nodes();

    let mut outputs_identical = true;
    let mut batch_wall_ms = Vec::new();
    let mut reference_labels: Option<Vec<_>> = None;
    for &threads in &THREAD_COUNTS {
        let mut clone = prebuilt.take().unwrap_or_else(|| make_sharded().0);
        let mut walls = Vec::with_capacity(cfg.samples);
        let mut first_outcomes: Vec<bool> = Vec::new();
        for round in 0..cfg.samples {
            let start = std::time::Instant::now();
            let results = xp_par::with_threads(threads, || apply_batch_sharded(&mut clone, &batch));
            walls.push(start.elapsed().as_secs_f64() * 1e3);
            if round == 0 {
                first_outcomes = results.iter().map(Result::is_ok).collect();
            }
        }
        walls.sort_by(f64::total_cmp);
        batch_wall_ms.push((threads, walls[walls.len() / 2]));

        if first_outcomes != oracle_outcomes
            || serialize::to_string(clone.tree()) != oracle_xml
            || clone.ordered_nodes() != oracle_order
        {
            outputs_identical = false;
        }
        let labels: Vec<_> = clone.ordered_nodes().iter().map(|&n| clone.doc().label(n).clone()).collect();
        match &reference_labels {
            None => reference_labels = Some(labels),
            Some(reference) => {
                if *reference != labels {
                    outputs_identical = false;
                }
            }
        }
    }

    ShardingStats {
        nodes: cfg.nodes,
        shards,
        cut_depth,
        front_unsharded,
        front_sharded,
        batch_wall_ms,
        batch_mutations: batch.len(),
        hardware_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        outputs_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_round_trips_and_holds_the_gates() {
        let mut cfg = ShardingConfig::smoke();
        cfg.nodes = 4_000;
        cfg.samples = 1;
        let stats = sharding_bench(&cfg);
        assert_eq!(stats.nodes, 4_000);
        assert_eq!(stats.shards, cfg.sections * cfg.groups_per_section + 1);
        assert!(stats.outputs_identical, "sharded outputs diverged from the oracle");
        assert!(
            stats.front_cost_ratio() >= 2.0,
            "front insert not O(shard): ratio {:.1}",
            stats.front_cost_ratio()
        );
    }

    #[test]
    fn corpus_hits_its_node_count_exactly() {
        let cfg = ShardingConfig::smoke();
        let tree = sharding_corpus(&cfg);
        let elements = {
            let mut n = 0usize;
            let mut stack = vec![tree.root()];
            while let Some(node) = stack.pop() {
                n += 1;
                stack.extend(tree.element_children(node));
            }
            n
        };
        assert_eq!(elements, cfg.nodes);
        assert_eq!(group_nodes(&tree).len(), cfg.sections * cfg.groups_per_section);
    }
}
