//! Wall-clock experiment for the crash-safe disk store: what durability
//! costs per mutation (WAL append + fsync vs the same apply in memory),
//! what a checkpoint costs, and how long recovery takes to reopen a store
//! whose WAL still holds a replayable tail.
//!
//! Alongside the timings the run proves the store round-trips: the
//! reopened document must pass the full consistency suite and be logically
//! byte-identical to the live one, and a full checkpoint must leave the
//! WAL empty.

use super::SEED;
use std::path::PathBuf;
use xp_datagen::builders::{random_tree, RandomTreeParams};
use xp_labelkit::{InsertPos, LabeledStore, Mutation};
use xp_prime::dynamic::DynamicPrime;
use xp_store::{verify, Store, WAL_FILE};
use xp_testkit::bench::Harness;
use xp_xmltree::serialize;

/// Frames deliberately left in the WAL before the recovery bench, so every
/// `Store::open` pays for a segment load *and* a replay tail.
const REPLAY_TAIL: usize = 100;

/// Medians and invariant-check outcomes from [`store_bench`].
#[derive(Debug, Clone)]
pub struct StoreBenchStats {
    /// `(doc_nodes, median ns)` for one leaf insert through the in-memory
    /// [`LabeledStore`] alone.
    pub apply_memory_ns: Vec<(usize, f64)>,
    /// `(doc_nodes, median ns)` for the same insert through the durable
    /// store: WAL append + fsync, then the in-memory apply.
    pub apply_durable_ns: Vec<(usize, f64)>,
    /// `(doc_nodes, median ns)` for folding the WAL into a fresh
    /// checkpoint segment.
    pub checkpoint_ns: Vec<(usize, f64)>,
    /// `(doc_nodes, median ns)` for `Store::open`: manifest + segment load
    /// plus a [`REPLAY_TAIL`]-frame WAL replay.
    pub recover_ns: Vec<(usize, f64)>,
    /// Every reopened store passed `verify()` and was logically
    /// byte-identical to its live twin.
    pub recovery_consistent: bool,
    /// `checkpoint_all` left the WAL empty at every size.
    pub wal_truncated: bool,
}

impl StoreBenchStats {
    /// Durable-apply ÷ in-memory-apply median at each size.
    pub fn wal_overhead(&self) -> Vec<(usize, f64)> {
        self.apply_durable_ns
            .iter()
            .zip(&self.apply_memory_ns)
            .map(|(&(n, durable), &(_, memory))| (n, durable / memory.max(1.0)))
            .collect()
    }
}

fn scratch_dir(n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-bench-store-{n}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The `store` bench group over documents of `sizes` elements. Writes
/// `results/bench_store.json` only when `write_json` is set (the CI smoke
/// run measures without clobbering the checked-in numbers).
pub fn store_bench(sizes: &[usize], write_json: bool) -> StoreBenchStats {
    let mut group = Harness::new("store");
    group.sample_size(10);

    let mut stats = StoreBenchStats {
        apply_memory_ns: Vec::new(),
        apply_durable_ns: Vec::new(),
        checkpoint_ns: Vec::new(),
        recover_ns: Vec::new(),
        recovery_consistent: true,
        wal_truncated: true,
    };

    for &n in sizes {
        let tree = random_tree(
            SEED,
            &RandomTreeParams { nodes: n, max_depth: 8, max_fanout: 40, tag_variety: 10 },
        );
        let xml = serialize::to_string(&tree);
        let uri = "bench.xml";
        let dir = scratch_dir(n);

        let mut live = Store::create(&dir).expect("bench store create");
        live.add_document(uri, &xml, 5).expect("bench document");
        let root = live.doc(uri).expect("bench doc").tree().root();
        let leaf = Mutation::InsertSubtree {
            pos: InsertPos::LastChildOf(root),
            xml: "<x/>".into(),
        };

        // The same apply with and without the durability tax. Both stores
        // grow by one leaf per iteration; a leaf insert is O(1) labels, so
        // the per-iteration cost stays flat. The in-memory twin starts from
        // the store's own (parsed, preorder-arena) tree so the two applies
        // walk identical memory layouts.
        let mut memory =
            LabeledStore::build(DynamicPrime::new(5), live.doc(uri).expect("bench doc").tree().clone())
                .expect("bench labeling");
        group.bench(&format!("apply_memory/{n}"), || {
            memory.apply(&leaf).expect("in-memory apply")
        });
        group.bench(&format!("apply_durable/{n}"), || {
            live.apply(uri, &leaf).expect("durable apply")
        });

        // Checkpoint: fold the WAL into a fresh full segment.
        group.bench(&format!("checkpoint/{n}"), || {
            live.checkpoint(uri).expect("checkpoint")
        });

        // Recovery: reopen with a deterministic replay tail. A full
        // checkpoint first empties the WAL, then exactly REPLAY_TAIL
        // durable mutations land in it.
        live.checkpoint_all().expect("checkpoint_all");
        if std::fs::metadata(dir.join(WAL_FILE)).map(|m| m.len()).unwrap_or(u64::MAX) != 0 {
            stats.wal_truncated = false;
        }
        for _ in 0..REPLAY_TAIL {
            live.apply(uri, &leaf).expect("replay-tail apply");
        }
        group.bench(&format!("recover/{n}"), || Store::open(&dir).expect("recovery"));

        // The round-trip proof: the last reopen must match the live store.
        let reopened = Store::open(&dir).expect("final recovery");
        let ok = reopened.verify().is_ok()
            && verify::equivalent(
                reopened.doc(uri).expect("reopened doc").labeled(),
                live.doc(uri).expect("live doc").labeled(),
            )
            .is_ok();
        if !ok {
            stats.recovery_consistent = false;
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    let median = |name: &str| {
        group.results().iter().find(|r| r.name == name).map(|r| r.median_ns).unwrap_or(f64::NAN)
    };
    for &n in sizes {
        stats.apply_memory_ns.push((n, median(&format!("apply_memory/{n}"))));
        stats.apply_durable_ns.push((n, median(&format!("apply_durable/{n}"))));
        stats.checkpoint_ns.push((n, median(&format!("checkpoint/{n}"))));
        stats.recover_ns.push((n, median(&format!("recover/{n}"))));
    }
    if write_json {
        group.finish();
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_bench_round_trips_a_small_doc() {
        // Cheap settings so the test is a correctness check, not a bench.
        std::env::set_var("XP_BENCH_SAMPLES", "2");
        std::env::set_var("XP_BENCH_MIN_WINDOW_MS", "1");
        let stats = store_bench(&[200], false);
        assert!(stats.recovery_consistent);
        assert!(stats.wal_truncated);
        assert_eq!(stats.apply_memory_ns.len(), 1);
        assert!(stats.wal_overhead()[0].1.is_finite());
    }
}
