#!/usr/bin/env bash
# Tier-1 verification, hermetic edition.
#
# The workspace must build and test fully offline with an empty cargo
# registry cache: every dependency is an in-tree `xp-*` crate (see DESIGN.md,
# "Hermetic builds"). This script is the gate every PR must pass; the final
# check fails if anyone reintroduces a crates.io dependency.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> dependency hermeticity check (cargo tree)"
# Every line of `cargo tree` must be a workspace crate: xp-* or the xmlprime
# facade. Anything else means an external dependency crept back in.
violations=$(cargo tree --offline --workspace --edges normal,build,dev --prefix none \
    | sed 's/ (\*)$//' \
    | awk '{print $1}' \
    | sort -u \
    | grep -v -E '^(xp-[a-z0-9-]+|xmlprime)$' || true)
if [ -n "$violations" ]; then
    echo "ERROR: non-workspace dependencies found in the graph:" >&2
    echo "$violations" >&2
    echo "The build must stay hermetic — implement it in-tree (see crates/testkit)." >&2
    exit 1
fi
echo "OK: dependency graph contains only workspace crates."
