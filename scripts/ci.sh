#!/usr/bin/env bash
# Tier-1 verification, hermetic edition.
#
# The workspace must build and test fully offline with an empty cargo
# registry cache: every dependency is an in-tree `xp-*` crate (see DESIGN.md,
# "Hermetic builds"). This script is the gate every PR must pass; the final
# check fails if anyone reintroduces a crates.io dependency.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo test -q --offline (XP_THREADS=1, exact sequential fallback)"
# The xp-par layer promises byte-identical behaviour at any thread count,
# and XP_THREADS=1 must be the plain serial code path — run the whole tier-1
# suite under it so a parallelism regression cannot hide behind the default
# thread count (see DESIGN.md #9).
XP_THREADS=1 cargo test -q --offline

echo "==> dependency hermeticity check (cargo tree)"
# Every line of `cargo tree` must be a workspace crate: xp-* or the xmlprime
# facade. Anything else means an external dependency crept back in.
violations=$(cargo tree --offline --workspace --edges normal,build,dev --prefix none \
    | sed 's/ (\*)$//' \
    | awk '{print $1}' \
    | sort -u \
    | grep -v -E '^(xp-[a-z0-9-]+|xmlprime)$' || true)
if [ -n "$violations" ]; then
    echo "ERROR: non-workspace dependencies found in the graph:" >&2
    echo "$violations" >&2
    echo "The build must stay hermetic — implement it in-tree (see crates/testkit)." >&2
    exit 1
fi
echo "OK: dependency graph contains only workspace crates."

echo "==> clippy panic-policy gate (deny unwrap/expect in library crates)"
# The library crates carry #![deny(clippy::unwrap_used, clippy::expect_used)],
# so a plain clippy pass over the lib targets hard-errors on any unwrap or
# expect that sneaks back in. Skipped (with a warning) only if the toolchain
# has no clippy component.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy -q --offline --lib \
        -p xp-prime -p xp-query -p xp-xmltree -p xp-bignum -p xp-labelkit -p xp-par \
        -p xp-store -p xp-server
    echo "OK: library crates are clippy-clean under the panic policy."
else
    echo "WARNING: clippy not installed; skipping panic-policy gate." >&2
fi

echo "==> fault-injection matrix (XP_FAULT, one armed site per run)"
# Drive the full pipeline (parse -> label -> ordered build -> insert ->
# delete -> query) with each compiled-in fault site armed; the env_matrix
# test asserts nothing panics — injected failures must surface as typed
# errors. See crates/query/tests/fault_injection.rs and DESIGN.md §6.2.
for site in sc.insert sc.insert.record sc.relabel sc.remove \
            bignum.mul parse.read query.join; do
    XP_FAULT="$site:1" \
        cargo test -q --offline -p xp-query --test fault_injection env_matrix \
        > /dev/null
    XP_FAULT="$site:1" \
        cargo test -q --offline -p xp-query --test dynamic_differential dynamic_env_matrix \
        > /dev/null
    XP_FAULT="$site:1" \
        cargo test -q --offline -p xp-query --test predicate_differential predicate_env_matrix \
        > /dev/null
    echo "OK: pipeline survives injected fault at $site"
done

echo "==> shard-differential gate (shard facade vs unsharded oracle + fault matrix)"
# Propcheck differential: random documents and mutation scripts through the
# ShardedScheme facade must answer all nine axes exactly like the unsharded
# scheme, per-op and batched, at every thread count; then the same pipeline
# with each core fault site armed must fail typed, never torn. See
# crates/query/tests/shard_differential.rs and DESIGN.md §13.
cargo test -q --offline -p xp-query --test shard_differential > /dev/null
for site in sc.insert sc.insert.record sc.relabel sc.remove bignum.mul; do
    XP_FAULT="$site:1" \
        cargo test -q --offline -p xp-query --test shard_differential shard_env_matrix \
        > /dev/null
done
echo "OK: sharded documents agree with the unsharded oracle on every axis."

echo "==> sharding bench smoke (O(shard) front insert + output identity)"
# Wall-clock-independent gate for the shard facade: a front insert's total
# cost (labels + SC records) must sit well under the unsharded baseline
# (O(shard), not O(document)), and a batch fanned across every shard must
# leave tree, order, outcomes, and labels byte-identical to the unsharded
# oracle at 1/2/4/8 worker threads. Parallel speedup is additionally gated
# on hosts with >= 4 hardware threads. Does not touch the checked-in
# results/bench_sharding.json.
cargo run -q --release --offline -p xp-bench --bin bench_sharding -- --smoke
echo "OK: front inserts are O(shard) and sharded outputs match the oracle."

echo "==> dynamic-differential gate (every scheme vs relabel-from-scratch oracle)"
# Random mutation sequences through LabeledStore for all six schemes; after
# each step the incrementally patched LabelTable must answer queries on all
# nine axes exactly like a table rebuilt from a from-scratch relabeling.
# See crates/query/tests/dynamic_differential.rs and DESIGN.md §8.
cargo test -q --offline -p xp-query --test dynamic_differential > /dev/null
echo "OK: dynamic stores agree with the relabel oracle on every axis."

echo "==> dynamic-API bench smoke (incremental table patch vs rebuild)"
# Wall-clock gate for RelabelReport -> LabelTable patching: fails if the
# leaf-insert patch median exceeds a full table rebuild at any size, or if
# the patched row count grows with the document (it must stay O(report)).
# Does not touch the checked-in results/bench_dynamic_api.json.
XP_BENCH_SAMPLES=8 XP_BENCH_MIN_WINDOW_MS=5 \
    cargo run -q --release --offline -p xp-bench --bin dynamic_api -- --smoke
echo "OK: incremental LabelTable patching beats rebuild and stays O(report)."

echo "==> SC-maintenance bench smoke (incremental insert vs rebuild)"
# Small-size wall-clock gate for the incremental SC update path: fails if a
# tail append's median cost exceeds rebuilding the table from scratch, or if
# per-insert cost grows superlinearly in table size (the old pre-scan
# re-derived every member's order, making appends quadratic). Does not touch
# the checked-in results/bench_sc_table.json.
XP_BENCH_SAMPLES=8 XP_BENCH_MIN_WINDOW_MS=5 \
    cargo run -q --release --offline -p xp-bench --bin sc_maintenance -- --smoke
echo "OK: incremental SC maintenance beats rebuild-from-scratch."

echo "==> bignum-kernel bench smoke (multiply ladder + reduction contexts)"
# Wall-clock gates for the arithmetic kernels (see DESIGN.md §10): the
# schoolbook -> Karatsuba -> Toom-3 dispatch must show its asymptotic win by
# 2^14-bit operands and add no small-size regression, and the precomputed
# Barrett/reciprocal predicate loop must beat per-candidate plain division.
# Does not touch the checked-in results/bench_bignum_kernels.json.
XP_BENCH_SAMPLES=8 XP_BENCH_MIN_WINDOW_MS=5 \
    cargo run -q --release --offline -p xp-bench --bin bench_bignum_kernels -- --smoke
echo "OK: kernel dispatch and reduction contexts hold their bench gates."

echo "==> store crash matrix (fault sites x failure modes, in-process)"
# Every store I/O fault site (wal.append, wal.fsync, wal.read,
# checkpoint.write, manifest.swap) fired in error/torn/short mode at every
# hit the driver scenario reaches; the reopened store must match one of the
# legitimate mutation-prefix oracles and pass fsck. See
# crates/store/tests/crash_matrix.rs and DESIGN.md §11.
cargo test -q --offline -p xp-store --test crash_matrix > /dev/null
echo "OK: every injected I/O failure recovers to a consistent prefix."

echo "==> store prefix-replay property (every WAL byte prefix recovers)"
# Random documents and mutation scripts; every byte-length prefix of the
# resulting WAL (plus torn-tail garbage) must reopen to the exact
# mutation-prefix oracle, consistent on all nine query axes.
cargo test -q --offline -p xp-store --test prefix_replay > /dev/null
echo "OK: every WAL prefix replays to a consistent prefix oracle."

echo "==> store kill harness (real process abort at every fault site)"
# The test binary re-executes itself and dies via std::process::abort() at
# each armed site (the in-tree kill -9); the parent reopens the dead
# child's directory and checks it against the prefix oracles.
cargo test -q --offline -p xp-store --test kill_harness > /dev/null
echo "OK: a process killed at any fault site reopens byte-identical."

echo "==> store bench smoke (durability tax + checkpoint/recovery round trip)"
# Wall-clock gate for the disk store: measures WAL-append overhead vs the
# same apply in memory, checkpoint cost, and recovery time, and fails if a
# reopened store diverges from its live twin or a full checkpoint leaves
# WAL frames behind. Does not touch the checked-in results/bench_store.json.
XP_BENCH_SAMPLES=8 XP_BENCH_MIN_WINDOW_MS=5 \
    cargo run -q --release --offline -p xp-bench --bin bench_store -- --smoke
echo "OK: store recovery is exact and checkpoints fold the WAL."

echo "==> server interleaving differential (every serialized order vs oracle)"
# Concurrent client scripts submitted to the epoch loop in every
# order-preserving interleaving; each published epoch must answer all nine
# query axes exactly like a relabel-from-scratch oracle, converge to the
# oracle's final document, and survive a reopen. A second pass proves
# group-commit batching is semantically invisible. See
# crates/server/tests/interleaving.rs and DESIGN.md §12.
cargo test -q --offline -p xp-server --test interleaving > /dev/null
echo "OK: every interleaving converges and answers like the oracle."

echo "==> server socket suite at XP_THREADS in {1,8}"
# End-to-end TCP/Unix protocol round trips, shutdown-and-recover, and the
# client-side torn-labeling check (same-epoch //x'//y counts must agree)
# under both the serial fallback and a parallel pool — snapshot isolation
# may not depend on the worker thread count.
for threads in 1 8; do
    XP_THREADS=$threads \
        cargo test -q --offline -p xp-server > /dev/null
    echo "OK: server suite green at XP_THREADS=$threads"
done

echo "==> server bench smoke (concurrent 95/5 workload + group commit)"
# Wall-clock gate for the label server: concurrent TCP clients at 95%
# reads / 5% mutations plus an all-mutation burst. Fails on any same-epoch
# //x'//y disagreement (torn labeling), on a quiesced document diverging
# from the acknowledged mutations, or if the burst spends >= 1.0 WAL
# fsyncs per mutation (group commit must batch). Does not touch the
# checked-in results/bench_server.json.
cargo run -q --release --offline -p xp-bench --bin bench_server -- --smoke
echo "OK: no torn labelings and group commit amortizes fsyncs."

echo "==> query-cache bench smoke (hit rate + zero stale answers + per-label invalidation)"
# The epoch-stamped result cache under a 95/5 mix with mutations confined
# to one region: fails if the hit rate is <= 50%, if any sampled cached
# answer differs from a same-epoch cold evaluation, if a disjoint-region
# entry goes cold after a region-0 mutation (invalidation must be
# per-label, not flush-on-epoch), or if either pass diverges from the
# direct-apply oracle. Does not touch the checked-in
# results/bench_query_cache.json.
cargo run -q --release --offline -p xp-bench --bin bench_query_cache -- --smoke
echo "OK: cache answers stay byte-identical and invalidation is per-label."

echo "==> multi-writer storm bench smoke (convergence under concurrent writers)"
# N writer threads push disjoint-region scripts through one epoch loop
# concurrently while readers query through the cache. Fails if any
# scripted mutation is rejected, if the quiesced document does not
# serialize byte-identically to the sequential writer-major oracle, or if
# any cached answer mismatches cold evaluation. Does not touch the
# checked-in results/bench_multiwriter.json.
cargo run -q --release --offline -p xp-bench --bin bench_multiwriter -- --smoke
echo "OK: the relabel storm converges and the cache stays transparent."

echo "==> parallel-scaling bench smoke (xp-par determinism + no-lose gate)"
# Product tree, segmented sieve, and the prodtree-backed ordered build at
# 1/2/4/8 worker threads. Fails if any output differs from the sequential
# run (checked on every host), or — on hosts with >= 4 hardware threads —
# if the parallel product tree is slower than sequential. Does not touch
# the checked-in results/bench_par_scaling.json.
cargo run -q --release --offline -p xp-bench --bin par_scaling -- --smoke
echo "OK: xp-par outputs are byte-identical across thread counts."
