//! End-to-end integration: parse → label → query → mutate, across crates.

use xmlprime::datagen::datasets::DATASETS;
use xmlprime::prelude::*;
use xmlprime::query::queries::{run_all, TEST_QUERIES};

#[test]
fn every_dataset_labels_cleanly_under_every_scheme() {
    for d in &DATASETS {
        let tree = d.generate(99);
        let n = tree.elements().count();
        assert_eq!(TopDownPrime::unoptimized().label(&tree).len(), n, "{}", d.id);
        assert_eq!(TopDownPrime::optimized().label(&tree).len(), n, "{}", d.id);
        assert_eq!(IntervalScheme::dense().label(&tree).len(), n, "{}", d.id);
        assert_eq!(Prefix1Scheme.label(&tree).len(), n, "{}", d.id);
        assert_eq!(Prefix2Scheme.label(&tree).len(), n, "{}", d.id);
        assert_eq!(DeweyScheme.label(&tree).len(), n, "{}", d.id);
    }
}

#[test]
fn ancestor_tests_agree_with_ground_truth_on_a_real_dataset() {
    // D6 (department) has internal structure at several depths; sample node
    // pairs and check all schemes against the tree.
    let tree = xmlprime::datagen::datasets::dataset("D6").unwrap().generate(7);
    let prime = TopDownPrime::optimized().label(&tree);
    let interval = IntervalScheme::dense().label(&tree);
    let prefix = Prefix2Scheme.label(&tree);
    let dewey = DeweyScheme.label(&tree);
    let nodes: Vec<NodeId> = tree.elements().collect();
    for (i, &x) in nodes.iter().enumerate().step_by(37) {
        for &y in nodes.iter().skip(i % 11).step_by(23) {
            let truth = tree.is_ancestor(x, y);
            assert_eq!(prime.label(x).is_ancestor_of(prime.label(y)), truth);
            assert_eq!(interval.label(x).is_ancestor_of(interval.label(y)), truth);
            assert_eq!(prefix.label(x).is_ancestor_of(prefix.label(y)), truth);
            assert_eq!(dewey.label(x).is_ancestor_of(dewey.label(y)), truth);
        }
    }
}

#[test]
fn parse_serialize_label_round_trip() {
    let d8 = xmlprime::datagen::datasets::dataset("D8").unwrap().generate(3);
    let serialized = xmlprime::xmltree::serialize::to_string(&d8);
    let reparsed = parse(&serialized).unwrap();
    assert_eq!(d8.elements().count(), reparsed.elements().count());
    // Labeling the reparsed document gives identical label sizes (same
    // structure ⇒ same assignment).
    let a = TopDownPrime::optimized().label(&d8).size_stats();
    let b = TopDownPrime::optimized().label(&reparsed).size_stats();
    assert_eq!(a, b);
}

#[test]
fn table2_queries_run_and_agree_on_the_generated_corpus() {
    use xmlprime::datagen::shakespeare::{PlayParams, ShakespeareCorpus};
    let tree = ShakespeareCorpus::generate_with(3, 5, &PlayParams::miniature()).tree;
    let interval = IntervalEvaluator::build(&tree);
    let prime = PrimeEvaluator::build(&tree, 5);
    let prefix = Prefix2Evaluator::build(&tree);
    let a = run_all(&interval);
    let b = run_all(&prime);
    let c = run_all(&prefix);
    assert_eq!(a, b);
    assert_eq!(a, c);
    // And results are plausible: Q9 (all lines) dominates.
    let q9 = a.iter().find(|(id, _)| *id == "Q9").unwrap().1;
    assert!(q9 > 0);
    for (_, count) in &a {
        assert!(*count <= q9 * 3, "no count dwarfs the line scan");
    }
}

#[test]
fn query_engine_handles_each_table2_query_after_updates() {
    let mut tree = parse(
        "<PLAY><TITLE/><ACT><SCENE><SPEECH><LINE/></SPEECH></SCENE></ACT>\
         <ACT><SCENE><SPEECH><LINE/><LINE/></SPEECH></SCENE></ACT></PLAY>",
    )
    .unwrap();
    // Insert a new ACT between the two, then rebuild evaluators and check
    // the queries still run and agree.
    let second_act = tree.elements().filter(|&n| tree.tag(n) == Some("ACT")).nth(1).unwrap();
    let new_act = tree.create_element("ACT");
    tree.insert_before(second_act, new_act);

    let prime = PrimeEvaluator::build(&tree, 5);
    let interval = IntervalEvaluator::build(&tree);
    for q in &TEST_QUERIES {
        assert_eq!(prime.eval_str(q.path), interval.eval_str(q.path), "{} after update", q.id);
    }
}

#[test]
fn bottom_up_and_top_down_agree_on_ancestorship() {
    use xmlprime::prime::bottomup::BottomUpPrime;
    let tree = xmlprime::datagen::builders::random_tree(
        3,
        &xmlprime::datagen::builders::RandomTreeParams {
            nodes: 300,
            max_depth: 6,
            max_fanout: 8,
            tag_variety: 5,
        },
    );
    let td = TopDownPrime::unoptimized().label(&tree);
    let bu = BottomUpPrime.label(&tree);
    let nodes: Vec<NodeId> = tree.elements().collect();
    for &x in nodes.iter().step_by(7) {
        for &y in nodes.iter().step_by(11) {
            assert_eq!(
                td.label(x).is_ancestor_of(td.label(y)),
                bu.label(x).is_ancestor_of(bu.label(y)),
                "({x},{y})"
            );
        }
    }
}
