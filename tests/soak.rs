//! Soak test: the full pipeline at dataset scale — generate the largest
//! Table 1 document plus an XMark-like site, label under every scheme,
//! churn the ordered document, query it, and round-trip the persistence
//! layer. One test, end to end, nothing mocked.

use xmlprime::datagen::auction::{generate_site, AuctionParams};
use xmlprime::datagen::datasets::dataset;
use xmlprime::labelkit::codec::{decode_doc, encode_doc};
use xmlprime::prelude::*;
use xmlprime::prime::stream::label_stream;

#[test]
fn full_pipeline_on_d9() {
    // 1. Generate + label D9 (10 052 elements) under every scheme.
    let tree = dataset("D9").unwrap().generate(1);
    let n = tree.elements().count();
    assert_eq!(n, 10_052);

    let prime = TopDownPrime::optimized().label(&tree);
    let interval = IntervalScheme::dense().label(&tree);
    let prefix = Prefix2Scheme.label(&tree);
    assert_eq!(prime.len(), n);
    assert_eq!(interval.len(), n);
    assert_eq!(prefix.len(), n);

    // 2. Sampled ancestor agreement at scale.
    let nodes: Vec<NodeId> = tree.elements().collect();
    for i in (0..nodes.len()).step_by(509) {
        for j in (0..nodes.len()).step_by(401) {
            let truth = tree.is_ancestor(nodes[i], nodes[j]);
            assert_eq!(prime.label(nodes[i]).is_ancestor_of(prime.label(nodes[j])), truth);
            assert_eq!(interval.label(nodes[i]).is_ancestor_of(interval.label(nodes[j])), truth);
            assert_eq!(prefix.label(nodes[i]).is_ancestor_of(prefix.label(nodes[j])), truth);
        }
    }

    // 3. The persistence layer round-trips the full prime table.
    let bytes = encode_doc(&prime);
    let decoded: LabeledDoc<PrimeLabel> = decode_doc(&tree, &bytes).unwrap();
    for &node in nodes.iter().step_by(97) {
        assert_eq!(decoded.label(node), prime.label(node));
    }

    // 4. Streaming labeling over the serialized document matches the
    //    unoptimized tree labeling.
    let xml = xmlprime::xmltree::serialize::to_string(&tree);
    let rows = label_stream(&xml).unwrap();
    assert_eq!(rows.len(), n);
    let tree_labels = TopDownPrime::unoptimized().label(&tree);
    for (row, &node) in rows.iter().zip(&nodes).step_by(83) {
        assert_eq!(&row.label, tree_labels.label(node));
    }
}

#[test]
fn ordered_churn_on_an_auction_site() {
    // An XMark-like site under sustained ordered churn.
    let mut tree = generate_site(7, &AuctionParams::small());
    let mut doc = OrderedPrimeDoc::build(&tree, 5).unwrap();

    let open_auctions = |t: &XmlTree| -> Vec<NodeId> {
        t.elements().filter(|&n| t.tag(n) == Some("open_auction")).collect()
    };

    // 30 rounds: prepend a hot auction, close (delete) a stale one.
    for round in 0..30 {
        let auctions = open_auctions(&tree);
        let first = auctions[0];
        doc.insert_sibling_before(&mut tree, first, "open_auction").unwrap();
        if round % 3 == 2 {
            let auctions = open_auctions(&tree);
            let stale = *auctions.last().unwrap();
            doc.delete(&mut tree, stale).unwrap();
        }
        doc.verify_order_consistency(&tree);
    }

    // Queries still answer correctly from labels + SC alone, across schemes.
    let prime_ev = PrimeEvaluator::build(&tree, 5);
    let interval_ev = IntervalEvaluator::build(&tree);
    for path in [
        "//open_auction",
        "//open_auction/bidder",
        "//person[address]",
        "//regions//item/following::open_auction",
    ] {
        assert_eq!(prime_ev.eval_str(path), interval_ev.eval_str(path), "{path}");
    }
}
