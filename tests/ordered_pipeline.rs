//! Property-based tests of the *dynamic ordered* pipeline: arbitrary
//! sequences of order-sensitive insertions and deletions must keep the
//! SC-derived order a perfect preorder ranking, without ever invalidating
//! the ancestor property of the labels.

use xmlprime::prelude::*;
use xp_testkit::propcheck::{one_of, u64s, usizes, vec_of, Gen};
use xp_testkit::{prop_assert_eq, propcheck};

/// One random mutation.
#[derive(Debug, Clone)]
enum Op {
    /// Insert before the element at (index % live elements).
    InsertBefore(usize),
    /// Insert after it.
    InsertAfter(usize),
    /// Append a child under it.
    AppendChild(usize),
    /// Delete it (skipped when it is the root).
    Delete(usize),
}

fn op_strategy() -> Gen<Op> {
    one_of(vec![
        usizes(0..1000).map(Op::InsertBefore),
        usizes(0..1000).map(Op::InsertAfter),
        usizes(0..1000).map(Op::AppendChild),
        usizes(0..1000).map(Op::Delete),
    ])
}

fn nth_live(tree: &XmlTree, i: usize) -> NodeId {
    let nodes: Vec<NodeId> = tree.elements().collect();
    nodes[i % nodes.len()]
}

propcheck! {
    #![config(cases = 48)]

    #[test]
    fn random_mutation_sequences_preserve_order_and_ancestry(
        ops in vec_of(op_strategy(), 1..25)
    ) {
        let mut tree = parse("<r><a><b/><c/></a><d/><e><f/></e></r>").unwrap();
        let mut doc = OrderedPrimeDoc::build(&tree, 3).unwrap();
        for op in ops {
            match op {
                Op::InsertBefore(i) => {
                    let anchor = nth_live(&tree, i);
                    if tree.parent(anchor).is_some() {
                        doc.insert_sibling_before(&mut tree, anchor, "n").unwrap();
                    }
                }
                Op::InsertAfter(i) => {
                    let anchor = nth_live(&tree, i);
                    if tree.parent(anchor).is_some() {
                        doc.insert_sibling_after(&mut tree, anchor, "n").unwrap();
                    }
                }
                Op::AppendChild(i) => {
                    let parent = nth_live(&tree, i);
                    doc.append_child(&mut tree, parent, "n").unwrap();
                }
                Op::Delete(i) => {
                    let target = nth_live(&tree, i);
                    if tree.parent(target).is_some() {
                        doc.delete(&mut tree, target).unwrap();
                    }
                }
            }
            doc.verify_order_consistency(&tree);
        }

        // After the dust settles: labels still decide ancestry exactly.
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                prop_assert_eq!(
                    doc.labels().label(x).is_ancestor_of(doc.labels().label(y)),
                    tree.is_ancestor(x, y),
                    "ancestor({}, {})", x, y
                );
            }
        }
    }

    #[test]
    fn insertion_reports_account_for_every_label_change(
        positions in vec_of(usizes(0..1000), 1..12)
    ) {
        let mut tree = parse("<r><a/><b/><c/><d/><e/><f/><g/><h/></r>").unwrap();
        let mut doc = OrderedPrimeDoc::build(&tree, 4).unwrap();
        for pos in positions {
            let anchor = nth_live(&tree, pos.max(1));
            if tree.parent(anchor).is_none() {
                continue;
            }
            let before = doc.labels().clone();
            let report = doc.insert_sibling_before(&mut tree, anchor, "x").unwrap();
            let diff = before.diff_count(doc.labels());
            // The report's relabel count is exactly the measured label diff.
            prop_assert_eq!(diff.changed, report.relabeled_existing);
            prop_assert_eq!(diff.new_count, 1);
        }
    }

    #[test]
    fn chunk_capacity_never_changes_query_results(
        seed in u64s(0..1000)
    ) {
        let tree = xmlprime::datagen::builders::random_tree(
            seed,
            &xmlprime::datagen::builders::RandomTreeParams {
                nodes: 120, max_depth: 5, max_fanout: 6, tag_variety: 4,
            },
        );
        let e1 = PrimeEvaluator::build(&tree, 1);
        let e5 = PrimeEvaluator::build(&tree, 5);
        let e50 = PrimeEvaluator::build(&tree, 50);
        for path in ["//t0", "//t1/following::t2", "//t3[2]", "//t0/following-sibling::t1"] {
            let a = e1.eval_str(path);
            prop_assert_eq!(&a, &e5.eval_str(path), "{}", path);
            prop_assert_eq!(&a, &e50.eval_str(path), "{}", path);
        }
    }
}
