//! Property-based cross-scheme tests: on arbitrary ordered trees, every
//! labeling scheme must agree with the tree (and therefore with each other)
//! on ancestorship, parenthood, and document order.

use xmlprime::prelude::*;
use xp_testkit::propcheck::{index, vec_of, Gen};
use xp_testkit::{prop_assert, prop_assert_eq, propcheck};

/// An arbitrary ordered tree described as a parent vector — node i
/// (1-indexed) attaches under a previously created node.
fn tree_strategy(max_nodes: usize) -> Gen<XmlTree> {
    vec_of(index(), 0..max_nodes).map(|attach| {
        let mut tree = XmlTree::new("r");
        let mut nodes = vec![tree.root()];
        for (i, idx) in attach.into_iter().enumerate() {
            let parent = nodes[idx.index(nodes.len())];
            let child = tree.append_element(parent, format!("t{}", i % 7));
            nodes.push(child);
        }
        tree
    })
}

fn doc_order_ranks<F: Fn(NodeId, NodeId) -> std::cmp::Ordering>(
    tree: &XmlTree,
    cmp: F,
) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = tree.elements().collect();
    nodes.sort_by(|&a, &b| cmp(a, b));
    nodes
}

propcheck! {
    #![config(cases = 64)]

    #[test]
    fn all_schemes_match_ground_truth(tree in tree_strategy(60)) {
        let prime_plain = TopDownPrime::unoptimized().label(&tree);
        let prime_opt = TopDownPrime::optimized().label(&tree);
        let interval = IntervalScheme::dense().label(&tree);
        let prefix1 = Prefix1Scheme.label(&tree);
        let prefix2 = Prefix2Scheme.label(&tree);
        let dewey = DeweyScheme.label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                let truth = tree.is_ancestor(x, y);
                prop_assert_eq!(prime_plain.label(x).is_ancestor_of(prime_plain.label(y)), truth);
                prop_assert_eq!(prime_opt.label(x).is_ancestor_of(prime_opt.label(y)), truth);
                prop_assert_eq!(interval.label(x).is_ancestor_of(interval.label(y)), truth);
                prop_assert_eq!(prefix1.label(x).is_ancestor_of(prefix1.label(y)), truth);
                prop_assert_eq!(prefix2.label(x).is_ancestor_of(prefix2.label(y)), truth);
                prop_assert_eq!(dewey.label(x).is_ancestor_of(dewey.label(y)), truth);

                let is_parent = tree.parent(y) == Some(x);
                prop_assert_eq!(prime_plain.label(x).is_parent_of(prime_plain.label(y)), is_parent);
                prop_assert_eq!(prime_opt.label(x).is_parent_of(prime_opt.label(y)), is_parent);
                prop_assert_eq!(prefix2.label(x).is_parent_of(prefix2.label(y)), is_parent);
                prop_assert_eq!(dewey.label(x).is_parent_of(dewey.label(y)), is_parent);
            }
        }
    }

    #[test]
    fn ordered_labels_sort_in_document_order(tree in tree_strategy(60)) {
        let truth: Vec<NodeId> = tree.elements().collect();

        let interval = IntervalScheme::dense().label(&tree);
        let by_interval = doc_order_ranks(&tree, |a, b| {
            interval.label(a).doc_cmp(interval.label(b))
        });
        prop_assert_eq!(&by_interval, &truth);

        let prefix2 = Prefix2Scheme.label(&tree);
        let by_prefix = doc_order_ranks(&tree, |a, b| {
            prefix2.label(a).doc_cmp(prefix2.label(b))
        });
        prop_assert_eq!(&by_prefix, &truth);

        let dewey = DeweyScheme.label(&tree);
        let by_dewey = doc_order_ranks(&tree, |a, b| {
            dewey.label(a).doc_cmp(dewey.label(b))
        });
        prop_assert_eq!(&by_dewey, &truth);
    }

    #[test]
    fn sc_table_orders_match_preorder(tree in tree_strategy(40)) {
        for chunk in [1usize, 3, 7] {
            let doc = OrderedPrimeDoc::build(&tree, chunk).unwrap();
            doc.verify_order_consistency(&tree);
            // Order numbers are exactly 0..n in preorder.
            for (i, node) in tree.elements().enumerate() {
                prop_assert_eq!(doc.order_of(node), i as u64);
            }
        }
    }

    #[test]
    fn prime_labels_are_unique_and_divisor_closed(tree in tree_strategy(50)) {
        let doc = TopDownPrime::unoptimized().label(&tree);
        let mut seen = std::collections::HashSet::new();
        for (node, label) in doc.iter() {
            prop_assert!(seen.insert(label.value().clone()), "duplicate label at {node}");
            // Every label is the product of its self-label and its parent's
            // label (the defining recurrence).
            if let Some(parent) = tree.parent(node) {
                let expected = doc.label(parent).value() * label.self_label();
                prop_assert_eq!(label.value(), &expected);
            }
        }
    }

    #[test]
    fn queries_agree_across_schemes_on_random_trees(tree in tree_strategy(40)) {
        let interval = IntervalEvaluator::build(&tree);
        let prime = PrimeEvaluator::build(&tree, 5);
        let prefix = Prefix2Evaluator::build(&tree);
        for path in ["//t0", "//t1//t2", "/r//t3[1]", "//t4/following::t5", "//t6/preceding::t0"] {
            let a = interval.eval_str(path);
            let b = prime.eval_str(path);
            let c = prefix.eval_str(path);
            prop_assert_eq!(&a, &b, "{}", path);
            prop_assert_eq!(&a, &c, "{}", path);
        }
    }
}
